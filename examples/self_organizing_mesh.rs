//! A self-organizing anonymous mesh, end to end: one randomized
//! preprocessing pass (2-hop coloring — Theorem 1's only coin flips),
//! then three *deterministic* services built on the colors:
//!
//! 1. interference-free frequencies (the colors themselves);
//! 2. local coordinators (2-hop local minima — unique per 2-ball);
//! 3. a pairing backbone (maximal matching via color-addressed proposals;
//!    the matching itself is Las-Vegas, seeded here for reproducibility).
//!
//! ```text
//! cargo run --example self_organizing_mesh
//! ```

use anonet::algorithms::local_election::{KLocalElection, KLocalMinimaProblem};
use anonet::algorithms::matching::{MatchingProblem, RandomizedMatching};
use anonet::algorithms::two_hop_coloring::TwoHopColoring;
use anonet::graph::{coloring, BitString};
use anonet::runtime::{run, ExecConfig, Oblivious, Problem, RngSource, ZeroSource};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
    let g = anonet::graph::generators::gnp_connected(18, 0.18, &mut rng)?;
    println!("mesh: {g}, Δ = {}", g.max_degree());

    // Pass 1 (randomized): 2-hop coloring.
    let net = g.with_uniform_label(());
    let exec = run(
        &Oblivious(TwoHopColoring::new()),
        &net,
        &mut RngSource::seeded(4),
        &ExecConfig::default(),
    )?;
    let tokens: Vec<BitString> = exec.outputs_unwrapped();
    let colored = g.with_labels(tokens)?;
    assert!(coloring::is_two_hop_coloring(&colored));
    println!(
        "pass 1: {} channels in {} rounds ({} random bits)",
        colored.distinct_label_count(),
        exec.rounds(),
        exec.bits_consumed()
    );

    // Renumber tokens into compact u32 frequencies for the services below
    // (order-preserving, so local minima are unchanged).
    let mut sorted = colored.labels().to_vec();
    sorted.sort();
    sorted.dedup();
    let freqs: Vec<u32> = colored
        .labels()
        .iter()
        .map(|t| sorted.binary_search(t).expect("token present") as u32)
        .collect();
    let freq_net = g.with_labels(freqs)?;

    // Pass 2 (deterministic): 2-local coordinators.
    let leaders = run(
        &Oblivious(KLocalElection::<u32>::new(2)),
        &freq_net,
        &mut ZeroSource,
        &ExecConfig::default(),
    )?;
    let coordinator = leaders.outputs_unwrapped();
    assert!(KLocalMinimaProblem { k: 2 }.is_valid_output(&freq_net, &coordinator));
    println!(
        "pass 2: {} coordinators elected in {} rounds (0 random bits)",
        coordinator.iter().filter(|&&b| b).count(),
        leaders.rounds()
    );

    // Pass 3: pairing backbone (maximal matching).
    let pairing = run(
        &Oblivious(RandomizedMatching::<u32>::new()),
        &freq_net,
        &mut RngSource::seeded(9),
        &ExecConfig::default(),
    )?;
    let matching = pairing.outputs_unwrapped();
    assert!(MatchingProblem.is_valid_output(&freq_net, &matching));
    println!(
        "pass 3: {} nodes paired in {} rounds",
        matching.iter().filter(|o| o.is_some()).count(),
        pairing.rounds()
    );

    println!("\nnode: channel  role        partner-channel");
    for v in g.nodes() {
        println!(
            "{:>4}: ch{:<5} {:<11} {}",
            v.index(),
            freq_net.label(v),
            if coordinator[v.index()] { "coordinator" } else { "member" },
            match &matching[v.index()] {
                Some(c) => format!("paired with ch{c}"),
                None => "unpaired".into(),
            }
        );
    }
    Ok(())
}
