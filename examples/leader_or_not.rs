//! Leader election and its impossibility frontier: with a 2-hop coloring
//! in hand, a leader exists exactly when the colored graph is *prime*
//! (all views distinct, the paper's Lemma 4). On a product, two nodes
//! share every view and no anonymous algorithm — randomized or not — can
//! ever separate them.
//!
//! ```text
//! cargo run --example leader_or_not
//! ```

use anonet::algorithms::leader::{elect_leader, leader_election_solvable};
use anonet::graph::{generators, LabeledGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: Vec<(&str, LabeledGraph<u32>)> = vec![
        (
            "C5 with all-distinct colors (prime)",
            generators::cycle(5)?.with_labels(vec![10, 20, 30, 40, 50])?,
        ),
        (
            "P5 colored 1,2,3,1,2 (prime despite repeats)",
            generators::path(5)?.with_labels(vec![1, 2, 3, 1, 2])?,
        ),
        (
            "C6 colored 1,2,3,1,2,3 (a product of C3)",
            generators::cycle(6)?.with_labels(vec![1, 2, 3, 1, 2, 3])?,
        ),
        ("C4 uniform (maximally symmetric)", generators::cycle(4)?.with_uniform_label(0)),
    ];

    for (name, g) in cases {
        println!("{name}");
        println!("  solvable: {}", leader_election_solvable(&g));
        match elect_leader(&g) {
            Ok(outcome) => {
                println!(
                    "  elected {} (color {}); outputs: {:?}",
                    outcome.leader,
                    g.label(outcome.leader),
                    outcome.outputs
                );
            }
            Err(e) => println!("  {e}"),
        }
        println!();
    }

    println!(
        "the dichotomy is exactly the paper's: GRAN excludes leader election because \
         products admit executions in which whole fibers behave identically forever."
    );
    Ok(())
}
