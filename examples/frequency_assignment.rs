//! Frequency assignment in an anonymous radio network — the classic
//! application of 2-hop (distance-2) coloring the paper cites in its
//! related work (Krumke–Marathe–Ravi): two transmitters within two hops
//! share a receiver, so they must broadcast on different frequencies.
//!
//! The towers are anonymous (mass-produced, no serial numbers burned in),
//! yet they can self-assign interference-free frequencies with the
//! Las-Vegas 2-hop coloring algorithm, then *deterministically* compress
//! the palette.
//!
//! ```text
//! cargo run --example frequency_assignment
//! ```

use std::collections::BTreeMap;

use anonet::algorithms::det_two_hop_reduction::TwoHopReduction;
use anonet::algorithms::two_hop_coloring::TwoHopColoring;
use anonet::graph::{coloring, generators, BitString};
use anonet::runtime::{run, ExecConfig, Oblivious, RngSource, ZeroSource};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "city": a sparse random interference graph over 20 towers.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let g = generators::gnp_connected(20, 0.15, &mut rng)?;
    println!("interference graph: {g}, max degree Δ = {}", g.max_degree());

    // Distributed distance-2 coloring: each tower ends with a bitstring
    // channel token distinct from everything within two hops.
    let net = g.with_uniform_label(());
    let exec = run(
        &Oblivious(TwoHopColoring::new()),
        &net,
        &mut RngSource::seeded(99),
        &ExecConfig::default(),
    )?;
    let tokens: Vec<BitString> = exec.outputs_unwrapped();
    let colored = g.with_labels(tokens.clone())?;
    assert!(coloring::is_two_hop_coloring(&colored));
    println!(
        "tokens assigned in {} rounds ({} random bits), palette {}",
        exec.rounds(),
        exec.bits_consumed(),
        colored.distinct_label_count()
    );

    // Deterministic, *distributed* palette compression: the distance-2
    // reduction protocol runs directly on the bitstring tokens — the
    // towers renumber themselves, no central planner involved.
    let reduction = run(
        &Oblivious(TwoHopReduction::<BitString>::new()),
        &colored,
        &mut ZeroSource,
        &ExecConfig::default(),
    )?;
    let freqs: Vec<u32> = reduction.outputs_unwrapped();
    let compressed = g.with_labels(freqs.clone())?;
    assert!(coloring::is_two_hop_coloring(&compressed));
    println!("distributed reduction finished in {} rounds (0 random bits)", reduction.rounds());

    let mut histogram: BTreeMap<u32, usize> = BTreeMap::new();
    for &f in &freqs {
        *histogram.entry(f).or_insert(0) += 1;
    }
    println!(
        "compressed to {} frequencies (Δ² + 1 bound: {}):",
        histogram.len(),
        g.max_degree().pow(2) + 1
    );
    for (f, count) in histogram {
        println!("  channel {f}: {count} towers");
    }
    Ok(())
}
