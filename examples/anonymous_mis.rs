//! Randomized anonymous MIS with distributed verification — a GRAN
//! member end to end: the Las-Vegas solver produces the set, then the
//! deterministic distributed verifier certifies it with every node
//! inspecting only its own neighborhood.
//!
//! ```text
//! cargo run --example anonymous_mis
//! ```

use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::MisProblem;
use anonet::algorithms::verify::{accepted, MisVerifier};
use anonet::graph::generators;
use anonet::runtime::{run, ExecConfig, Oblivious, Problem, RngSource, ZeroSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, g) in [
        ("cycle-10", generators::cycle(10)?),
        ("petersen", generators::petersen()),
        ("torus-4x4", generators::grid(4, 4, true)?),
        ("hypercube-4", generators::hypercube(4)?),
    ] {
        let net = g.with_uniform_label(());

        // Solve with the coin-tossing Las-Vegas MIS.
        let exec = run(
            &Oblivious(RandomizedMis::new()),
            &net,
            &mut RngSource::seeded(7),
            &ExecConfig::default(),
        )?;
        let membership = exec.outputs_unwrapped();
        let size = membership.iter().filter(|&&b| b).count();

        // Distributed verification: one round, deterministic, anonymous.
        let labeled = g.with_labels(membership.clone())?;
        let verdicts =
            run(&Oblivious(MisVerifier), &labeled, &mut ZeroSource, &ExecConfig::default())?;
        let verified = accepted(&verdicts.outputs_unwrapped());

        // Cross-check with the centralized specification.
        assert_eq!(verified, MisProblem.is_valid_output(&net, &membership));

        println!(
            "{name:<12} n={:<3} |MIS|={size:<3} rounds={:<4} bits={:<5} verified={}",
            net.node_count(),
            exec.rounds(),
            exec.bits_consumed(),
            if verified { "yes" } else { "NO" },
        );
    }
    Ok(())
}
