//! The deterministic stage as a *real protocol*: nodes exchange folded
//! views (polynomial-size exact view DAGs) for `2N+1` rounds, each
//! reconstructs the finite view graph, simulates the randomized MIS
//! algorithm on it, and lifts its own answer — no simulator shortcuts,
//! every bit of knowledge arrived in a message.
//!
//! ```text
//! cargo run --example message_level
//! ```

use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::MisProblem;
use anonet::core::distributed::BoundedDerandomizer;
use anonet::core::{Derandomizer, SearchStrategy};
use anonet::graph::{lift, NodeId};
use anonet::runtime::{run, ExecConfig, Oblivious, Problem, ZeroSource};
use anonet::views::FoldedView;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 15-node product of the colored triangle.
    let l = lift::cyclic_cycle_lift(3, 5)?;
    let inst = l.lift_labels(&[((), 1u32), ((), 2), ((), 3)])?;
    let n = inst.node_count();
    println!("instance: {n} nodes (a 5-lift of the colored C3)");

    // How big is the knowledge each node must gather? Compare the
    // explicit view against its folded representation at depth 2N+2.
    let depth = 2 * n + 2;
    let folded = FoldedView::build_closed(&inst, NodeId::new(0), depth)?;
    println!(
        "depth-{depth} view: {} vertices explicitly, {} entries folded",
        folded.unfolded_size(),
        folded.entry_count()
    );

    // Run the protocol: every node knows only the bound N = n.
    let strategy = SearchStrategy::Seeded { max_attempts: 64 };
    let with_bound = inst.map_labels(|label| (*label, n));
    let protocol = BoundedDerandomizer::<RandomizedMis, u32>::new(RandomizedMis::new())
        .with_strategy(strategy);
    let exec = run(&Oblivious(protocol), &with_bound, &mut ZeroSource, &ExecConfig::default())?;
    println!(
        "protocol finished in {} rounds, {} messages, using 0 random bits",
        exec.rounds(),
        exec.messages_sent()
    );

    // Cross-check against the white-box derandomizer.
    let white = Derandomizer::new(RandomizedMis::new()).with_strategy(strategy).run(&inst)?;
    assert_eq!(exec.outputs_unwrapped(), white.outputs);
    let plain = inst.map_labels(|_| ());
    assert!(MisProblem.is_valid_output(&plain, &white.outputs));
    println!(
        "outputs match the white-box derandomizer exactly; MIS of size {} is valid.",
        white.outputs.iter().filter(|&&b| b).count()
    );
    Ok(())
}
