//! The full Theorem-1 machinery with its internals on display: run the
//! two-stage pipeline on a *product* graph (a 6-fold lift of C4) and
//! watch the deterministic stage collapse the network to its finite view
//! graph, search the canonical simulation, and lift the answer back.
//!
//! ```text
//! cargo run --example derandomize_demo
//! ```

use anonet::algorithms::mis::RandomizedMis;
use anonet::algorithms::problems::MisProblem;
use anonet::core::derandomizer::Derandomizer;
use anonet::core::SearchStrategy;
use anonet::factor::prime::prime_factor;
use anonet::graph::{coloring, generators, lift};
use anonet::runtime::Problem;
use anonet::views::ViewMode;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 24-node product: a random connected 6-lift of C4, with the base's
    // 2-hop coloring lifted along the projection. Every fiber is a set of
    // 6 mutually indistinguishable nodes.
    let base = generators::cycle(4)?;
    let base_colored = coloring::greedy_two_hop_coloring(&base);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let l = lift::random_connected_lift(&base, 6, 300, &mut rng)?;
    let instance =
        l.lift_labels(&base_colored.labels().iter().map(|&c| ((), c)).collect::<Vec<_>>())?;
    println!("instance: {} nodes (a 6-lift of C4), 2-hop colored", instance.node_count());

    // What the theory says the nodes will jointly reconstruct:
    let p = prime_factor(&instance, ViewMode::Portless)?;
    println!(
        "prime factor: {} nodes (multiplicity {}) — Lemma 3's unique prime factor",
        p.graph().node_count(),
        p.map().multiplicity()
    );

    // The deterministic stage, with both canonical-search strategies.
    for (name, strategy) in [
        ("exhaustive-minimal (paper rule)", SearchStrategy::Exhaustive { max_total_bits: 24 }),
        ("seeded-replay (engineering rule)", SearchStrategy::Seeded { max_attempts: 64 }),
    ] {
        let run = Derandomizer::new(RandomizedMis::new()).with_strategy(strategy).run(&instance)?;
        let plain = instance.map_labels(|_| ());
        assert!(MisProblem.is_valid_output(&plain, &run.outputs));
        println!(
            "{name}: simulated {} quotient nodes for {} rounds ({} attempts), \
             lifted to a valid MIS of size {}",
            run.quotient_nodes,
            run.simulation_rounds,
            run.attempts,
            run.outputs.iter().filter(|&&b| b).count()
        );
    }

    println!(
        "the network never ran MIS at full size — it solved a {}-node quotient and lifted.",
        p.graph().node_count()
    );
    Ok(())
}
