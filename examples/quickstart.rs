//! Quickstart: the paper's thesis in thirty lines.
//!
//! 1. Build an anonymous network (nodes have no identifiers).
//! 2. Run the *randomized* 2-hop coloring algorithm — the only stage that
//!    consumes random bits.
//! 3. Hand the colors to a *deterministic* algorithm (here: MIS).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use anonet::algorithms::det_mis::DeterministicMis;
use anonet::algorithms::problems::MisProblem;
use anonet::algorithms::two_hop_coloring::TwoHopColoring;
use anonet::graph::{coloring, generators, BitString};
use anonet::runtime::{run, ExecConfig, Oblivious, Problem, RngSource, ZeroSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An anonymous 4×4 grid: every node runs the same code, no IDs.
    let g = generators::grid(4, 4, false)?;
    let net = g.with_uniform_label(());
    println!("network: {g}");

    // Stage 1 (randomized): Las-Vegas 2-hop coloring.
    let stage1 = run(
        &Oblivious(TwoHopColoring::new()),
        &net,
        &mut RngSource::seeded(2024),
        &ExecConfig::default(),
    )?;
    let colors: Vec<BitString> = stage1.outputs_unwrapped();
    let colored = g.with_labels(colors.clone())?;
    assert!(coloring::is_two_hop_coloring(&colored));
    println!(
        "stage 1: 2-hop colored in {} rounds with {} random bits, {} colors",
        stage1.rounds(),
        stage1.bits_consumed(),
        colored.distinct_label_count()
    );

    // Stage 2 (deterministic): MIS using the colors — zero random bits.
    let stage2 = run(
        &Oblivious(DeterministicMis::<BitString>::new()),
        &colored,
        &mut ZeroSource,
        &ExecConfig::default(),
    )?;
    let mis = stage2.outputs_unwrapped();
    assert!(MisProblem.is_valid_output(&net, &mis));
    println!(
        "stage 2: deterministic MIS of size {} in {} rounds (0 random bits)",
        mis.iter().filter(|&&b| b).count(),
        stage2.rounds()
    );

    for y in 0..4 {
        let row: String = (0..4).map(|x| if mis[y * 4 + x] { '#' } else { '.' }).collect();
        println!("  {row}");
    }
    println!("randomization = 2-hop coloring — everything after stage 1 is deterministic.");
    Ok(())
}
