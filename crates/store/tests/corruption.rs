//! Corruption beyond torn tails: a single flipped bit anywhere in a
//! closed segment (bit rot, not a crash) must cost at most the one frame
//! whose CRC it breaks. Open-time recovery either quarantines the
//! damaged region (mid-file, intact frames follow — the resync path) or
//! truncates it (it was the file's last frame), and every other key
//! survives with its exact value. The store stays fully usable after.

use std::path::{Path, PathBuf};

use anonet_store::{Store, StoreConfig};
use proptest::prelude::*;

const RECORDS: usize = 10;
const HEADER_LEN: u64 = 8;

fn key_of(i: usize) -> Vec<u8> {
    vec![i as u8; 6]
}

fn value_of(i: usize) -> Vec<u8> {
    vec![0xA0 ^ i as u8; 24]
}

/// Builds a fresh single-shard store with `RECORDS` live records spread
/// over several small segments, flushed and closed.
fn build(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let cfg = StoreConfig::new(dir).with_shards(1).with_segment_bytes(96);
    let store = Store::open(cfg).expect("fresh store opens");
    for i in 0..RECORDS {
        store.put(0, &key_of(i), &value_of(i)).expect("put succeeds");
    }
    store.flush().expect("flush succeeds");
}

/// The shard's segment files, sorted, with only those holding frames
/// (longer than the bare header) as flip candidates.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let shard = dir.join("shard-00");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&shard)
        .expect("shard dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    files.sort();
    files.retain(|p| std::fs::metadata(p).expect("segment metadata").len() > HEADER_LEN);
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one random bit in one random frame byte of one random closed
    /// segment: exactly one key is lost (the damaged frame's), every
    /// other key survives byte for byte, the damage is accounted as one
    /// quarantined region or one torn truncation, and the store still
    /// accepts writes.
    #[test]
    fn single_bit_flip_costs_at_most_the_damaged_frame(
        seg_sel in 0usize..1024, off_sel in 0usize..65536, bit in 0u32..8
    ) {
        let dir = std::env::temp_dir()
            .join(format!("anonet-store-corrupt-{}", std::process::id()));
        build(&dir);

        let files = segment_files(&dir);
        prop_assert!(!files.is_empty());
        let path = &files[seg_sel % files.len()];
        let mut bytes = std::fs::read(path).expect("segment readable");
        // Stay off the 8-byte header: header damage is hard corruption by
        // design (wrong magic/version is not recoverable frame damage).
        let offset = HEADER_LEN as usize + off_sel % (bytes.len() - HEADER_LEN as usize);
        bytes[offset] ^= 1 << bit;
        std::fs::write(path, &bytes).expect("segment writable");

        let store = Store::open(StoreConfig::new(&dir).with_shards(1).with_segment_bytes(96))
            .expect("recovery must absorb a single flipped bit");
        let mut lost = Vec::new();
        for i in 0..RECORDS {
            match store.get(0, &key_of(i)).expect("get succeeds") {
                Some(v) => prop_assert_eq!(v, value_of(i), "key {} must never change value", i),
                None => lost.push(i),
            }
        }
        // The flipped byte sits in exactly one frame, and every frame
        // here is a live put — so exactly one key is gone.
        prop_assert_eq!(lost.len(), 1, "flip at {} in {:?} lost keys {:?}", offset, path, lost);
        let stats = store.stats();
        prop_assert_eq!(
            stats.quarantined_regions + stats.torn_truncations,
            1,
            "one damaged frame must be one quarantine or one torn tail"
        );
        prop_assert_eq!(stats.recovered_records as usize, RECORDS - 1);
        if stats.quarantined_regions == 1 {
            prop_assert!(stats.quarantined_bytes > 0);
        }

        // The store stays fully usable: the lost key can be re-put.
        store.put(0, &key_of(lost[0]), &value_of(lost[0])).expect("re-put succeeds");
        prop_assert_eq!(
            store.get(0, &key_of(lost[0])).expect("get succeeds"),
            Some(value_of(lost[0]))
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
