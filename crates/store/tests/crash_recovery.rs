//! Crash-safety proof for `anonet-store`.
//!
//! Two attack models:
//!
//! 1. **Deterministic torn tails** — a flushed store's last segment is
//!    truncated at *every* byte position inside its final frame; each
//!    mutant must reopen cleanly, recover exactly the complete records,
//!    and behave byte-identically to an uncrashed store once the lost
//!    tail is rewritten.
//! 2. **Kill during write** — a child process (this same test binary,
//!    re-invoked with an env marker) appends continuously until the
//!    parent SIGKILLs it mid-stream. The survivor directory must reopen
//!    cleanly and hold a strict prefix of the child's writes.

use std::path::{Path, PathBuf};
use std::process::Command;

use anonet_store::{Store, StoreConfig};

const CHILD_ENV: &str = "ANONET_STORE_CRASH_DIR";
const NS: u8 = 0;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anonet-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shard so write order is total and the prefix property is exact.
fn cfg(dir: &Path) -> StoreConfig {
    StoreConfig::new(dir).with_shards(1).with_segment_bytes(1 << 20)
}

fn key(i: u32) -> Vec<u8> {
    let mut k = vec![7u8]; // fixed first byte: everything on shard 0
    k.extend_from_slice(&i.to_le_bytes());
    k
}

fn value(i: u32) -> Vec<u8> {
    (0..64).map(|j| (i as u8).wrapping_mul(31).wrapping_add(j)).collect()
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// The record count a reopened store recovered, verified to be the exact
/// contiguous prefix 0..k of the writer's sequence.
fn assert_prefix(store: &Store, upper_bound: u32) -> u32 {
    let mut k = 0;
    while store.contains(NS, &key(k)) {
        assert_eq!(
            store.get(NS, &key(k)).unwrap().as_deref(),
            Some(value(k).as_slice()),
            "recovered record {k} must be intact"
        );
        k += 1;
        assert!(k <= upper_bound, "recovered more records than were written");
    }
    // Nothing beyond the prefix survived (the while loop above already
    // proves contiguity; probe a bounded window past the edge).
    for i in k..upper_bound.min(k.saturating_add(64)) {
        assert!(!store.contains(NS, &key(i)), "record {i} must not outlive a torn prefix of {k}");
    }
    k
}

#[test]
fn torn_tail_at_every_byte_recovers_complete_prefix() {
    let base = tmp("torn-base");
    const N: u32 = 8;
    {
        let store = Store::open(cfg(&base)).unwrap();
        for i in 0..N {
            store.put(NS, &key(i), &value(i)).unwrap();
        }
        store.flush().unwrap();
    }
    let seg = base.join("shard-00").join("seg-00000000.log");
    let bytes = std::fs::read(&seg).unwrap();
    // The last frame: 8B prefix + payload (1 kind + 1 ns + 4 keylen + 5 key + 64 value).
    let last_frame_len = 8 + 1 + 1 + 4 + key(0).len() + value(0).len();
    let last_frame_start = bytes.len() - last_frame_len;

    for cut in last_frame_start..bytes.len() {
        let mutant = tmp(&format!("torn-{cut}"));
        copy_dir(&base, &mutant);
        let seg_m = mutant.join("shard-00").join("seg-00000000.log");
        std::fs::write(&seg_m, &bytes[..cut]).unwrap();

        // Reopens cleanly: a torn tail is recovery work, never an error.
        let store = Store::open(cfg(&mutant)).unwrap();
        let recovered = assert_prefix(&store, N);
        assert_eq!(recovered, N - 1, "cut at {cut} strips exactly the final record");
        let stats = store.stats();
        assert_eq!(stats.recovered_records, u64::from(N - 1));
        // A cut exactly on the frame boundary leaves a clean file; any
        // cut inside the frame is a torn tail recovery must truncate.
        assert_eq!(stats.torn_truncations, u64::from(cut != last_frame_start));

        // Rewriting the lost record makes the store byte-identical to the
        // uncrashed one, key by key.
        store.put(NS, &key(N - 1), &value(N - 1)).unwrap();
        store.flush().unwrap();
        drop(store);
        let healed = Store::open(cfg(&mutant)).unwrap();
        let uncrashed = Store::open(cfg(&base)).unwrap();
        assert_eq!(healed.keys(), uncrashed.keys());
        for i in 0..N {
            assert_eq!(healed.get(NS, &key(i)).unwrap(), uncrashed.get(NS, &key(i)).unwrap());
        }
        std::fs::remove_dir_all(&mutant).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn torn_tail_on_a_frame_boundary_is_clean() {
    let base = tmp("boundary");
    {
        let store = Store::open(cfg(&base)).unwrap();
        for i in 0..4 {
            store.put(NS, &key(i), &value(i)).unwrap();
        }
        store.flush().unwrap();
    }
    let seg = base.join("shard-00").join("seg-00000000.log");
    let bytes = std::fs::read(&seg).unwrap();
    let frame_len = 8 + 1 + 1 + 4 + key(0).len() + value(0).len();
    // Cut exactly after the second frame: a valid file, no torn tail.
    std::fs::write(&seg, &bytes[..8 + 2 * frame_len]).unwrap();
    let store = Store::open(cfg(&base)).unwrap();
    assert_eq!(assert_prefix(&store, 4), 2);
    assert_eq!(store.stats().torn_truncations, 0);
    std::fs::remove_dir_all(&base).ok();
}

/// Child half of the kill test: appends records 0, 1, 2, ... with
/// per-write fsync until killed. Runs (and never finishes) only when the
/// parent sets [`CHILD_ENV`]; as an ordinary test it is a no-op.
#[test]
fn crash_writer_child() {
    let Ok(dir) = std::env::var(CHILD_ENV) else { return };
    let store = Store::open(cfg(Path::new(&dir)).with_sync_writes(true)).unwrap();
    let mut i = 0u32;
    loop {
        store.put(NS, &key(i), &value(i)).unwrap();
        i += 1;
    }
}

#[test]
fn kill_during_write_leaves_recoverable_store() {
    let dir = tmp("killed");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(&exe)
        .args(["--exact", "crash_writer_child", "--nocapture"])
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning the writer child");

    // Let the child get a meaningful number of appends in, then kill it
    // cold (SIGKILL — no destructors, no flush).
    let seg = dir.join("shard-00").join("seg-00000000.log");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let written = std::fs::metadata(&seg).map(|m| m.len()).unwrap_or(0);
        if written > 4096 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "child never started writing");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    child.kill().expect("killing the writer child");
    child.wait().expect("reaping the writer child");

    // The survivor must reopen cleanly and hold an exact prefix.
    let store = Store::open(cfg(&dir)).unwrap();
    let recovered = assert_prefix(&store, u32::MAX);
    assert!(recovered > 10, "expected a meaningful prefix, got {recovered}");
    assert_eq!(store.stats().recovered_records, u64::from(recovered));

    // And it must remain a fully functional store.
    store.put(NS, &key(recovered), &value(recovered)).unwrap();
    assert_eq!(assert_prefix(&store, u32::MAX), recovered + 1);
    store.flush().unwrap();
    drop(store);
    let reopened = Store::open(cfg(&dir)).unwrap();
    assert_eq!(assert_prefix(&reopened, u32::MAX), recovered + 1);
    std::fs::remove_dir_all(&dir).ok();
}
