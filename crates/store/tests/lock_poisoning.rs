//! A panicked writer must not brick its shard.
//!
//! `Store` serializes each shard behind a `std::sync::Mutex`. If a
//! writer panics while holding the guard — here, a recorder that panics
//! from inside `put`'s critical section — the mutex is poisoned. The
//! store's documented policy (`Store::lock_shard`) is to recover the
//! guard with `into_inner`: every mutation under the lock keeps the
//! in-memory state consistent at each step, so later callers see either
//! the whole committed write or none of its bookkeeping. This test pins
//! that contract end to end: reads, writes, and a full reopen all work
//! on the shard the panic happened on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use anonet_obs::{names, Json, Recorder, SpanId};
use anonet_store::{Store, StoreConfig};

const NS: u8 = 0;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anonet-poison-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A recorder that panics from the first `counter` call after `arm()`.
///
/// `Store::put` bumps the append counter while the shard guard is held,
/// so the panic fires inside the critical section — after the frame and
/// index update committed — and poisons the shard mutex.
#[derive(Debug, Default)]
struct PanicOnceRecorder {
    armed: AtomicBool,
}

impl PanicOnceRecorder {
    fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }
}

impl Recorder for PanicOnceRecorder {
    fn span_open(&self, _id: SpanId, _parent: Option<SpanId>, _name: &str) {}
    fn span_close(&self, _id: SpanId, _parent: Option<SpanId>, _name: &str, _wall: Duration) {}
    fn span_attr(&self, _id: SpanId, _key: &str, _value: &Json) {}

    fn counter(&self, name: &str, _delta: u64) {
        if name == names::STORE_SEGMENT_APPENDS && self.armed.swap(false, Ordering::SeqCst) {
            panic!("injected recorder panic inside the shard critical section");
        }
    }

    fn histogram(&self, _name: &str, _value: u64) {}
}

#[test]
fn panicked_writer_does_not_brick_the_shard() {
    let dir = tmp("writer");
    let recorder = Arc::new(PanicOnceRecorder::default());
    let store = Store::open(StoreConfig::new(&dir).with_shards(1).with_recorder(recorder.clone()))
        .expect("open store");

    // Baseline write before the panic, on the same (only) shard.
    store.put(NS, b"k-before", b"v-before").expect("baseline put");

    recorder.arm();
    let outcome = catch_unwind(AssertUnwindSafe(|| store.put(NS, b"k-during", b"v-during")));
    assert!(outcome.is_err(), "armed recorder must panic out of put");

    // The panic fired after append + index insert, so the interrupted
    // write is fully committed and readable through the poisoned —
    // now recovered — lock.
    let during = store.get(NS, b"k-during").expect("get across recovered lock");
    assert_eq!(during.as_deref(), Some(b"v-during".as_ref()));
    let before = store.get(NS, b"k-before").expect("get baseline");
    assert_eq!(before.as_deref(), Some(b"v-before".as_ref()));

    // The shard keeps accepting writes.
    store.put(NS, b"k-after", b"v-after").expect("put after poison");
    let after = store.get(NS, b"k-after").expect("get after poison");
    assert_eq!(after.as_deref(), Some(b"v-after".as_ref()));

    // And nothing about the episode leaked to disk: a clean reopen
    // recovers all three records.
    drop(store);
    let reopened = Store::open(StoreConfig::new(&dir).with_shards(1)).expect("reopen");
    for (k, v) in [
        (b"k-before".as_ref(), b"v-before".as_ref()),
        (b"k-during", b"v-during"),
        (b"k-after", b"v-after"),
    ] {
        let got = reopened.get(NS, k).expect("get after reopen");
        assert_eq!(got.as_deref(), Some(v), "key {:?} after reopen", String::from_utf8_lossy(k));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
