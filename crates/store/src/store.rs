//! The sharded store: per-shard segment logs, in-memory indexes,
//! compaction, budget eviction, and the warm-start scan.
//!
//! Keys are routed to a shard by their **first byte** — by store
//! convention the first byte of the canonical quotient encoding
//! `s(G_*)`, so lifts of different base families land on (mostly)
//! different shards. Each shard owns its own [`Mutex`]: appends,
//! lookups, and compactions of independent shards proceed concurrently,
//! which is what lets `anonet-batch`'s scheduler fan a whole-store
//! compaction over its worker pool.
//!
//! The in-memory index is a [`BTreeMap`] keyed by `(namespace, key)`:
//! deterministic iteration order makes compaction output, warm-scan
//! order, and the `keys()` listing byte-for-byte reproducible — the same
//! discipline the workspace's determinism lint enforces on the
//! derandomization crates.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use anonet_obs::{names, noop, Json, Recorder, SharedRecorder, Span};

use crate::error::{Result, StoreError};
use crate::segment::{
    self, parse_segment_id, segment_file_name, Record, RecordKind, SegmentWriter, HEADER_LEN,
    MAX_PAYLOAD,
};

/// Everything configurable about a [`Store`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Root directory; shard subdirectories are created beneath it.
    pub dir: PathBuf,
    /// Number of key-prefix shards (1..=256).
    pub shards: usize,
    /// Active-segment roll threshold in bytes.
    pub segment_bytes: u64,
    /// Approximate live-payload budget for the whole store; beyond it,
    /// least-recently-used entries are evicted (per shard, at
    /// `budget / shards`). `None` disables eviction.
    pub budget_bytes: Option<u64>,
    /// `true` to fsync after every append (slow, maximally durable);
    /// `false` to sync only on [`Store::flush`] and segment rolls.
    pub sync_writes: bool,
    /// Observability sink for `store.*` metrics and spans.
    pub recorder: SharedRecorder,
}

impl StoreConfig {
    /// A config with the workspace defaults: 16 shards, 4 MiB segments,
    /// no budget, no per-write fsync, no-op recorder.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            shards: 16,
            segment_bytes: 4 << 20,
            budget_bytes: None,
            sync_writes: false,
            recorder: noop(),
        }
    }

    /// Overrides the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the segment roll threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Sets a live-payload budget (LRU eviction beyond it).
    pub fn with_budget_bytes(mut self, bytes: u64) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Enables fsync-per-append durability.
    pub fn with_sync_writes(mut self, sync: bool) -> Self {
        self.sync_writes = sync;
        self
    }

    /// Attaches an observability recorder.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }
}

/// Where a live record lives on disk, plus its access accounting.
#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    segment: u64,
    offset: u64,
    frame_len: u32,
    /// LRU stamp (shard-local logical clock).
    stamp: u64,
    /// Lookups served since this entry was (re)indexed.
    hits: u32,
}

/// Per-shard monotone counters, aggregated into [`StoreStats`].
#[derive(Clone, Copy, Debug, Default)]
struct ShardCounters {
    appends: u64,
    rolls: u64,
    torn_truncations: u64,
    quarantined_regions: u64,
    quarantined_bytes: u64,
    recovered_records: u64,
    compactions: u64,
    reclaimed_bytes: u64,
    evictions: u64,
}

#[derive(Debug)]
struct ShardState {
    dir: PathBuf,
    active: SegmentWriter,
    /// Read handles for every segment (the active one included).
    readers: BTreeMap<u64, (PathBuf, File)>,
    index: BTreeMap<(u8, Vec<u8>), IndexEntry>,
    clock: u64,
    /// Bytes of live frames (indexed records).
    live_bytes: u64,
    /// Bytes of superseded/tombstoned frames awaiting compaction.
    dead_bytes: u64,
    /// Total segment-file bytes on disk (headers included).
    disk_bytes: u64,
    counters: ShardCounters,
}

/// A point-in-time snapshot of store accounting, aggregated over shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Shard count.
    pub shards: usize,
    /// Segment files on disk.
    pub segments: usize,
    /// Live (indexed) records.
    pub live_records: usize,
    /// Bytes of live frames.
    pub live_bytes: u64,
    /// Bytes of dead frames (superseded puts, tombstones).
    pub dead_bytes: u64,
    /// Total segment bytes on disk.
    pub disk_bytes: u64,
    /// Frames appended over the store's lifetime (this process).
    pub appends: u64,
    /// Active-segment rolls.
    pub rolls: u64,
    /// Torn tails truncated during recovery.
    pub torn_truncations: u64,
    /// Mid-file damaged regions quarantined by CRC resynchronization
    /// during recovery (closed-segment corruption, not torn tails).
    pub quarantined_regions: u64,
    /// Bytes inside quarantined regions.
    pub quarantined_bytes: u64,
    /// Intact records recovered by open-time scans.
    pub recovered_records: u64,
    /// Compaction runs.
    pub compactions: u64,
    /// Bytes reclaimed by compaction.
    pub reclaimed_bytes: u64,
    /// Entries evicted to respect the budget.
    pub evictions: u64,
}

/// A log-structured, sharded, crash-safe key/value store.
///
/// See the crate docs for the file format and recovery contract. All
/// methods take `&self`; shards lock independently.
///
/// # Example
///
/// ```
/// use anonet_store::{Store, StoreConfig};
///
/// # fn main() -> Result<(), anonet_store::StoreError> {
/// let dir = std::env::temp_dir().join(format!("anonet-store-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let store = Store::open(StoreConfig::new(&dir))?;
/// store.put(0, b"s(G_*) bytes", b"canonical tapes")?;
/// assert_eq!(store.get(0, b"s(G_*) bytes")?.as_deref(), Some(&b"canonical tapes"[..]));
/// store.flush()?;
/// drop(store);
/// // A reopened store recovers the record from its segments.
/// let reopened = Store::open(StoreConfig::new(&dir))?;
/// assert_eq!(reopened.get(0, b"s(G_*) bytes")?.as_deref(), Some(&b"canonical tapes"[..]));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Store {
    cfg: StoreConfig,
    shards: Vec<Mutex<ShardState>>,
}

impl Store {
    /// Opens (creating if absent) the store at `cfg.dir`, scanning every
    /// segment, truncating torn tails, and rebuilding the in-memory
    /// indexes.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for unusable knobs; I/O errors; and
    /// [`StoreError::Corrupt`] for damage recovery cannot attribute to a
    /// torn tail (foreign files, checksummed-but-undecodable frames).
    pub fn open(cfg: StoreConfig) -> Result<Store> {
        if cfg.shards == 0 || cfg.shards > 256 {
            return Err(StoreError::InvalidConfig {
                detail: format!("shards must be 1..=256, got {}", cfg.shards),
            });
        }
        if cfg.segment_bytes < 64 {
            return Err(StoreError::InvalidConfig {
                detail: format!("segment_bytes must be >= 64, got {}", cfg.segment_bytes),
            });
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        {
            let rec: &dyn Recorder = &*cfg.recorder;
            let _open_span = Span::new(rec, names::SPAN_STORE_OPEN);
            std::fs::create_dir_all(&cfg.dir).map_err(|e| {
                StoreError::io(format!("creating store dir {}", cfg.dir.display()), e)
            })?;
            for s in 0..cfg.shards {
                let recover_span = Span::new(rec, names::SPAN_SEGMENT_RECOVER);
                let state = open_shard(&cfg, s)?;
                recover_span.attr("shard", s as u64);
                recover_span.attr("recovered", state.counters.recovered_records);
                rec.counter(names::STORE_SEGMENT_RECOVERED, state.counters.recovered_records);
                rec.counter(names::STORE_SEGMENT_TORN, state.counters.torn_truncations);
                rec.counter(names::STORE_SEGMENT_QUARANTINED, state.counters.quarantined_regions);
                shards.push(Mutex::new(state));
            }
        }
        Ok(Store { cfg, shards })
    }

    /// The shard a key routes to: its first byte modulo the shard count
    /// (keys start with `s(G_*)`, so this is quotient-prefix sharding).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        key.first().copied().unwrap_or(0) as usize % self.cfg.shards
    }

    /// The shard count.
    pub fn shard_count(&self) -> usize {
        self.cfg.shards
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Locks shard `s`, recovering the guard if the mutex is poisoned.
    ///
    /// Poisoning policy: a panic on one writer thread must not brick the
    /// shard for every later caller, so this always takes
    /// `PoisonError::into_inner`. That is sound because mutations under
    /// the lock are ordered so the in-memory state is consistent after
    /// every step: the frame is appended (and optionally synced) before
    /// the index points at it, and byte accounting follows the index
    /// insert. A panic mid-update can therefore lose at most the
    /// bookkeeping of the interrupted write — never a committed
    /// key→offset mapping — and all derived state is rebuilt from the
    /// segments on reopen anyway. The regression test
    /// `tests/lock_poisoning.rs` pins this: after a writer panics while
    /// holding the shard lock, the same shard must keep serving reads
    /// and accepting writes.
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, ShardState> {
        self.shards[s].lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Binds `key` to `value` in namespace `ns` (latest write wins),
    /// appending one frame to the key's shard.
    ///
    /// # Errors
    ///
    /// I/O errors; [`StoreError::Codec`] for oversized payloads.
    pub fn put(&self, ns: u8, key: &[u8], value: &[u8]) -> Result<()> {
        let record = Record { kind: RecordKind::Put, ns, key: key.to_vec(), value: value.to_vec() };
        let frame = record.encode_frame();
        if frame.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(StoreError::codec(format!(
                "record of {} bytes exceeds the {} byte frame cap",
                frame.len(),
                MAX_PAYLOAD
            )));
        }
        let rec: &dyn Recorder = &*self.cfg.recorder;
        let write_span = Span::new(rec, names::SPAN_SEGMENT_WRITE);
        write_span.attr("bytes", frame.len() as u64);
        let s = self.shard_of(key);
        let mut guard = self.lock_shard(s);
        let st = &mut *guard;
        self.roll_if_needed(st, frame.len() as u64)?;
        let offset = st.active.append(&frame)?;
        if self.cfg.sync_writes {
            st.active.sync()?;
        }
        st.disk_bytes += frame.len() as u64;
        st.clock += 1;
        let entry = IndexEntry {
            segment: st.active.id,
            offset,
            frame_len: frame.len() as u32,
            stamp: st.clock,
            hits: 0,
        };
        if let Some(old) = st.index.insert((ns, key.to_vec()), entry) {
            st.dead_bytes += u64::from(old.frame_len);
            st.live_bytes -= u64::from(old.frame_len);
        }
        st.live_bytes += frame.len() as u64;
        st.counters.appends += 1;
        rec.counter(names::STORE_SEGMENT_APPENDS, 1);
        rec.counter(names::STORE_SEGMENT_BYTES, frame.len() as u64);
        self.enforce_budget(st)?;
        Ok(())
    }

    /// Looks up `key` in namespace `ns`, reading the record back from its
    /// segment (the index holds offsets, not values).
    ///
    /// # Errors
    ///
    /// I/O errors; [`StoreError::Corrupt`] if the frame on disk fails its
    /// checksum or no longer matches the key (either indicates damage
    /// *behind* the index, which recovery would have caught on open).
    pub fn get(&self, ns: u8, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let rec: &dyn Recorder = &*self.cfg.recorder;
        let read_span = Span::new(rec, names::SPAN_SEGMENT_READ);
        let s = self.shard_of(key);
        let mut guard = self.lock_shard(s);
        let st = &mut *guard;
        st.clock += 1;
        let now = st.clock;
        let Some(entry) = st.index.get_mut(&(ns, key.to_vec())) else {
            return Ok(None);
        };
        entry.stamp = now;
        entry.hits = entry.hits.saturating_add(1);
        let (segment, offset, frame_len) = (entry.segment, entry.offset, entry.frame_len);
        let Some((path, file)) = st.readers.get_mut(&segment) else {
            return Err(StoreError::Corrupt {
                segment: st.dir.join(segment_file_name(segment)),
                offset,
                detail: "index points at a segment with no reader (internal invariant)".into(),
            });
        };
        let record = segment::read_frame(file, path, offset, frame_len)?;
        if record.ns != ns || record.key != key {
            return Err(StoreError::Corrupt {
                segment: path.clone(),
                offset,
                detail: "frame key does not match the index (internal invariant)".into(),
            });
        }
        read_span.attr("bytes", record.value.len() as u64);
        rec.counter(names::STORE_SEGMENT_READS, 1);
        rec.counter(names::STORE_SEGMENT_READ_BYTES, record.value.len() as u64);
        Ok(Some(record.value))
    }

    /// `true` iff `key` is live in namespace `ns`.
    pub fn contains(&self, ns: u8, key: &[u8]) -> bool {
        let s = self.shard_of(key);
        self.lock_shard(s).index.contains_key(&(ns, key.to_vec()))
    }

    /// Unbinds `key` in namespace `ns`, appending a tombstone so the
    /// removal survives reopen. Returns `true` if the key was live.
    ///
    /// # Errors
    ///
    /// I/O errors appending the tombstone.
    pub fn remove(&self, ns: u8, key: &[u8]) -> Result<bool> {
        let s = self.shard_of(key);
        let mut guard = self.lock_shard(s);
        let st = &mut *guard;
        if !st.index.contains_key(&(ns, key.to_vec())) {
            return Ok(false);
        }
        self.remove_locked(st, ns, key)?;
        Ok(true)
    }

    /// Removes a key known to be present, under the shard lock.
    fn remove_locked(&self, st: &mut ShardState, ns: u8, key: &[u8]) -> Result<()> {
        let tomb = Record { kind: RecordKind::Tombstone, ns, key: key.to_vec(), value: Vec::new() };
        let frame = tomb.encode_frame();
        self.roll_if_needed(st, frame.len() as u64)?;
        st.active.append(&frame)?;
        if self.cfg.sync_writes {
            st.active.sync()?;
        }
        st.disk_bytes += frame.len() as u64;
        st.counters.appends += 1;
        let rec: &dyn Recorder = &*self.cfg.recorder;
        rec.counter(names::STORE_SEGMENT_APPENDS, 1);
        rec.counter(names::STORE_SEGMENT_BYTES, frame.len() as u64);
        if let Some(old) = st.index.remove(&(ns, key.to_vec())) {
            st.live_bytes -= u64::from(old.frame_len);
            st.dead_bytes += u64::from(old.frame_len);
        }
        // The tombstone frame itself is dead weight until compaction.
        st.dead_bytes += frame.len() as u64;
        Ok(())
    }

    /// Rolls the active segment if appending `incoming` bytes would cross
    /// the threshold (never rolls an empty segment).
    fn roll_if_needed(&self, st: &mut ShardState, incoming: u64) -> Result<()> {
        if st.active.len + incoming <= self.cfg.segment_bytes || st.active.len <= HEADER_LEN {
            return Ok(());
        }
        st.active.sync()?;
        let next_id = st.active.id + 1;
        let writer = SegmentWriter::create(&st.dir, next_id, (st.dir_shard_no()) as u16)?;
        let reader = open_reader(&writer.path)?;
        st.readers.insert(next_id, (writer.path.clone(), reader));
        st.disk_bytes += HEADER_LEN;
        st.active = writer;
        st.counters.rolls += 1;
        let rec: &dyn Recorder = &*self.cfg.recorder;
        rec.counter(names::STORE_SEGMENT_ROLLS, 1);
        Ok(())
    }

    /// Evicts least-recently-used entries while the shard is over its
    /// share of the budget.
    fn enforce_budget(&self, st: &mut ShardState) -> Result<()> {
        let Some(budget) = self.cfg.budget_bytes else { return Ok(()) };
        let per_shard = (budget / self.cfg.shards as u64).max(1);
        while st.live_bytes > per_shard && st.index.len() > 1 {
            let Some(victim) = st
                .index
                .iter()
                .min_by_key(|(k, e)| (e.stamp, (*k).clone()))
                .map(|((ns, key), _)| (*ns, key.clone()))
            else {
                return Ok(());
            };
            self.remove_locked(st, victim.0, &victim.1)?;
            st.counters.evictions += 1;
        }
        Ok(())
    }

    /// Live records across all shards.
    pub fn len(&self) -> usize {
        (0..self.cfg.shards).map(|s| self.lock_shard(s).index.len()).sum()
    }

    /// `true` iff no record is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live `(namespace, key)`, sorted (deterministic).
    pub fn keys(&self) -> Vec<(u8, Vec<u8>)> {
        let mut out = Vec::new();
        for s in 0..self.cfg.shards {
            out.extend(self.lock_shard(s).index.keys().cloned());
        }
        out.sort();
        out
    }

    /// Forces every shard's active segment to stable storage.
    ///
    /// # Errors
    ///
    /// The first sync failure.
    pub fn flush(&self) -> Result<()> {
        for s in 0..self.cfg.shards {
            self.lock_shard(s).active.sync()?;
        }
        Ok(())
    }

    /// Reads up to `limit` live entries of namespace `ns` for cache
    /// warming, hottest first (by lookup count, then key — deterministic;
    /// after a fresh open all counts are zero, so the order is the key
    /// order). Emits `store.warm.*` metrics.
    ///
    /// # Errors
    ///
    /// Read-back I/O or corruption errors.
    pub fn warm_scan(&self, ns: u8, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let rec: &dyn Recorder = &*self.cfg.recorder;
        let _warm_span = Span::new(rec, names::SPAN_STORE_WARM);
        let mut candidates: Vec<(std::cmp::Reverse<u32>, Vec<u8>)> = Vec::new();
        for s in 0..self.cfg.shards {
            let guard = self.lock_shard(s);
            for ((ens, key), entry) in guard.index.iter() {
                if *ens == ns {
                    candidates.push((std::cmp::Reverse(entry.hits), key.clone()));
                }
            }
        }
        candidates.sort();
        candidates.truncate(limit);
        let mut out = Vec::with_capacity(candidates.len());
        let mut bytes = 0u64;
        for (_, key) in candidates {
            if let Some(value) = self.get(ns, &key)? {
                bytes += (key.len() + value.len()) as u64;
                out.push((key, value));
            }
        }
        rec.counter(names::STORE_WARM_ENTRIES, out.len() as u64);
        rec.counter(names::STORE_WARM_BYTES, bytes);
        Ok(out)
    }

    /// Compacts one shard: rewrites every live record (in index order)
    /// into a fresh segment, then deletes the old segments. Dead frames —
    /// superseded puts, tombstones, evicted entries — are dropped.
    ///
    /// Crash-safe by ordering: the new segment is written and synced
    /// *before* any old file is unlinked, and it has a higher id, so a
    /// crash at any point leaves a store whose open-time scan reaches the
    /// same live set (duplicate records resolve latest-id-wins).
    ///
    /// Returns the bytes reclaimed.
    ///
    /// # Errors
    ///
    /// `InvalidConfig` for an out-of-range shard id; I/O errors.
    pub fn compact_shard(&self, s: usize) -> Result<u64> {
        if s >= self.cfg.shards {
            return Err(StoreError::InvalidConfig {
                detail: format!("shard {s} out of range (store has {})", self.cfg.shards),
            });
        }
        let rec: &dyn Recorder = &*self.cfg.recorder;
        let _compact_span = Span::new(rec, names::SPAN_STORE_COMPACT);
        let mut guard = self.lock_shard(s);
        let st = &mut *guard;
        let old_disk = st.disk_bytes;
        let next_id = st.active.id + 1;
        let mut writer = SegmentWriter::create(&st.dir, next_id, s as u16)?;

        // Rewrite live records in deterministic (ns, key) order.
        let live: Vec<((u8, Vec<u8>), IndexEntry)> =
            st.index.iter().map(|(k, e)| (k.clone(), *e)).collect();
        let mut new_entries: Vec<((u8, Vec<u8>), IndexEntry)> = Vec::with_capacity(live.len());
        for (key, entry) in live {
            let Some((path, file)) = st.readers.get_mut(&entry.segment) else {
                return Err(StoreError::Corrupt {
                    segment: st.dir.join(segment_file_name(entry.segment)),
                    offset: entry.offset,
                    detail: "compaction found an index entry with no reader".into(),
                });
            };
            let record = segment::read_frame(file, path, entry.offset, entry.frame_len)?;
            let frame = record.encode_frame();
            let offset = writer.append(&frame)?;
            new_entries.push((
                key,
                IndexEntry {
                    segment: next_id,
                    offset,
                    frame_len: frame.len() as u32,
                    stamp: entry.stamp,
                    hits: entry.hits,
                },
            ));
        }
        writer.sync()?;

        // Point of no return: the new segment is durable. Retire the old.
        let old_ids: Vec<u64> = st.readers.keys().copied().collect();
        for id in old_ids {
            let path = st.dir.join(segment_file_name(id));
            std::fs::remove_file(&path)
                .map_err(|e| StoreError::io(format!("removing {}", path.display()), e))?;
        }
        st.readers.clear();
        let reader = open_reader(&writer.path)?;
        st.readers.insert(next_id, (writer.path.clone(), reader));
        st.index = new_entries.into_iter().collect();
        st.live_bytes = st.index.values().map(|e| u64::from(e.frame_len)).sum();
        st.dead_bytes = 0;
        st.disk_bytes = writer.len;
        st.active = writer;
        let reclaimed = old_disk.saturating_sub(st.disk_bytes);
        st.counters.compactions += 1;
        st.counters.reclaimed_bytes += reclaimed;
        rec.counter(names::STORE_COMPACTION_RUNS, 1);
        rec.counter(names::STORE_COMPACTION_RECLAIMED, reclaimed);
        rec.histogram(names::STORE_COMPACTION_LIVE, st.index.len() as u64);
        Ok(reclaimed)
    }

    /// Compacts every shard sequentially; returns total bytes reclaimed.
    /// For concurrent compaction, fan [`Store::compact_shard`] over a
    /// worker pool — shards lock independently.
    ///
    /// # Errors
    ///
    /// The first shard failure.
    pub fn compact(&self) -> Result<u64> {
        let mut reclaimed = 0;
        for s in 0..self.cfg.shards {
            reclaimed += self.compact_shard(s)?;
        }
        Ok(reclaimed)
    }

    /// Aggregated accounting across shards.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats { shards: self.cfg.shards, ..StoreStats::default() };
        for s in 0..self.cfg.shards {
            let guard = self.lock_shard(s);
            stats.segments += guard.readers.len();
            stats.live_records += guard.index.len();
            stats.live_bytes += guard.live_bytes;
            stats.dead_bytes += guard.dead_bytes;
            stats.disk_bytes += guard.disk_bytes;
            stats.appends += guard.counters.appends;
            stats.rolls += guard.counters.rolls;
            stats.torn_truncations += guard.counters.torn_truncations;
            stats.quarantined_regions += guard.counters.quarantined_regions;
            stats.quarantined_bytes += guard.counters.quarantined_bytes;
            stats.recovered_records += guard.counters.recovered_records;
            stats.compactions += guard.counters.compactions;
            stats.reclaimed_bytes += guard.counters.reclaimed_bytes;
            stats.evictions += guard.counters.evictions;
        }
        stats
    }

    /// The store's accounting as a [`Json`] report (the workspace's one
    /// shared serializer), for CI artifacts and dashboards.
    pub fn report_json(&self) -> Json {
        let s = self.stats();
        Json::obj([
            ("dir", Json::str(self.cfg.dir.display().to_string())),
            ("shards", Json::from(s.shards)),
            ("segments", Json::from(s.segments)),
            ("live_records", Json::from(s.live_records)),
            ("live_bytes", Json::from(s.live_bytes as usize)),
            ("dead_bytes", Json::from(s.dead_bytes as usize)),
            ("disk_bytes", Json::from(s.disk_bytes as usize)),
            ("appends", Json::from(s.appends)),
            ("rolls", Json::from(s.rolls)),
            ("torn_truncations", Json::from(s.torn_truncations)),
            ("quarantined_regions", Json::from(s.quarantined_regions)),
            ("quarantined_bytes", Json::from(s.quarantined_bytes as usize)),
            ("recovered_records", Json::from(s.recovered_records)),
            ("compactions", Json::from(s.compactions)),
            ("reclaimed_bytes", Json::from(s.reclaimed_bytes as usize)),
            ("evictions", Json::from(s.evictions)),
        ])
    }
}

impl ShardState {
    /// The shard number, parsed back from the directory name (used only
    /// for segment headers on rolls).
    fn dir_shard_no(&self) -> usize {
        self.dir
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("shard-"))
            .and_then(|n| n.parse().ok())
            .unwrap_or(0)
    }
}

fn open_reader(path: &Path) -> Result<File> {
    File::open(path)
        .map_err(|e| StoreError::io(format!("opening reader for {}", path.display()), e))
}

/// Opens one shard directory: scans segments in id order, truncates torn
/// tails, rebuilds the index (latest frame wins, tombstones unbind), and
/// positions the active writer.
fn open_shard(cfg: &StoreConfig, s: usize) -> Result<ShardState> {
    let dir = cfg.dir.join(format!("shard-{s:02}"));
    std::fs::create_dir_all(&dir)
        .map_err(|e| StoreError::io(format!("creating shard dir {}", dir.display()), e))?;

    let mut ids: Vec<u64> = Vec::new();
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| StoreError::io(format!("listing shard dir {}", dir.display()), e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| StoreError::io(format!("listing shard dir {}", dir.display()), e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(id) = parse_segment_id(name) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();

    let mut counters = ShardCounters::default();
    let mut index: BTreeMap<(u8, Vec<u8>), IndexEntry> = BTreeMap::new();
    let mut readers: BTreeMap<u64, (PathBuf, File)> = BTreeMap::new();
    let mut dead_bytes = 0u64;
    let mut disk_bytes = 0u64;
    let mut clock = 0u64;
    let mut last_segment: Option<(u64, u64)> = None; // (id, validated len)

    for &id in &ids {
        let path = dir.join(segment_file_name(id));
        let outcome = segment::scan(&path)?;
        let valid_len =
            outcome.frames.last().map(|f| f.offset + u64::from(f.frame_len)).unwrap_or(HEADER_LEN);
        for region in &outcome.quarantined {
            counters.quarantined_regions += 1;
            counters.quarantined_bytes += region.len;
            // Quarantined bytes stay in the file until compaction; they
            // are dead weight, like superseded frames.
            dead_bytes += region.len;
        }
        if let Some(cut) = outcome.truncate_to {
            counters.torn_truncations += 1;
            if cut < HEADER_LEN {
                // Torn during file creation: rewrite a fresh header.
                SegmentWriter::create(&dir, id, s as u16)?;
            } else {
                let file = OpenOptions::new().write(true).open(&path).map_err(|e| {
                    StoreError::io(format!("reopening {} for truncation", path.display()), e)
                })?;
                file.set_len(cut).map_err(|e| {
                    StoreError::io(format!("truncating {} to {}", path.display(), cut), e)
                })?;
            }
        }
        for frame in &outcome.frames {
            counters.recovered_records += 1;
            clock += 1;
            let key = (frame.record.ns, frame.record.key.clone());
            match frame.record.kind {
                RecordKind::Put => {
                    let entry = IndexEntry {
                        segment: id,
                        offset: frame.offset,
                        frame_len: frame.frame_len,
                        stamp: clock,
                        hits: 0,
                    };
                    if let Some(old) = index.insert(key, entry) {
                        dead_bytes += u64::from(old.frame_len);
                    }
                }
                RecordKind::Tombstone => {
                    if let Some(old) = index.remove(&key) {
                        dead_bytes += u64::from(old.frame_len);
                    }
                    dead_bytes += u64::from(frame.frame_len);
                }
            }
        }
        disk_bytes += valid_len;
        readers.insert(id, (path, open_reader(&dir.join(segment_file_name(id)))?));
        last_segment = Some((id, valid_len));
    }

    // Position the active writer: continue the last segment if it has
    // room, else seal it and start the next.
    let active = match last_segment {
        None => {
            let writer = SegmentWriter::create(&dir, 0, s as u16)?;
            readers.insert(0, (writer.path.clone(), open_reader(&writer.path)?));
            disk_bytes += HEADER_LEN;
            writer
        }
        Some((id, len)) if len < cfg.segment_bytes => {
            SegmentWriter::reopen(&dir.join(segment_file_name(id)), id, len)?
        }
        Some((id, _)) => {
            let writer = SegmentWriter::create(&dir, id + 1, s as u16)?;
            readers.insert(id + 1, (writer.path.clone(), open_reader(&writer.path)?));
            disk_bytes += HEADER_LEN;
            counters.rolls += 1;
            writer
        }
    };

    let live_bytes = index.values().map(|e| u64::from(e.frame_len)).sum();
    Ok(ShardState {
        dir,
        active,
        readers,
        index,
        clock,
        live_bytes,
        dead_bytes,
        disk_bytes,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("anonet-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small(dir: &Path) -> StoreConfig {
        StoreConfig::new(dir).with_shards(4).with_segment_bytes(256)
    }

    #[test]
    fn put_get_roundtrip_and_latest_wins() {
        let dir = tmp("roundtrip");
        let store = Store::open(small(&dir)).unwrap();
        assert!(store.is_empty());
        store.put(0, b"alpha", b"one").unwrap();
        store.put(1, b"alpha", b"other-namespace").unwrap();
        store.put(0, b"alpha", b"two").unwrap();
        assert_eq!(store.get(0, b"alpha").unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(store.get(1, b"alpha").unwrap().as_deref(), Some(&b"other-namespace"[..]));
        assert_eq!(store.get(0, b"missing").unwrap(), None);
        assert_eq!(store.len(), 2);
        let stats = store.stats();
        assert_eq!(stats.appends, 3);
        assert!(stats.dead_bytes > 0); // the superseded "one"
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tmp("reopen");
        {
            let store = Store::open(small(&dir)).unwrap();
            for i in 0..20u8 {
                store.put(0, &[i, i + 1], &[i; 10]).unwrap();
            }
            store.remove(0, &[3, 4]).unwrap();
            store.flush().unwrap();
        }
        let store = Store::open(small(&dir)).unwrap();
        assert_eq!(store.len(), 19);
        assert_eq!(store.get(0, &[5, 6]).unwrap().as_deref(), Some(&[5u8; 10][..]));
        assert_eq!(store.get(0, &[3, 4]).unwrap(), None); // tombstone honored
        assert_eq!(store.stats().recovered_records, 21); // 20 puts + 1 tombstone
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_and_compaction_reclaims() {
        let dir = tmp("compact");
        let store = Store::open(small(&dir)).unwrap();
        // Overwrite one key many times: all but the last frame are dead.
        for i in 0..50u8 {
            store.put(2, b"hot", &[i; 32]).unwrap();
        }
        let before = store.stats();
        assert!(before.rolls > 0, "50 frames of ~50B must roll 256B segments");
        assert!(before.dead_bytes > 0);
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0);
        let after = store.stats();
        assert_eq!(after.dead_bytes, 0);
        assert_eq!(after.live_records, 1);
        assert_eq!(store.get(2, b"hot").unwrap().as_deref(), Some(&[49u8; 32][..]));
        // Compaction must also survive reopen.
        store.flush().unwrap();
        drop(store);
        let store = Store::open(small(&dir)).unwrap();
        assert_eq!(store.get(2, b"hot").unwrap().as_deref(), Some(&[49u8; 32][..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_evicts_lru() {
        let dir = tmp("budget");
        // 1 shard so the budget applies to one index; ~55B frames, so a
        // 120B budget holds two entries and the third forces an eviction.
        let cfg =
            StoreConfig::new(&dir).with_shards(1).with_segment_bytes(4096).with_budget_bytes(120);
        let store = Store::open(cfg).unwrap();
        store.put(0, b"a", &[1; 40]).unwrap();
        store.put(0, b"b", &[2; 40]).unwrap();
        // Touch "a" so "b" is the LRU victim when "c" overflows the budget.
        assert!(store.get(0, b"a").unwrap().is_some());
        store.put(0, b"c", &[3; 40]).unwrap();
        assert!(store.stats().evictions >= 1);
        assert!(store.get(0, b"b").unwrap().is_none());
        assert!(store.get(0, b"a").unwrap().is_some());
        assert!(store.get(0, b"c").unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_order_pins_lru_with_read_and_overwrite_refresh() {
        let dir = tmp("evict-order");
        // Same geometry as `budget_evicts_lru`: ~55B frames, 120B budget,
        // so two entries are resident and every third put evicts. This
        // test pins the *order* of victims: strict LRU, with both reads
        // and overwrites refreshing recency.
        let cfg =
            StoreConfig::new(&dir).with_shards(1).with_segment_bytes(4096).with_budget_bytes(120);
        let store = Store::open(cfg).unwrap();
        store.put(0, b"a", &[1; 40]).unwrap();
        store.put(0, b"b", &[2; 40]).unwrap();
        // A read refreshes "a", so "b" is the first victim.
        store.get(0, b"a").unwrap();
        store.put(0, b"c", &[3; 40]).unwrap();
        assert_eq!(store.stats().evictions, 1);
        assert!(store.get(0, b"b").unwrap().is_none());
        // Resident {a, c}; reading "c" makes "a" the second victim.
        store.get(0, b"c").unwrap();
        store.put(0, b"d", &[4; 40]).unwrap();
        assert_eq!(store.stats().evictions, 2);
        assert!(store.get(0, b"a").unwrap().is_none());
        // Overwriting a resident key evicts nothing (the superseded frame
        // turns dead, live stays at two entries) and refreshes "c" —
        // leaving "d" as the third victim.
        store.put(0, b"c", &[5; 40]).unwrap();
        assert_eq!(store.stats().evictions, 2);
        store.put(0, b"e", &[6; 40]).unwrap();
        assert_eq!(store.stats().evictions, 3);
        assert!(store.get(0, b"d").unwrap().is_none());
        assert_eq!(store.get(0, b"c").unwrap().as_deref(), Some(&[5u8; 40][..]));
        assert!(store.get(0, b"e").unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_scan_orders_hot_first() {
        let dir = tmp("warm");
        let store = Store::open(small(&dir)).unwrap();
        store.put(0, b"cold", b"c").unwrap();
        store.put(0, b"hot", b"h").unwrap();
        store.put(0, b"warm", b"w").unwrap();
        for _ in 0..5 {
            store.get(0, b"hot").unwrap();
        }
        store.get(0, b"warm").unwrap();
        let entries = store.warm_scan(0, 2).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, b"hot");
        assert_eq!(entries[1].0, b"warm");
        // Fresh open: zero hit counts, deterministic key order.
        store.flush().unwrap();
        drop(store);
        let store = Store::open(small(&dir)).unwrap();
        let entries = store.warm_scan(0, 10).unwrap();
        let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"cold"[..], &b"hot"[..], &b"warm"[..]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_route_to_first_byte_shards() {
        let dir = tmp("shards");
        let store = Store::open(small(&dir)).unwrap();
        assert_eq!(store.shard_of(&[0, 9, 9]), 0);
        assert_eq!(store.shard_of(&[1, 0, 0]), 1);
        assert_eq!(store.shard_of(&[5]), 1); // 5 % 4
        assert_eq!(store.shard_of(&[]), 0);
        // Different shards write different directories.
        store.put(0, &[0, 1], b"s0").unwrap();
        store.put(0, &[1, 1], b"s1").unwrap();
        assert!(dir.join("shard-00").join("seg-00000000.log").exists());
        assert!(dir.join("shard-01").join("seg-00000000.log").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reads_and_writes_emit_segment_spans_and_counters() {
        use std::sync::Arc;
        let dir = tmp("obs");
        let rec = Arc::new(anonet_obs::MemoryRecorder::new());
        let store = Store::open(small(&dir).with_recorder(rec.clone())).unwrap();
        store.put(0, b"k", b"value-bytes").unwrap();
        assert_eq!(store.get(0, b"k").unwrap().as_deref(), Some(&b"value-bytes"[..]));
        assert!(store.get(0, b"missing").unwrap().is_none());
        let snap = rec.snapshot();
        // Recovery scans nest under the open span, one per shard.
        assert_eq!(snap.span("store_open/segment_recover").unwrap().count, 4);
        assert_eq!(snap.span(names::SPAN_SEGMENT_WRITE).unwrap().count, 1);
        // Both the hit and the miss open a read span...
        assert_eq!(snap.span(names::SPAN_SEGMENT_READ).unwrap().count, 2);
        // ...but only the hit reaches a segment frame and counts bytes.
        assert_eq!(snap.counter(names::STORE_SEGMENT_READS), 1);
        assert_eq!(snap.counter(names::STORE_SEGMENT_READ_BYTES), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_roundtrips_through_the_shared_parser() {
        let dir = tmp("json");
        let store = Store::open(small(&dir)).unwrap();
        store.put(0, b"k", b"v").unwrap();
        let text = store.report_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("live_records").and_then(Json::as_f64), Some(1.0));
        assert_eq!(parsed.get("shards").and_then(Json::as_f64), Some(4.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_configs() {
        let dir = tmp("badcfg");
        assert!(matches!(
            Store::open(StoreConfig::new(&dir).with_shards(0)),
            Err(StoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Store::open(StoreConfig::new(&dir).with_shards(300)),
            Err(StoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Store::open(StoreConfig::new(&dir).with_segment_bytes(8)),
            Err(StoreError::InvalidConfig { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_shard_use_is_consistent() {
        use std::sync::Arc;
        let dir = tmp("concurrent");
        let store = Arc::new(Store::open(small(&dir)).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..30u8 {
                        let key = [t, i];
                        store.put(0, &key, &[t ^ i; 8]).unwrap();
                        assert_eq!(store.get(0, &key).unwrap().as_deref(), Some(&[t ^ i; 8][..]));
                    }
                });
            }
        });
        assert_eq!(store.len(), 120);
        std::fs::remove_dir_all(&dir).ok();
    }
}
