//! Append-only segment files: the on-disk unit of the store.
//!
//! A segment is a header followed by a sequence of *frames*:
//!
//! ```text
//! header  := b"ANST"  version:u16le  shard:u16le             (8 bytes)
//! frame   := payload_len:u32le  crc32:u32le  payload         (8 + len bytes)
//! payload := kind:u8  ns:u8  key_len:u32le  key  value
//! ```
//!
//! The CRC covers the payload only; the length prefix plus checksum is
//! what makes recovery possible. Two distinct kinds of damage are told
//! apart on open:
//!
//! * **Torn tail** — a crash can tear at most the tail of the active
//!   segment (appends are sequential), so a damaged frame with *no* valid
//!   frame anywhere after it marks the torn tail: everything from it on
//!   is truncated. That is the crash-safety contract the `crash_recovery`
//!   integration tests drive with kill-during-write and arbitrary-byte
//!   truncation.
//! * **Mid-file corruption** (bit rot, a flipped bit in a closed
//!   segment) — a damaged frame *followed* by intact frames cannot be a
//!   torn write. The scan resynchronizes: it searches forward for the
//!   next offset at which a fully valid frame begins, quarantines the
//!   damaged region (only the keys whose latest frame sat inside it are
//!   lost), and keeps every frame after it. The `corruption` integration
//!   tests pin this with random single-bit flips.
//!
//! Writes build the full frame in memory and hand it to the OS as a
//! single `write_all`, so a frame is either entirely in the file, torn at
//! the end, or absent — never interleaved.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::{Result, StoreError};

/// Segment file magic.
pub(crate) const MAGIC: [u8; 4] = *b"ANST";
/// On-disk format version.
pub(crate) const VERSION: u16 = 1;
/// Header length in bytes.
pub(crate) const HEADER_LEN: u64 = 8;
/// Frame prefix length (payload length + CRC).
pub(crate) const FRAME_PREFIX: u64 = 8;
/// Hard cap on a single payload, as a sanity bound during recovery: a
/// length prefix beyond this is treated as tail corruption, not an
/// instruction to allocate gigabytes.
pub(crate) const MAX_PAYLOAD: u32 = 1 << 28;

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// What a frame does to its key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecordKind {
    /// Bind the key to the value (latest frame wins).
    Put,
    /// Unbind the key (eviction or explicit removal).
    Tombstone,
}

/// One decoded frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Record {
    /// Put or tombstone.
    pub kind: RecordKind,
    /// Caller-chosen namespace (the store keeps quotient and assignment
    /// tables apart with it).
    pub ns: u8,
    /// The key. By store convention it begins with the canonical quotient
    /// encoding `s(G_*)`, whose first byte picks the shard.
    pub key: Vec<u8>,
    /// The value (empty for tombstones).
    pub value: Vec<u8>,
}

impl Record {
    /// Serializes the payload (everything the CRC covers).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.key.len() + self.value.len());
        out.push(match self.kind {
            RecordKind::Put => 0,
            RecordKind::Tombstone => 1,
        });
        out.push(self.ns);
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&self.value);
        out
    }

    /// Builds the full frame: length prefix, CRC, payload.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(FRAME_PREFIX as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes a payload produced by [`Record::encode_payload`].
    pub fn decode_payload(payload: &[u8]) -> Result<Record> {
        if payload.len() < 6 {
            return Err(StoreError::codec(format!(
                "payload of {} bytes is shorter than the 6-byte record header",
                payload.len()
            )));
        }
        let kind = match payload[0] {
            0 => RecordKind::Put,
            1 => RecordKind::Tombstone,
            other => return Err(StoreError::codec(format!("unknown record kind {other}"))),
        };
        let ns = payload[1];
        let key_len = u32::from_le_bytes([payload[2], payload[3], payload[4], payload[5]]) as usize;
        let rest = &payload[6..];
        if key_len > rest.len() {
            return Err(StoreError::codec(format!(
                "key length {key_len} exceeds the {} remaining payload bytes",
                rest.len()
            )));
        }
        Ok(Record { kind, ns, key: rest[..key_len].to_vec(), value: rest[key_len..].to_vec() })
    }
}

/// The name of segment `id`.
pub(crate) fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.log")
}

/// Parses a segment id back out of a file name, if it is one.
pub(crate) fn parse_segment_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if rest.len() == 8 && rest.bytes().all(|b| b.is_ascii_digit()) {
        rest.parse().ok()
    } else {
        None
    }
}

/// The append half of the active segment.
#[derive(Debug)]
pub(crate) struct SegmentWriter {
    /// Segment id (monotone within a shard).
    pub id: u64,
    /// Full path of the file.
    pub path: PathBuf,
    file: File,
    /// Current file length in bytes (header included).
    pub len: u64,
}

impl SegmentWriter {
    /// Creates segment `id` in `dir` and writes its header.
    pub fn create(dir: &Path, id: u64, shard: u16) -> Result<SegmentWriter> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::io(format!("creating segment {}", path.display()), e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&shard.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| StoreError::io(format!("writing header of {}", path.display()), e))?;
        Ok(SegmentWriter { id, path, file, len: HEADER_LEN })
    }

    /// Reopens an existing (already recovered) segment for appending at
    /// `len` — the scanned, validated length.
    pub fn reopen(path: &Path, id: u64, len: u64) -> Result<SegmentWriter> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(format!("reopening segment {}", path.display()), e))?;
        file.seek(SeekFrom::Start(len))
            .map_err(|e| StoreError::io(format!("seeking end of {}", path.display()), e))?;
        Ok(SegmentWriter { id, path: path.to_path_buf(), file, len })
    }

    /// Appends one frame; returns its offset. The frame is a single
    /// `write_all`, so a crash can only tear its tail.
    pub fn append(&mut self, frame: &[u8]) -> Result<u64> {
        let offset = self.len;
        self.file
            .write_all(frame)
            .map_err(|e| StoreError::io(format!("appending to {}", self.path.display()), e))?;
        self.len += frame.len() as u64;
        Ok(offset)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io(format!("syncing {}", self.path.display()), e))
    }
}

/// One intact frame found by [`scan`].
#[derive(Clone, Debug)]
pub(crate) struct ScannedFrame {
    /// The decoded record.
    pub record: Record,
    /// Frame offset in the file.
    pub offset: u64,
    /// Total frame length (prefix + payload).
    pub frame_len: u32,
}

/// A damaged byte range the scan skipped over because intact frames
/// follow it (mid-file corruption, not a torn tail).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct QuarantinedRegion {
    /// Offset of the first damaged byte (the failed frame's prefix).
    pub offset: u64,
    /// Length of the skipped region in bytes.
    pub len: u64,
}

/// The result of scanning a segment on open.
#[derive(Debug)]
pub(crate) struct ScanOutcome {
    /// Every intact frame, in append order.
    pub frames: Vec<ScannedFrame>,
    /// If the tail was torn: the offset the file must be truncated to.
    pub truncate_to: Option<u64>,
    /// Mid-file regions quarantined by CRC resynchronization.
    pub quarantined: Vec<QuarantinedRegion>,
}

/// Searches forward from `from` for the next offset at which a fully
/// valid frame begins: plausible length, in-bounds payload, matching
/// CRC, *and* a decodable record (so a run of zero bytes cannot pose as
/// an empty frame). A false positive needs a 32-bit CRC collision at a
/// misaligned offset — ~2⁻³² per candidate byte.
fn resync(bytes: &[u8], from: usize) -> Option<usize> {
    let mut pos = from;
    while pos + FRAME_PREFIX as usize <= bytes.len() {
        let payload_len =
            u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let stored_crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        let payload_start = pos + FRAME_PREFIX as usize;
        if payload_len <= MAX_PAYLOAD && payload_start + payload_len as usize <= bytes.len() {
            let payload = &bytes[payload_start..payload_start + payload_len as usize];
            if crc32(payload) == stored_crc && Record::decode_payload(payload).is_ok() {
                return Some(pos);
            }
        }
        pos += 1;
    }
    None
}

/// Scans a segment file, validating the header and every frame.
///
/// A file shorter than its header (a crash during creation) scans as
/// empty with `truncate_to: Some(0)` — the caller rewrites it. A frame
/// that is incomplete or fails its CRC is damage; if a valid frame
/// follows ([`resync`]) the damaged region is quarantined and the scan
/// continues, otherwise it marks the torn tail: everything before it is
/// returned, everything from it on is to be truncated. A *valid* header
/// with the wrong magic or version is a hard [`StoreError::Corrupt`] —
/// that is not a torn write.
pub(crate) fn scan(path: &Path) -> Result<ScanOutcome> {
    let mut file = File::open(path)
        .map_err(|e| StoreError::io(format!("opening segment {}", path.display()), e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| StoreError::io(format!("reading segment {}", path.display()), e))?;

    if (bytes.len() as u64) < HEADER_LEN {
        return Ok(ScanOutcome {
            frames: Vec::new(),
            truncate_to: Some(0),
            quarantined: Vec::new(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::Corrupt {
            segment: path.to_path_buf(),
            offset: 0,
            detail: "bad magic (not an anonet-store segment)".into(),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(StoreError::Corrupt {
            segment: path.to_path_buf(),
            offset: 4,
            detail: format!("unsupported segment version {version} (expected {VERSION})"),
        });
    }

    let mut frames = Vec::new();
    let mut quarantined = Vec::new();
    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        // Frame prefix complete? Fewer than prefix-many trailing bytes
        // cannot hold any frame, so there is nothing to resync to.
        if bytes.len() - pos < FRAME_PREFIX as usize {
            return Ok(ScanOutcome { frames, truncate_to: Some(pos as u64), quarantined });
        }
        let payload_len =
            u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let stored_crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        let payload_start = pos + FRAME_PREFIX as usize;
        let damaged = payload_len > MAX_PAYLOAD
            || payload_start + payload_len as usize > bytes.len()
            || crc32(&bytes[payload_start..payload_start + payload_len as usize]) != stored_crc;
        if damaged {
            // An intact frame further on means this is mid-file
            // corruption: quarantine the damaged region and continue.
            // No intact frame after it means a torn tail: truncate.
            match resync(&bytes, pos + 1) {
                Some(next) => {
                    quarantined
                        .push(QuarantinedRegion { offset: pos as u64, len: (next - pos) as u64 });
                    pos = next;
                    continue;
                }
                None => {
                    return Ok(ScanOutcome { frames, truncate_to: Some(pos as u64), quarantined })
                }
            }
        }
        let payload = &bytes[payload_start..payload_start + payload_len as usize];
        // A frame whose checksum holds but whose payload is gibberish is
        // corruption, not a torn write (the CRC covers the whole payload).
        let record = Record::decode_payload(payload).map_err(|e| StoreError::Corrupt {
            segment: path.to_path_buf(),
            offset: pos as u64,
            detail: e.to_string(),
        })?;
        let frame_len = FRAME_PREFIX as u32 + payload_len;
        frames.push(ScannedFrame { record, offset: pos as u64, frame_len });
        pos = payload_start + payload_len as usize;
    }
    Ok(ScanOutcome { frames, truncate_to: None, quarantined })
}

/// Reads and decodes the frame at `offset` (of `frame_len` bytes) from an
/// open read handle.
pub(crate) fn read_frame(
    file: &mut File,
    path: &Path,
    offset: u64,
    frame_len: u32,
) -> Result<Record> {
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StoreError::io(format!("seeking {} in {}", offset, path.display()), e))?;
    let mut frame = vec![0u8; frame_len as usize];
    file.read_exact(&mut frame).map_err(|e| {
        StoreError::io(format!("reading frame at {} in {}", offset, path.display()), e)
    })?;
    if frame.len() < FRAME_PREFIX as usize {
        return Err(StoreError::Corrupt {
            segment: path.to_path_buf(),
            offset,
            detail: "frame shorter than its prefix".into(),
        });
    }
    let payload = &frame[FRAME_PREFIX as usize..];
    let stored_crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
    if crc32(payload) != stored_crc {
        return Err(StoreError::Corrupt {
            segment: path.to_path_buf(),
            offset,
            detail: "frame checksum mismatch on read-back".into(),
        });
    }
    Record::decode_payload(payload).map_err(|e| StoreError::Corrupt {
        segment: path.to_path_buf(),
        offset,
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ns: u8, key: &[u8], value: &[u8]) -> Record {
        Record { kind: RecordKind::Put, ns, key: key.to_vec(), value: value.to_vec() }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_roundtrips() {
        let r = rec(3, b"key-bytes", b"value-bytes");
        assert_eq!(Record::decode_payload(&r.encode_payload()).unwrap(), r);
        let t = Record { kind: RecordKind::Tombstone, ns: 0, key: b"k".to_vec(), value: vec![] };
        assert_eq!(Record::decode_payload(&t.encode_payload()).unwrap(), t);
    }

    #[test]
    fn payload_decode_rejects_malformed() {
        assert!(Record::decode_payload(&[]).is_err());
        assert!(Record::decode_payload(&[7, 0, 0, 0, 0, 0]).is_err()); // bad kind
                                                                       // key_len exceeding payload
        let mut p = rec(0, b"abc", b"").encode_payload();
        p[2] = 200;
        assert!(Record::decode_payload(&p).is_err());
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_file_name(7), "seg-00000007.log");
        assert_eq!(parse_segment_id("seg-00000007.log"), Some(7));
        assert_eq!(parse_segment_id("seg-7.log"), None);
        assert_eq!(parse_segment_id("tmp-00000007.log"), None);
    }

    #[test]
    fn scan_recovers_exact_prefix_under_any_truncation() {
        let dir = std::env::temp_dir().join(format!("anonet-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
        let records: Vec<Record> =
            (0..5u8).map(|i| rec(1, &[i; 4], &vec![i; 16 + i as usize])).collect();
        let mut boundaries = vec![HEADER_LEN];
        for r in &records {
            w.append(&r.encode_frame()).unwrap();
            boundaries.push(w.len);
        }
        w.sync().unwrap();
        let full = std::fs::read(&w.path).unwrap();

        // Cut the file at *every* byte position; the scan must recover
        // exactly the frames whose last byte precedes the cut.
        for cut in 0..=full.len() {
            std::fs::write(&w.path, &full[..cut]).unwrap();
            let outcome = scan(&w.path).unwrap();
            let expect = boundaries.iter().filter(|&&b| b > HEADER_LEN && b <= cut as u64).count();
            assert_eq!(outcome.frames.len(), expect, "cut at byte {cut}");
            for (f, r) in outcome.frames.iter().zip(&records) {
                assert_eq!(&f.record, r);
            }
            // Torn iff the cut is not on a frame boundary (or pre-header).
            let on_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(outcome.truncate_to.is_some(), !on_boundary, "cut at byte {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_rejects_foreign_files() {
        let dir = std::env::temp_dir().join(format!("anonet-seg-magic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-00000000.log");
        std::fs::write(&path, b"NOTASEGMENTFILE!").unwrap();
        assert!(matches!(scan(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_quarantines_only_the_damaged_frame() {
        let dir = std::env::temp_dir().join(format!("anonet-seg-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
        let records: Vec<Record> =
            (0..5u8).map(|i| rec(1, &[i; 4], &vec![i; 16 + i as usize])).collect();
        let mut boundaries = vec![HEADER_LEN];
        for r in &records {
            w.append(&r.encode_frame()).unwrap();
            boundaries.push(w.len);
        }
        w.sync().unwrap();
        let full = std::fs::read(&w.path).unwrap();

        // Flip one bit in every byte of frame 2 in turn (prefix and
        // payload): frames 0, 1, 3, 4 must always survive.
        let (start, end) = (boundaries[2] as usize, boundaries[3] as usize);
        for byte in start..end {
            let mut bytes = full.clone();
            bytes[byte] ^= 1 << (byte % 8);
            std::fs::write(&w.path, &bytes).unwrap();
            let outcome = scan(&w.path).unwrap();
            let kept: Vec<&Record> = outcome.frames.iter().map(|f| &f.record).collect();
            assert_eq!(
                kept,
                vec![&records[0], &records[1], &records[3], &records[4]],
                "flip at byte {byte}"
            );
            assert_eq!(outcome.truncate_to, None, "flip at byte {byte}");
            assert_eq!(
                outcome.quarantined,
                vec![QuarantinedRegion {
                    offset: boundaries[2],
                    len: boundaries[3] - boundaries[2]
                }],
                "flip at byte {byte}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_payload_byte_is_detected_as_torn_tail() {
        let dir = std::env::temp_dir().join(format!("anonet-seg-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
        w.append(&rec(0, b"key", b"value").encode_frame()).unwrap();
        w.sync().unwrap();
        let mut bytes = std::fs::read(&w.path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&w.path, &bytes).unwrap();
        let outcome = scan(&w.path).unwrap();
        assert_eq!(outcome.frames.len(), 0);
        assert_eq!(outcome.truncate_to, Some(HEADER_LEN));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
