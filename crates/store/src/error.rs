//! The typed error surface of the store.
//!
//! Segment I/O is a hot path in warm-started batch runs, and the
//! panic-hygiene lint rule covers this crate: nothing here unwraps. Every
//! failure is a [`StoreError`] carrying enough context (segment path, byte
//! offset) to debug a corrupt store from the message alone.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Everything that can go wrong opening, reading, or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        /// What the store was doing (`"append to shard-03/seg-00000001.log"`).
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A segment frame failed validation *before* the recovered tail — a
    /// checksum or structure violation recovery could not explain as a
    /// torn write (torn tails are truncated silently, not errors).
    Corrupt {
        /// The segment file.
        segment: PathBuf,
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A record payload failed to decode (wrong length, impossible field).
    Codec {
        /// What was being decoded and how it failed.
        detail: String,
    },
    /// The [`StoreConfig`](crate::StoreConfig) is unusable as given.
    InvalidConfig {
        /// Which knob and why.
        detail: String,
    },
}

impl StoreError {
    /// Wraps an [`io::Error`] with the operation it interrupted.
    pub fn io(context: impl Into<String>, source: io::Error) -> StoreError {
        StoreError::Io { context: context.into(), source }
    }

    /// A decode failure.
    pub fn codec(detail: impl Into<String>) -> StoreError {
        StoreError::Codec { detail: detail.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            StoreError::Corrupt { segment, offset, detail } => {
                write!(f, "corrupt segment {} at byte {offset}: {detail}", segment.display())
            }
            StoreError::Codec { detail } => write!(f, "record decode failed: {detail}"),
            StoreError::InvalidConfig { detail } => write!(f, "invalid store config: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = StoreError::io("appending frame", io::Error::other("boom"));
        assert!(e.to_string().contains("appending frame"));
        let c = StoreError::Corrupt {
            segment: PathBuf::from("shard-00/seg-00000000.log"),
            offset: 42,
            detail: "bad magic".into(),
        };
        assert!(c.to_string().contains("byte 42"));
        assert!(StoreError::codec("truncated tape").to_string().contains("tape"));
    }

    #[test]
    fn io_errors_expose_their_source() {
        use std::error::Error;
        let e = StoreError::io("x", io::Error::other("inner"));
        assert!(e.source().is_some());
        assert!(StoreError::codec("y").source().is_none());
    }
}
