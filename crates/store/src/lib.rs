//! # anonet-store
//!
//! A log-structured, sharded, crash-safe on-disk key/value store,
//! specialized for the derandomization cache: the keys are canonical
//! quotient encodings `s(G_*)` and the values are the replayable
//! artifacts (`CachedAssignment` tapes, quotient metadata) that make
//! warm-started batch runs skip the expensive `A_*` search entirely.
//!
//! Zero external dependencies: `std` plus `anonet-obs` for metrics.
//!
//! ## File format
//!
//! A store directory holds one subdirectory per shard (`shard-NN/`),
//! each containing append-only segment logs `seg-XXXXXXXX.log`:
//!
//! ```text
//! segment  := header frame*
//! header   := magic:"ANST" version:u16le shard:u16le          (8 bytes)
//! frame    := payload_len:u32le crc32:u32le payload           (8+n bytes)
//! payload  := kind:u8 ns:u8 key_len:u32le key:bytes value:bytes
//! ```
//!
//! Every frame is written with a **single** `write` call, so a crash can
//! only tear the file's tail. On open, each segment is scanned front to
//! back; the first frame that is incomplete or fails its CRC marks a
//! torn tail, which is truncated away. A frame whose CRC *passes* but
//! whose payload cannot be decoded is a hard [`StoreError::Corrupt`] —
//! that is damage a torn write cannot explain.
//!
//! ## Sharding
//!
//! Keys route to a shard by their first byte (the first byte of the
//! canonical quotient encoding). Each shard has its own lock, index, and
//! segment chain, so writes, reads, and [`Store::compact_shard`] calls
//! on distinct shards run concurrently — `anonet-batch` fans shard
//! compactions over its `BatchScheduler`.
//!
//! ## Index, budget, compaction
//!
//! The in-memory index (a deterministic `BTreeMap`) maps `(namespace,
//! key)` to the record's segment/offset; it is rebuilt on open by the
//! same scan that performs recovery (latest frame wins, tombstones
//! unbind). An optional byte budget evicts least-recently-used entries;
//! compaction rewrites live records into a fresh segment and unlinks the
//! old ones, new-segment-first so a crash mid-compaction never loses
//! data.
//!
//! ## Warm start
//!
//! [`Store::warm_scan`] streams the hottest live entries of a namespace
//! back out (lookup-count order, deterministic), which is how
//! `PersistentDerandCache::warm` in `anonet-batch` preloads a fresh
//! process's memory cache from a previous run's disk state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod segment;
mod store;

pub use error::{Result, StoreError};
pub use store::{Store, StoreConfig, StoreStats};
