//! # anonet-obs
//!
//! Zero-dependency structured observability for the anonet workspace:
//! hierarchical wall-time [`Span`]s, typed counters and [`Histogram`]s,
//! and pluggable [`Recorder`] backends, selected per execution,
//! derandomizer, or batch run.
//!
//! "Zero-dependency" means no external crates: the layer is `std` plus
//! the workspace's own `anonet-graph`/`anonet-runtime` (for the
//! [`bridge`] from the engine's trace events). Three backends ship:
//!
//! * [`NoopRecorder`] — the default everywhere. Reports
//!   [`Recorder::is_enabled`]` == false`, so instrumented code skips
//!   metric computation entirely; enabling observability with it is
//!   observationally free (outputs, traces, and cache bytes stay
//!   identical — the differential tests pin this down).
//! * [`MemoryRecorder`] — aggregates counters, histograms, and span
//!   wall-times in memory; snapshot, compare, render, and rebuild the
//!   span tree ([`MemorySnapshot::tree`]).
//! * [`JsonlRecorder`] — streams every metric event as one JSON line to
//!   a file or buffer, for tailing, offline analysis, and the
//!   `anonet-trace` toolchain.
//!
//! A fourth, [`FlightRecorder`], is the always-on bounded ring: the most
//! recent events, dumpable on demand or from a panic hook
//! (`target/trace-crash.jsonl`).
//!
//! Tracing is **causal**: every enabled span carries a stable [`SpanId`]
//! and an explicit parent link. On one thread, [`Span::new`] nests under
//! the innermost open span of the same recorder; across threads, a
//! [`TraceContext`] captured from the submitting span ([`Span::context`])
//! and adopted with [`Span::child_of`] keeps scheduler jobs and fanned-out
//! phase work parented under their submitter instead of becoming fresh
//! per-thread roots. Instrumentation still names only the leaf
//! (`"views"`); aggregates land under the `/`-joined path of the parent
//! chain (`"pipeline/derandomize/views"`). Metric names are centralized
//! in [`names`].
//!
//! The [`json`] module is the workspace's one shared JSON
//! serializer/parser — the bench harness builds its `BENCH_*.json`
//! artifacts with it and the tests re-parse them.
//!
//! # Example
//!
//! ```
//! use anonet_obs::{names, MemoryRecorder, Recorder, Span};
//!
//! let rec = MemoryRecorder::new();
//! {
//!     let _pipeline = Span::new(&rec, "pipeline");
//!     let _coloring = Span::new(&rec, "coloring");
//!     rec.counter(names::ENGINE_MESSAGES, 42);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.span("pipeline/coloring").unwrap().count, 1);
//! assert_eq!(snap.counter(names::ENGINE_MESSAGES), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod crash;
mod flight;
mod hist;
pub mod json;
mod jsonl;
mod memory;
mod recorder;
mod trace;

pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hist::{Histogram, BUCKETS};
pub use json::Json;
pub use jsonl::{JsonlRecorder, SharedBuffer};
pub use memory::{MemoryRecorder, MemorySnapshot, SpanNode, SpanStat};
pub use recorder::{noop, NoopRecorder, Recorder, SharedRecorder, Span};
pub use trace::{thread_ordinal, SpanId, TraceContext};

/// The canonical metric and span names every instrumented layer uses.
///
/// Counters and histograms are namespaced `layer.metric`; span constants
/// are bare leaf names (backends join them into nesting paths).
pub mod names {
    // Engine counters (bridged from `Execution`/`Event` logs).
    /// Rounds executed.
    pub const ENGINE_ROUNDS: &str = "engine.rounds";
    /// Messages delivered.
    pub const ENGINE_MESSAGES: &str = "engine.messages";
    /// Bytes of message payload delivered.
    pub const ENGINE_MESSAGE_BYTES: &str = "engine.message_bytes";
    /// Random bits drawn.
    pub const ENGINE_BITS_DRAWN: &str = "engine.bits_drawn";
    /// Nodes that wrote an output.
    pub const ENGINE_OUTPUTS: &str = "engine.outputs";
    /// Nodes that halted.
    pub const ENGINE_HALTS: &str = "engine.halts";

    // Engine histograms.
    /// Messages delivered in each round.
    pub const ENGINE_MESSAGES_PER_ROUND: &str = "engine.messages_per_round";
    /// Active (non-halted) nodes at the start of each round.
    pub const ENGINE_ACTIVE_PER_ROUND: &str = "engine.active_per_round";
    /// Random bits drawn by each node (rounds it stayed active).
    pub const ENGINE_BITS_PER_NODE: &str = "engine.bits_per_node";

    // Derandomizer counters and histograms.
    /// Derandomization cache hits.
    pub const CACHE_HIT: &str = "cache.hit";
    /// Derandomization cache misses.
    pub const CACHE_MISS: &str = "cache.miss";
    /// Bytes resident in the derandomization cache after the run.
    pub const CACHE_BYTES: &str = "cache.bytes";
    /// Candidate bit assignments tried by the `A_*` search.
    pub const SEARCH_ATTEMPTS: &str = "search.attempts";
    /// Nodes in the view quotient per run.
    pub const DERAND_QUOTIENT_NODES: &str = "derand.quotient_nodes";
    /// Fiber multiplicity (lift factor) per run.
    pub const DERAND_MULTIPLICITY: &str = "derand.multiplicity";
    /// View-refinement stabilization depth per run.
    pub const DERAND_VIEW_DEPTH: &str = "derand.view_depth";

    // Batch counters and histograms.
    /// Jobs submitted to the batch scheduler.
    pub const BATCH_JOBS: &str = "batch.jobs";
    /// Jobs that returned `Ok`.
    pub const BATCH_JOBS_OK: &str = "batch.jobs_ok";
    /// Jobs that returned `Err`.
    pub const BATCH_JOBS_FAILED: &str = "batch.jobs_failed";
    /// Jobs that panicked.
    pub const BATCH_JOBS_PANICKED: &str = "batch.jobs_panicked";
    /// Microseconds each job waited between batch start and claim.
    pub const BATCH_QUEUE_WAIT_US: &str = "batch.queue_wait_us";
    /// Microseconds of wall time each job ran for.
    pub const BATCH_JOB_WALL_US: &str = "batch.job_wall_us";

    // Persistent-store counters and histograms (`anonet-store`).
    /// Frames appended to segment logs (puts and tombstones).
    pub const STORE_SEGMENT_APPENDS: &str = "store.segment.appends";
    /// Bytes of frames appended to segment logs.
    pub const STORE_SEGMENT_BYTES: &str = "store.segment.bytes";
    /// Active segments sealed and rolled to a successor.
    pub const STORE_SEGMENT_ROLLS: &str = "store.segment.rolls";
    /// Point reads answered by segment logs.
    pub const STORE_SEGMENT_READS: &str = "store.segment.reads";
    /// Value bytes returned by segment point reads.
    pub const STORE_SEGMENT_READ_BYTES: &str = "store.segment.read_bytes";
    /// Torn segment tails truncated during open-time recovery.
    pub const STORE_SEGMENT_TORN: &str = "store.segment.torn";
    /// Mid-file damaged regions quarantined by CRC resynchronization.
    pub const STORE_SEGMENT_QUARANTINED: &str = "store.segment.quarantined";
    /// Intact records recovered by open-time segment scans.
    pub const STORE_SEGMENT_RECOVERED: &str = "store.segment.recovered";
    /// Compaction runs completed.
    pub const STORE_COMPACTION_RUNS: &str = "store.compaction.runs";
    /// Bytes reclaimed by compaction.
    pub const STORE_COMPACTION_RECLAIMED: &str = "store.compaction.reclaimed";
    /// Live records surviving each compaction (histogram).
    pub const STORE_COMPACTION_LIVE: &str = "store.compaction.live";
    /// Entries served by warm-start scans.
    pub const STORE_WARM_ENTRIES: &str = "store.warm.entries";
    /// Key+value bytes served by warm-start scans.
    pub const STORE_WARM_BYTES: &str = "store.warm.bytes";

    // Soak-campaign counters and histograms (`anonet-soak`).
    /// Campaign cells completed by a soak run.
    pub const SOAK_CELLS: &str = "soak.cells";
    /// Test cases executed across all campaign cells.
    pub const SOAK_CASES: &str = "soak.cases";
    /// Oracle failures observed during a soak campaign.
    pub const SOAK_ORACLE_FAILURES: &str = "soak.oracle_failures";
    /// Cells skipped because the campaign's time budget ran out.
    pub const SOAK_CELLS_SKIPPED: &str = "soak.cells_skipped";
    /// Wall microseconds per campaign cell (histogram).
    pub const SOAK_CELL_WALL_US: &str = "soak.cell_wall_us";
    /// Regressions flagged by a sentinel `check` run.
    pub const SOAK_REGRESSIONS: &str = "soak.regressions";

    // Span leaf names (joined into paths by the backends).
    /// The whole two-stage pipeline.
    pub const SPAN_PIPELINE: &str = "pipeline";
    /// Stage 1: randomized 2-hop coloring.
    pub const SPAN_COLORING: &str = "coloring";
    /// Stage 2: the deterministic derandomizer.
    pub const SPAN_DERANDOMIZE: &str = "derandomize";
    /// View-quotient construction.
    pub const SPAN_VIEWS: &str = "views";
    /// Canonical prime-factor ordering.
    pub const SPAN_FACTOR: &str = "factor";
    /// The `A_*` search for a successful simulation.
    pub const SPAN_SEARCH: &str = "search";
    /// Replaying a cached assignment.
    pub const SPAN_REPLAY: &str = "replay";
    /// Lifting quotient outputs back to the input graph.
    pub const SPAN_LIFT: &str = "lift";
    /// One full `A_*` run (phases 1..z+1).
    pub const SPAN_ASTAR: &str = "astar";
    /// `A_*` Update-Graph phase (candidate enumeration).
    pub const SPAN_UPDATE_GRAPH: &str = "update_graph";
    /// `A_*` Update-Output phase (quotient simulation).
    pub const SPAN_UPDATE_OUTPUT: &str = "update_output";
    /// `A_*` Update-Bits phase (minimal tape extension).
    pub const SPAN_UPDATE_BITS: &str = "update_bits";
    /// Memoized candidate pools served from the `A_*` pool cache.
    pub const ASTAR_POOL_HIT: &str = "astar.pool.hit";
    /// Candidate pools built from scratch by the `A_*` pool cache.
    pub const ASTAR_POOL_MISS: &str = "astar.pool.miss";
    /// Per-node C2 lookups against a pool's view-encoding index.
    pub const ASTAR_C2_LOOKUPS: &str = "astar.c2.lookups";
    /// C2 lookups that found a matching candidate.
    pub const ASTAR_C2_HITS: &str = "astar.c2.hits";
    /// View-encoding interner lookups that found an existing encoding.
    pub const VIEWS_INTERNER_HIT: &str = "views.interner.hit";
    /// View-encoding interner lookups that inserted a new encoding.
    pub const VIEWS_INTERNER_MISS: &str = "views.interner.miss";
    /// View-tree vertices built in the arena (gauge: built this run).
    pub const VIEWS_ARENA_NODES: &str = "views.arena.nodes";
    /// One batch-scheduler run.
    pub const SPAN_BATCH_RUN: &str = "batch_run";
    /// One batch job, queue-claim to completion.
    pub const SPAN_JOB: &str = "job";
    /// Opening a persistent store (segment scans, index rebuild).
    pub const SPAN_STORE_OPEN: &str = "store_open";
    /// One point read against a segment log.
    pub const SPAN_SEGMENT_READ: &str = "segment_read";
    /// One frame append to a segment log.
    pub const SPAN_SEGMENT_WRITE: &str = "segment_write";
    /// Open-time recovery scan of one segment log.
    pub const SPAN_SEGMENT_RECOVER: &str = "segment_recover";
    /// Compacting one store shard.
    pub const SPAN_STORE_COMPACT: &str = "store_compact";
    /// Warm-start scan preloading hot entries.
    pub const SPAN_STORE_WARM: &str = "store_warm";
    /// One whole soak campaign.
    pub const SPAN_SOAK_CAMPAIGN: &str = "soak_campaign";
    /// One campaign cell (oracles + batch passes + probes).
    pub const SPAN_SOAK_CELL: &str = "soak_cell";
}
