//! A process-wide panic-hook registry for observability sinks.
//!
//! [`on_panic`] chains one hook into [`std::panic::set_hook`] (installed
//! once, preserving whatever hook was there before) and runs every
//! registered closure each time any thread panics — including panics the
//! batch scheduler later catches and isolates. Sinks register *weak*
//! self-references (see [`JsonlRecorder::flush_on_panic`](crate::JsonlRecorder::flush_on_panic)
//! and [`FlightRecorder::install_crash_dump`](crate::FlightRecorder::install_crash_dump)),
//! so a dropped sink leaves a no-op entry behind rather than a dangling
//! one. Hooks must never panic themselves; the provided ones swallow I/O
//! errors.

use std::sync::{Mutex, Once, OnceLock};

type Hook = Box<dyn Fn() + Send + Sync>;

static HOOKS: OnceLock<Mutex<Vec<Hook>>> = OnceLock::new();
static INSTALL: Once = Once::new();

/// Registers `hook` to run on every panic in the process, after which the
/// previously installed panic hook (normally the default backtrace
/// printer) still runs. Entries are never unregistered — register
/// closures that capture [`std::sync::Weak`] handles so dropped sinks
/// degrade to no-ops.
pub fn on_panic(hook: impl Fn() + Send + Sync + 'static) {
    let hooks = HOOKS.get_or_init(|| Mutex::new(Vec::new()));
    hooks.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).push(Box::new(hook));
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(hooks) = HOOKS.get() {
                for hook in hooks.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).iter() {
                    hook();
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn hooks_run_on_caught_panics() {
        let fired = Arc::new(AtomicU64::new(0));
        let handle = Arc::clone(&fired);
        on_panic(move || {
            handle.fetch_add(1, Ordering::SeqCst);
        });
        let before = fired.load(Ordering::SeqCst);
        let result = std::panic::catch_unwind(|| panic!("crash-hook test"));
        assert!(result.is_err());
        assert!(fired.load(Ordering::SeqCst) > before);
    }
}
