//! Fixed-shape power-of-two histograms.
//!
//! The quantities the paper reasons about — messages per round, random
//! bits per node, view depths, queue waits in microseconds — span a few
//! orders of magnitude but need no sub-percent resolution, so samples are
//! bucketed by bit length: bucket `b` holds values whose `u64::BITS -
//! leading_zeros` is `b`, i.e. bucket 0 holds `0`, bucket 1 holds `1`,
//! bucket 2 holds `2..=3`, bucket `k` holds `2^(k-1) ..= 2^k - 1`. That
//! keeps the type `Copy`-free but allocation-free and mergeable.

use std::fmt;

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// An accumulating histogram over `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, or `None` while empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` while empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts (`buckets()[b]` counts samples of bit length
    /// `b`; bucket 0 counts zeros).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`) from the bucket
    /// boundaries, or `None` while empty. Exact for values ≤ 1.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median upper-bound estimate ([`Histogram::quantile_bound`] at 0.5).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_bound(0.50)
    }

    /// 90th-percentile upper-bound estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile_bound(0.90)
    }

    /// 99th-percentile upper-bound estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile_bound(0.99)
    }

    /// The `(p50, p90, p99)` bucket-bound estimates surfaced by snapshot
    /// renders and the E16/E20 reports, or `None` while empty.
    pub fn quantiles(&self) -> Option<(u64, u64, u64)> {
        Some((self.p50()?, self.p90()?, self.p99()?))
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// The bucket index of a value: its bit length.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `b` can hold.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_bound(0.5), None);
    }

    #[test]
    fn records_and_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 1010.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[10], 1); // 1000
    }

    #[test]
    fn quantile_bounds_are_bounds() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let median = h.quantile_bound(0.5).unwrap();
        assert!((49..=63).contains(&median), "median bound {median}");
        assert_eq!(h.quantile_bound(1.0), Some(99)); // clamped to max
    }

    #[test]
    fn named_quantiles_are_ordered_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantiles(), None);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = h.quantiles().unwrap();
        assert_eq!((p50, p90, p99), (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap()));
        assert!(p50 <= p90 && p90 <= p99, "quantile bounds must be monotone");
        assert!(p50 >= 500, "p50 bound {p50} must cover the true median");
        assert!(p99 <= 1000, "bounds clamp to the observed max");
    }

    #[test]
    fn merge_adds_up() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(5);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 8);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(5));
    }
}
