//! The bounded flight-recorder backend: always-on capture of the most
//! recent events, dumped on demand or from a panic hook.
//!
//! [`FlightRecorder`] keeps a fixed-size ring of slots. Writers claim a
//! slot with one `fetch_add` on an atomic cursor and store the event
//! under that slot's own `try_lock` — they **never block**: if a writer
//! catches a slot mid-overwrite (the cursor has lapped the ring within
//! one store's duration), the event is counted in `dropped()` and
//! discarded instead. The crate forbids `unsafe`, so this is the honest
//! bounded-overhead design available — per-event cost is one atomic
//! increment, one uncontended try-lock, and one small clone; memory is
//! `capacity` slots, forever.
//!
//! Unlike the JSONL backend, span *opens* are recorded too, so a crash
//! dump shows spans that were still in flight when the process died.
//! [`FlightRecorder::install_crash_dump`] registers a panic hook (weak
//! self-reference, chained via [`crate::crash`]) that writes the ring to
//! a JSONL file — the conventional path is `target/trace-crash.jsonl` —
//! using the same line schema the [`JsonlRecorder`](crate::JsonlRecorder)
//! emits, plus `"ev":"span_open"` lines and a trailing `"ev":"flight"`
//! summary line (`captured`/`dropped`/`capacity`), so `anonet-trace`
//! reads crash dumps and live traces alike.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::recorder::Recorder;
use crate::trace::{thread_ordinal, SpanId};

/// Default ring capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

#[derive(Clone, Debug)]
enum EventKind {
    Open { id: u64, parent: Option<u64>, name: String },
    Close { id: u64, parent: Option<u64>, name: String, wall_us: u64 },
    Attr { id: u64, key: String, value: Json },
    Counter { name: String, delta: u64 },
    Hist { name: String, value: u64 },
}

#[derive(Clone, Debug)]
struct Event {
    /// Global claim order — survives ring wrap, so dumps sort correctly.
    seq: u64,
    us: u64,
    tid: u64,
    kind: EventKind,
}

/// A bounded ring-buffer [`Recorder`] for always-on capture. See the
/// [module docs](self) for the overhead contract.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
    epoch: Instant,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A ring of [`DEFAULT_FLIGHT_CAPACITY`] events.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A ring of `capacity` events (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded because their slot was mid-overwrite (writers
    /// never block) — the documented accuracy cost of boundedness.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events ever claimed (retained + overwritten + dropped).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed) as u64
    }

    fn push(&self, kind: EventKind) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed) as u64;
        let event =
            Event { seq, us: self.epoch.elapsed().as_micros() as u64, tid: thread_ordinal(), kind };
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        match slot.try_lock() {
            Ok(mut slot) => *slot = Some(event),
            // A writer lapped the ring into this slot mid-store; dropping
            // one stale-adjacent event beats ever blocking the hot path.
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained events as JSONL lines in claim order, ending with the
    /// `"ev":"flight"` summary line.
    pub fn dump_lines(&self) -> Vec<String> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        let captured = events.len();
        let mut lines: Vec<String> = events.into_iter().map(|e| render(&e).to_string()).collect();
        lines.push(
            Json::obj([
                ("ev", Json::str("flight")),
                ("captured", Json::from(captured as u64)),
                ("dropped", Json::from(self.dropped())),
                ("capacity", Json::from(self.capacity() as u64)),
            ])
            .to_string(),
        );
        lines
    }

    /// Writes [`FlightRecorder::dump_lines`] to `path` (creating parent
    /// directories), returning the number of lines written.
    ///
    /// # Errors
    ///
    /// File creation or write failures.
    pub fn dump_to(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let lines = self.dump_lines();
        let mut file = std::fs::File::create(path)?;
        for line in &lines {
            writeln!(file, "{line}")?;
        }
        file.flush()?;
        Ok(lines.len())
    }

    /// Registers a process-wide panic hook that dumps the ring to `path`
    /// (conventionally `target/trace-crash.jsonl`). The hook holds a
    /// [`Weak`] self-reference; a failed dump is reported on stderr — a
    /// crash dump that vanishes silently defeats the recorder's purpose,
    /// and a stderr write cannot compound the panic the way a nested
    /// I/O panic could.
    pub fn install_crash_dump(self: &Arc<Self>, path: impl Into<PathBuf>) {
        let weak: Weak<FlightRecorder> = Arc::downgrade(self);
        let path = path.into();
        crate::crash::on_panic(move || {
            if let Some(rec) = weak.upgrade() {
                if let Err(e) = rec.dump_to(&path) {
                    eprintln!("anonet-obs: crash dump to {} failed: {e}", path.display());
                }
            }
        });
    }
}

fn render(event: &Event) -> Json {
    let base = |ev: &str| {
        vec![
            ("us".to_string(), Json::from(event.us)),
            ("ev".to_string(), Json::str(ev)),
            ("tid".to_string(), Json::from(event.tid)),
        ]
    };
    let opt = |id: Option<u64>| id.map(Json::from).unwrap_or(Json::Null);
    let pairs = match &event.kind {
        EventKind::Open { id, parent, name } => {
            let mut p = base("span_open");
            p.push(("id".to_string(), Json::from(*id)));
            p.push(("parent".to_string(), opt(*parent)));
            p.push(("name".to_string(), Json::str(name.as_str())));
            p
        }
        EventKind::Close { id, parent, name, wall_us } => {
            let mut p = base("span");
            p.push(("id".to_string(), Json::from(*id)));
            p.push(("parent".to_string(), opt(*parent)));
            p.push(("name".to_string(), Json::str(name.as_str())));
            p.push(("wall_us".to_string(), Json::from(*wall_us)));
            p
        }
        EventKind::Attr { id, key, value } => {
            let mut p = base("attr");
            p.push(("id".to_string(), Json::from(*id)));
            p.push(("key".to_string(), Json::str(key.as_str())));
            p.push(("value".to_string(), value.clone()));
            p
        }
        EventKind::Counter { name, delta } => {
            let mut p = base("counter");
            p.push(("name".to_string(), Json::str(name.as_str())));
            p.push(("delta".to_string(), Json::from(*delta)));
            p
        }
        EventKind::Hist { name, value } => {
            let mut p = base("hist");
            p.push(("name".to_string(), Json::str(name.as_str())));
            p.push(("value".to_string(), Json::from(*value)));
            p
        }
    };
    Json::Obj(pairs)
}

impl Recorder for FlightRecorder {
    fn span_open(&self, id: SpanId, parent: Option<SpanId>, name: &str) {
        self.push(EventKind::Open {
            id: id.get(),
            parent: parent.map(SpanId::get),
            name: name.to_string(),
        });
    }

    fn span_close(&self, id: SpanId, parent: Option<SpanId>, name: &str, wall: Duration) {
        self.push(EventKind::Close {
            id: id.get(),
            parent: parent.map(SpanId::get),
            name: name.to_string(),
            wall_us: wall.as_micros() as u64,
        });
    }

    fn span_attr(&self, id: SpanId, key: &str, value: &Json) {
        self.push(EventKind::Attr { id: id.get(), key: key.to_string(), value: value.clone() });
    }

    fn counter(&self, name: &str, delta: u64) {
        self.push(EventKind::Counter { name: name.to_string(), delta });
    }

    fn histogram(&self, name: &str, value: u64) {
        self.push(EventKind::Hist { name: name.to_string(), value });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..100u64 {
            rec.counter("tick", i);
        }
        assert_eq!(rec.recorded(), 100);
        let lines = rec.dump_lines();
        assert_eq!(lines.len(), 8 + 1); // ring + summary
                                        // The retained events are the *latest* eight, in order.
        let deltas: Vec<f64> = lines[..8]
            .iter()
            .map(|l| Json::parse(l).unwrap().get("delta").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(deltas, (92..100).map(|d| d as f64).collect::<Vec<_>>());
        let summary = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(summary.get("ev").unwrap().as_str(), Some("flight"));
        assert_eq!(summary.get("capacity").unwrap().as_f64(), Some(8.0));
    }

    #[test]
    fn spans_record_opens_and_closes_with_links() {
        let rec = FlightRecorder::with_capacity(64);
        {
            let outer = Span::new(&rec, "astar");
            let _inner = Span::child_of(&rec, "update_graph", outer.context());
        }
        let lines = rec.dump_lines();
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        let opens: Vec<&Json> = parsed
            .iter()
            .filter(|l| l.get("ev").and_then(Json::as_str) == Some("span_open"))
            .collect();
        let closes: Vec<&Json> =
            parsed.iter().filter(|l| l.get("ev").and_then(Json::as_str) == Some("span")).collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(closes.len(), 2);
        let outer_id = opens[0].get("id").unwrap().as_f64().unwrap();
        assert_eq!(opens[1].get("parent").unwrap().as_f64(), Some(outer_id));
    }

    #[test]
    fn in_flight_spans_appear_in_the_dump() {
        let rec = FlightRecorder::with_capacity(16);
        let _open = Span::new(&rec, "pipeline");
        let lines = rec.dump_lines();
        assert!(lines.iter().any(|l| l.contains("span_open") && l.contains("pipeline")));
    }

    #[test]
    fn dump_to_writes_parseable_jsonl() {
        let rec = FlightRecorder::with_capacity(16);
        rec.counter("c", 1);
        let path = std::env::temp_dir()
            .join(format!("anonet-flight-{}", std::process::id()))
            .join("dump.jsonl");
        let written = rec.dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
        assert_eq!(text.lines().count(), written);
        for line in text.lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn crash_dump_fires_from_the_panic_hook() {
        let rec = Arc::new(FlightRecorder::with_capacity(32));
        let path =
            std::env::temp_dir().join(format!("anonet-flight-crash-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        rec.install_crash_dump(&path);
        rec.counter("pre_crash", 7);
        let result = std::panic::catch_unwind(|| panic!("flight-dump test"));
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("pre_crash"));
        assert!(text.contains("\"ev\": \"flight\""));
    }

    #[test]
    fn concurrent_writers_never_block_or_lose_count() {
        let rec = FlightRecorder::with_capacity(32);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        rec.counter("spin", i);
                    }
                });
            }
        });
        // Every claim is accounted: retained in the ring or counted dropped.
        assert_eq!(rec.recorded(), 4000);
        let retained = rec.dump_lines().len() as u64 - 1;
        assert!(retained <= 32);
        assert!(rec.dropped() <= 4000 - retained);
    }
}
