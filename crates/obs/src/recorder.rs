//! The [`Recorder`] trait — the single sink every instrumented layer
//! writes to — plus the default [`NoopRecorder`] and the RAII
//! [`Span`] guard.
//!
//! Backends implement five primitives: open/close a span (each carrying
//! the span's [`SpanId`] and explicit parent), attach an attribute to an
//! open span, bump a counter, record a histogram sample. Causality is the
//! *frontend*'s concern now: [`Span::new`] adopts the innermost span the
//! same recorder has open on the calling thread, and [`Span::child_of`]
//! adopts an explicit [`TraceContext`] handed across a thread boundary —
//! so backends see a fully parent-linked event stream and never need
//! per-thread stacks of their own.
//!
//! The no-op recorder reports [`Recorder::is_enabled`]` == false`, which
//! every emission helper checks first — an instrumented hot path with the
//! no-op recorder costs one virtual call per *span*, and nothing per
//! counter or histogram sample behind the [`Span::new`] gate. Disabled
//! spans allocate no id, touch no thread-local, and never read the clock.

use std::fmt::Debug;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::trace::{self, SpanId, TraceContext};

/// A structured-observability sink: spans, counters, histograms.
///
/// All methods take `&self`; implementations must be internally
/// synchronized ([`Send`] + [`Sync`]) because the batch scheduler drives
/// one recorder from many worker threads.
pub trait Recorder: Send + Sync + Debug {
    /// `false` for sinks that discard everything — callers may (and the
    /// provided helpers do) skip metric computation entirely.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Opens span `id` named `name`, parented under `parent` (`None` for
    /// a root). Called on the thread that opens the span.
    fn span_open(&self, id: SpanId, parent: Option<SpanId>, name: &str);

    /// Closes span `id` (previously opened as `name` under `parent`)
    /// after `wall` of wall time. Usually — but not necessarily — called
    /// on the opening thread; the id keeps the pairing unambiguous.
    fn span_close(&self, id: SpanId, parent: Option<SpanId>, name: &str, wall: Duration);

    /// Attaches `key = value` to the open span `id`. Default: discarded —
    /// aggregating backends may not have anywhere to put per-span values.
    fn span_attr(&self, id: SpanId, key: &str, value: &Json) {
        let _ = (id, key, value);
    }

    /// Adds `delta` to the counter `name`.
    fn counter(&self, name: &str, delta: u64);

    /// Records one sample of `value` into the histogram `name`.
    fn histogram(&self, name: &str, value: u64);
}

/// A shared, thread-safe recorder handle, as selected per
/// `Execution`/`Derandomizer`/batch run.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The default sink: discards everything, reports itself disabled.
///
/// This is what every un-instrumented entry point uses, so enabling the
/// observability layer with the no-op recorder must be observationally
/// free — byte-identical outputs, traces, and cache contents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn span_open(&self, _id: SpanId, _parent: Option<SpanId>, _name: &str) {}
    fn span_close(&self, _id: SpanId, _parent: Option<SpanId>, _name: &str, _wall: Duration) {}
    fn counter(&self, _name: &str, _delta: u64) {}
    fn histogram(&self, _name: &str, _value: u64) {}
}

/// A fresh shared handle to the no-op recorder.
pub fn noop() -> SharedRecorder {
    Arc::new(NoopRecorder)
}

/// An RAII span guard: measures wall time from creation to drop and
/// reports it to the recorder with a stable [`SpanId`] and explicit
/// parent link.
///
/// # Example
///
/// ```
/// use anonet_obs::{MemoryRecorder, Recorder, Span};
///
/// let rec = MemoryRecorder::new();
/// {
///     let _outer = Span::new(&rec, "pipeline");
///     let _inner = Span::new(&rec, "coloring");
/// } // both close here, innermost first
/// let snap = rec.snapshot();
/// assert_eq!(snap.span("pipeline/coloring").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    rec: Option<&'a dyn Recorder>,
    name: &'a str,
    id: Option<SpanId>,
    parent: Option<SpanId>,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Opens a span on `rec`, parented under the innermost span the same
    /// recorder has open on this thread (ambient nesting). A disabled
    /// recorder makes this (and the matching close) a no-op that never
    /// reads the clock or allocates an id.
    pub fn new(rec: &'a dyn Recorder, name: &'a str) -> Span<'a> {
        if rec.is_enabled() {
            let parent = trace::ambient_parent(trace::recorder_key(rec));
            Span::open(rec, name, parent)
        } else {
            Span::disabled(name)
        }
    }

    /// Opens a span parented under `ctx` — the cross-thread form. Capture
    /// a [`TraceContext`] from the submitting span with [`Span::context`],
    /// move it into the job, and the job's spans stay linked to their
    /// submitter instead of becoming fresh per-thread roots.
    pub fn child_of(rec: &'a dyn Recorder, name: &'a str, ctx: TraceContext) -> Span<'a> {
        if rec.is_enabled() {
            Span::open(rec, name, ctx.parent())
        } else {
            Span::disabled(name)
        }
    }

    fn open(rec: &'a dyn Recorder, name: &'a str, parent: Option<SpanId>) -> Span<'a> {
        let id = SpanId::fresh();
        rec.span_open(id, parent, name);
        // Push after the open so the backend never sees a self-parent.
        trace::push_ambient(trace::recorder_key(rec), id);
        Span { rec: Some(rec), name, id: Some(id), parent, start: Instant::now() }
    }

    fn disabled(name: &'a str) -> Span<'a> {
        // `start` is never read on the disabled path; any value does.
        Span { rec: None, name, id: None, parent: None, start: Instant::now() }
    }

    /// The span's leaf name.
    pub fn name(&self) -> &str {
        self.name
    }

    /// The span's identity, `None` when the recorder is disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// A `Copy + Send` handle parenting new work under this span; pass it
    /// across thread boundaries and open children with [`Span::child_of`].
    /// Disabled spans yield [`TraceContext::NONE`].
    pub fn context(&self) -> TraceContext {
        match self.id {
            Some(id) => TraceContext::under(id),
            None => TraceContext::NONE,
        }
    }

    /// Attaches `key = value` to this span (dropped by backends without
    /// per-span storage; free when the recorder is disabled).
    pub fn attr(&self, key: &str, value: impl Into<Json>) {
        if let (Some(rec), Some(id)) = (self.rec, self.id) {
            rec.span_attr(id, key, &value.into());
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(id)) = (self.rec, self.id) {
            trace::pop_ambient(trace::recorder_key(rec), id);
            rec.span_close(id, self.parent, self.name, self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.is_enabled());
        rec.counter("x", 1);
        rec.histogram("y", 2);
        let span = Span::new(&rec, "z");
        assert_eq!(span.name(), "z");
        assert_eq!(span.id(), None);
        assert_eq!(span.context(), TraceContext::NONE);
        span.attr("k", 1u64); // must not allocate an id or emit
        drop(span); // must not panic or emit
    }

    #[test]
    fn shared_noop_handle() {
        let rec = noop();
        assert!(!rec.is_enabled());
    }

    #[test]
    fn enabled_spans_expose_identity_and_context() {
        let rec = crate::MemoryRecorder::new();
        let outer = Span::new(&rec, "outer");
        let id = outer.id().unwrap();
        assert_eq!(outer.context().parent(), Some(id));
        let inner = Span::new(&rec, "inner");
        assert_ne!(inner.id(), outer.id());
        drop(inner);
        drop(outer);
    }

    #[test]
    fn two_recorders_on_one_thread_nest_independently() {
        let a = crate::MemoryRecorder::new();
        let b = crate::MemoryRecorder::new();
        {
            let _oa = Span::new(&a, "root_a");
            let _ob = Span::new(&b, "root_b");
            // Each inner span must nest under *its own* recorder's root,
            // not the innermost span of the interleaved stack.
            let _ia = Span::new(&a, "leaf");
            let _ib = Span::new(&b, "leaf");
        }
        assert_eq!(a.snapshot().span("root_a/leaf").unwrap().count, 1);
        assert_eq!(b.snapshot().span("root_b/leaf").unwrap().count, 1);
    }
}
