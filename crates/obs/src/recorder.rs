//! The [`Recorder`] trait — the single sink every instrumented layer
//! writes to — plus the default [`NoopRecorder`] and the RAII
//! [`Span`] guard.
//!
//! Backends implement four primitives: open/close a span, bump a counter,
//! record a histogram sample. Span *nesting* is the backend's concern
//! (both provided aggregating backends keep a per-thread stack and key
//! aggregates by the `/`-joined path), so instrumentation sites only name
//! the leaf: a `views` span opened while a `derandomize` span is live on
//! the same thread lands at `derandomize/views`.
//!
//! The no-op recorder reports [`Recorder::is_enabled`]` == false`, which
//! every emission helper checks first — an instrumented hot path with the
//! no-op recorder costs one virtual call per *span*, and nothing per
//! counter or histogram sample behind the [`Span::new`] gate.

use std::fmt::Debug;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A structured-observability sink: spans, counters, histograms.
///
/// All methods take `&self`; implementations must be internally
/// synchronized ([`Send`] + [`Sync`]) because the batch scheduler drives
/// one recorder from many worker threads.
pub trait Recorder: Send + Sync + Debug {
    /// `false` for sinks that discard everything — callers may (and the
    /// provided helpers do) skip metric computation entirely.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Opens a span named `name` on the calling thread.
    fn span_open(&self, name: &str);

    /// Closes the innermost open span on the calling thread, which was
    /// opened as `name`, after `wall` of wall time.
    fn span_close(&self, name: &str, wall: Duration);

    /// Adds `delta` to the counter `name`.
    fn counter(&self, name: &str, delta: u64);

    /// Records one sample of `value` into the histogram `name`.
    fn histogram(&self, name: &str, value: u64);
}

/// A shared, thread-safe recorder handle, as selected per
/// `Execution`/`Derandomizer`/batch run.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The default sink: discards everything, reports itself disabled.
///
/// This is what every un-instrumented entry point uses, so enabling the
/// observability layer with the no-op recorder must be observationally
/// free — byte-identical outputs, traces, and cache contents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn span_open(&self, _name: &str) {}
    fn span_close(&self, _name: &str, _wall: Duration) {}
    fn counter(&self, _name: &str, _delta: u64) {}
    fn histogram(&self, _name: &str, _value: u64) {}
}

/// A fresh shared handle to the no-op recorder.
pub fn noop() -> SharedRecorder {
    Arc::new(NoopRecorder)
}

/// An RAII span guard: measures wall time from creation to drop and
/// reports it to the recorder, with nesting tracked per thread by the
/// backend.
///
/// # Example
///
/// ```
/// use anonet_obs::{MemoryRecorder, Recorder, Span};
///
/// let rec = MemoryRecorder::new();
/// {
///     let _outer = Span::new(&rec, "pipeline");
///     let _inner = Span::new(&rec, "coloring");
/// } // both close here, innermost first
/// let snap = rec.snapshot();
/// assert_eq!(snap.span("pipeline/coloring").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    rec: Option<&'a dyn Recorder>,
    name: &'a str,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Opens a span on `rec`; a disabled recorder makes this (and the
    /// matching close) a no-op that never reads the clock.
    pub fn new(rec: &'a dyn Recorder, name: &'a str) -> Span<'a> {
        if rec.is_enabled() {
            rec.span_open(name);
            Span { rec: Some(rec), name, start: Instant::now() }
        } else {
            // `start` is never read on the disabled path; any value does.
            Span { rec: None, name, start: Instant::now() }
        }
    }

    /// The span's leaf name.
    pub fn name(&self) -> &str {
        self.name
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.span_close(self.name, self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.is_enabled());
        rec.counter("x", 1);
        rec.histogram("y", 2);
        let span = Span::new(&rec, "z");
        assert_eq!(span.name(), "z");
        drop(span); // must not panic or emit
    }

    #[test]
    fn shared_noop_handle() {
        let rec = noop();
        assert!(!rec.is_enabled());
    }
}
