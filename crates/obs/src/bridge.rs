//! Bridging the runtime's execution artifacts into a [`Recorder`].
//!
//! The engine itself stays observability-free: it produces an
//! [`Execution`] (aggregate profiles) and, when tracing is on, a
//! [`Event`] log. This module maps both onto the `engine.*` metric
//! namespace — [`record_execution`] from the aggregates (no tracing
//! needed), [`record_events`] from a raw event log — and provides the
//! recorder-backed [`timeline`] renderer over the runtime's
//! `timeline_text`.
//!
//! Call **either** [`record_execution`] **or** [`record_events`] for a
//! given run, not both: they cover the same counters.

use anonet_runtime::{Algorithm, Event, Execution};

use crate::names;
use crate::recorder::Recorder;

/// Feeds an execution's aggregate profiles into `rec`: the `engine.*`
/// counters (rounds, messages, bytes, bits, outputs, halts) and
/// histograms (messages/active per round, bits per node).
///
/// A node's bit consumption is the number of rounds it stayed active:
/// its halt round, or the full execution length if it never halted.
pub fn record_execution<A: Algorithm>(rec: &dyn Recorder, exec: &Execution<A>) {
    if !rec.is_enabled() {
        return;
    }
    rec.counter(names::ENGINE_ROUNDS, exec.rounds() as u64);
    rec.counter(names::ENGINE_MESSAGES, exec.messages_sent() as u64);
    rec.counter(names::ENGINE_MESSAGE_BYTES, exec.message_bytes() as u64);
    rec.counter(names::ENGINE_BITS_DRAWN, exec.bits_consumed() as u64);
    rec.counter(
        names::ENGINE_OUTPUTS,
        exec.outputs().iter().filter(|o| o.is_some()).count() as u64,
    );
    rec.counter(
        names::ENGINE_HALTS,
        exec.halt_rounds().iter().filter(|r| r.is_some()).count() as u64,
    );
    for &m in exec.messages_per_round() {
        rec.histogram(names::ENGINE_MESSAGES_PER_ROUND, m as u64);
    }
    for &a in exec.active_per_round() {
        rec.histogram(names::ENGINE_ACTIVE_PER_ROUND, a as u64);
    }
    for halt in exec.halt_rounds() {
        rec.histogram(names::ENGINE_BITS_PER_NODE, halt.unwrap_or(exec.rounds()) as u64);
    }
}

/// Feeds a traced [`Event`] log into `rec`: `engine.*` counters for
/// messages, bytes, bits, outputs, halts, and rounds (the highest round
/// observed), plus the messages-per-round histogram.
pub fn record_events(rec: &dyn Recorder, events: &[Event]) {
    if !rec.is_enabled() {
        return;
    }
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut bits = 0u64;
    let mut outputs = 0u64;
    let mut halts = 0u64;
    let mut rounds = 0usize;
    let mut per_round: Vec<u64> = Vec::new();
    for event in events {
        rounds = rounds.max(event.round());
        match event {
            Event::MessageSent { round, bytes: b, .. } => {
                messages += 1;
                bytes += *b as u64;
                if per_round.len() < *round {
                    per_round.resize(*round, 0);
                }
                per_round[*round - 1] += 1;
            }
            Event::BitsDrawn { count, .. } => bits += *count as u64,
            Event::OutputSet { .. } => outputs += 1,
            Event::Halted { .. } => halts += 1,
        }
    }
    rec.counter(names::ENGINE_ROUNDS, rounds as u64);
    rec.counter(names::ENGINE_MESSAGES, messages);
    rec.counter(names::ENGINE_MESSAGE_BYTES, bytes);
    rec.counter(names::ENGINE_BITS_DRAWN, bits);
    rec.counter(names::ENGINE_OUTPUTS, outputs);
    rec.counter(names::ENGINE_HALTS, halts);
    per_round.resize(rounds, 0);
    for m in per_round {
        rec.histogram(names::ENGINE_MESSAGES_PER_ROUND, m);
    }
}

/// The recorder-backed timeline renderer: records the event log's
/// `engine.*` metrics into `rec` and returns the ASCII timeline of
/// `anonet_runtime::trace::timeline_text`.
pub fn timeline(rec: &dyn Recorder, events: &[Event]) -> String {
    record_events(rec, events);
    anonet_runtime::trace::timeline_text(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;
    use crate::recorder::NoopRecorder;
    use anonet_graph::{generators, NodeId, Port};
    use anonet_runtime::{run, Actions, ExecConfig, Inbox, ZeroSource};

    /// Echoes on every port for `k` rounds, then outputs 0 and halts.
    #[derive(Debug)]
    struct Chatter {
        k: usize,
    }

    impl Algorithm for Chatter {
        type Input = u32;
        type Message = u16;
        type Output = u8;
        type State = ();

        fn init(&self, _input: &u32, _degree: usize) {}
        fn compose(&self, _state: &(), _port: Port) -> Option<u16> {
            Some(0)
        }
        fn step(
            &self,
            _state: (),
            round: usize,
            _inbox: &Inbox<u16>,
            _bit: bool,
            actions: &mut Actions<u8>,
        ) {
            if round == self.k {
                actions.output(0);
                actions.halt();
            }
        }
    }

    fn traced_run() -> Execution<Chatter> {
        let net = generators::cycle(4).unwrap().with_uniform_label(0u32);
        run(&Chatter { k: 3 }, &net, &mut ZeroSource, &ExecConfig::default().tracing()).unwrap()
    }

    #[test]
    fn execution_and_events_agree() {
        let exec = traced_run();
        let from_exec = MemoryRecorder::new();
        record_execution(&from_exec, &exec);
        let from_events = MemoryRecorder::new();
        record_events(&from_events, exec.events().unwrap());
        let a = from_exec.snapshot();
        let b = from_events.snapshot();
        for name in [
            names::ENGINE_ROUNDS,
            names::ENGINE_MESSAGES,
            names::ENGINE_MESSAGE_BYTES,
            names::ENGINE_BITS_DRAWN,
            names::ENGINE_OUTPUTS,
            names::ENGINE_HALTS,
        ] {
            assert_eq!(a.counter(name), b.counter(name), "{name} diverged");
        }
        assert_eq!(
            a.histogram(names::ENGINE_MESSAGES_PER_ROUND),
            b.histogram(names::ENGINE_MESSAGES_PER_ROUND)
        );
        // Spot-check absolute values: 4 nodes × 2 ports × 3 rounds.
        assert_eq!(a.counter(names::ENGINE_MESSAGES), 24);
        assert_eq!(a.counter(names::ENGINE_MESSAGE_BYTES), 24 * 2);
        assert_eq!(a.counter(names::ENGINE_BITS_DRAWN), 12);
        assert_eq!(a.counter(names::ENGINE_ROUNDS), 3);
        assert_eq!(a.histogram(names::ENGINE_BITS_PER_NODE).unwrap().count(), 4);
    }

    #[test]
    fn timeline_matches_legacy_renderer_and_records() {
        let exec = traced_run();
        let rec = MemoryRecorder::new();
        let text = timeline(&rec, exec.events().unwrap());
        assert_eq!(text, exec.timeline());
        assert!(text.contains("round   1:    8 msgs"));
        assert_eq!(rec.snapshot().counter(names::ENGINE_MESSAGES), 24);
    }

    #[test]
    fn disabled_recorder_short_circuits() {
        let exec = traced_run();
        record_execution(&NoopRecorder, &exec);
        record_events(&NoopRecorder, exec.events().unwrap());
        let events = vec![Event::OutputSet { round: 1, node: NodeId::new(0) }];
        assert_eq!(timeline(&NoopRecorder, &events), "round   1:    0 msgs | out: v0\n");
    }
}
