//! A minimal JSON value: build, serialize, parse.
//!
//! The workspace's dependency policy keeps serde out, but several layers
//! need structured output — the streaming JSONL recorder, the bench
//! harness's `BENCH_*.json` artifacts — and the tests need to *parse* what
//! was written. This module is the one shared serializer: a [`Json`] tree
//! with escaping-correct rendering ([`fmt::Display`]) and a strict
//! recursive-descent parser ([`Json::parse`]).
//!
//! Numbers are stored as `f64` (integers render without a fractional
//! part); object keys keep insertion order so output is deterministic.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A rendered message with the byte offset of the first violation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders with 2-space indentation (what `BENCH_*.json` files use).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_number(*x, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => render_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].render(out, ind);
            }),
            Json::Obj(pairs) => render_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                render_string(&pairs[i].0, out);
                out.push_str(": ");
                pairs[i].1.render(out, ind);
            }),
        }
    }
}

/// Compact single-line rendering.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

fn render_number(x: f64, out: &mut String) {
    use std::fmt::Write;
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the honest rendering
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        match indent {
            Some(depth) => {
                out.push('\n');
                out.push_str(&"  ".repeat(depth + 1));
                item(out, i, Some(depth + 1));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
                item(out, i, None);
            }
        }
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::str("a\"b\\c\nd")),
            ("n", Json::from(42u64)),
            ("pi", Json::from(3.5)),
            ("ok", Json::from(true)),
            ("nothing", Json::Null),
            ("xs", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::arr([])),
        ]);
        for text in [v.to_string(), v.pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, v, "failed on {text}");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"a": [1, true, "x"], "b": {"c": 2}}"#).unwrap();
        let items = v.get("a").unwrap().items().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_bool(), Some(true));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(2.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(7u64).to_string(), "7");
        assert_eq!(Json::from(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("nully").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""A\t""#).unwrap(), Json::str("A\t"));
    }

    #[test]
    fn escapes_control_chars() {
        let s = Json::str("\u{1}");
        assert_eq!(s.to_string(), "\"\\u0001\"");
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }
}
