//! The streaming JSONL backend.
//!
//! [`JsonlRecorder`] writes one JSON object per line to any `Write + Send`
//! sink as metrics arrive: span closings (with stable `id`/`parent`
//! links, the `/`-joined causal path, wall time in microseconds, and the
//! recording thread's ordinal), span attributes, counter bumps, and
//! histogram samples, each stamped with microseconds since the recorder
//! was created. Lines are self-describing (`"ev"` discriminates), so
//! traces can be grepped, tailed, re-parsed with
//! [`Json::parse`](crate::json::Json::parse), or fed to the
//! `anonet-trace` toolchain (Perfetto export, flamegraphs, critical
//! paths). A span's start time is reconstructable as `us - wall_us`; no
//! separate open line is emitted, which halves trace volume.
//!
//! # Durability
//!
//! Write errors are swallowed mid-run (observability must never fail the
//! observed computation); call [`JsonlRecorder::flush`] to learn whether
//! the sink is still healthy. Dropping the recorder flushes whatever the
//! sink buffered, so a dropped recorder leaves no truncated final line,
//! and [`JsonlRecorder::flush_on_panic`] registers a panic-hook flush for
//! traces that must survive a crash. *Flush is not fsync*: buffered bytes
//! reach the OS, but no `File::sync_all` is issued — a kernel crash or
//! power loss can still lose the tail. The store owns fsync policy for
//! data; traces deliberately stay cheap.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::recorder::Recorder;
use crate::trace::{thread_ordinal, SpanId};

struct Inner {
    writer: Box<dyn Write + Send>,
    /// Open span id → its full `/`-joined path, removed on close.
    open: HashMap<SpanId, String>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").field("open", &self.open.len()).finish_non_exhaustive()
    }
}

/// A [`Recorder`] that streams every metric event as one JSON line. See
/// the [module docs](self) for the line schema and durability contract.
#[derive(Debug)]
pub struct JsonlRecorder {
    inner: Mutex<Inner>,
    epoch: Instant,
}

impl JsonlRecorder {
    /// Streams to an arbitrary sink.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonlRecorder {
            inner: Mutex::new(Inner { writer: Box::new(writer), open: HashMap::new() }),
            epoch: Instant::now(),
        }
    }

    /// Streams to a buffered file created (truncated) at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlRecorder::new(BufWriter::new(File::create(path)?)))
    }

    /// A recorder writing into a shared in-memory buffer, plus a handle
    /// to read the buffer back — the test- and example-friendly sink.
    pub fn buffered() -> (Self, SharedBuffer) {
        let buf = SharedBuffer::default();
        (JsonlRecorder::new(buf.clone()), buf)
    }

    /// Flushes the underlying sink (to the OS — not fsync; see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// Propagates the sink's flush failure.
    pub fn flush(&self) -> io::Result<()> {
        self.lock().writer.flush()
    }

    /// Registers a process-wide panic hook that flushes this recorder, so
    /// the trace of a crashing run is complete up to the panic. The hook
    /// holds only a [`Weak`] reference: dropping the recorder (which
    /// flushes anyway) leaves a no-op behind.
    pub fn flush_on_panic(self: &Arc<Self>) {
        let weak: Weak<JsonlRecorder> = Arc::downgrade(self);
        crate::crash::on_panic(move || {
            if let Some(rec) = weak.upgrade() {
                if let Err(e) = rec.flush() {
                    eprintln!("anonet-obs: flush from panic hook failed: {e}");
                }
            }
        });
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn emit(&self, inner: &mut Inner, fields: Vec<(&'static str, Json)>) {
        let us = self.epoch.elapsed().as_micros() as u64;
        let mut pairs = vec![("us".to_string(), Json::from(us))];
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        // Swallow write errors: a full disk must not panic the engine.
        let _ = writeln!(inner.writer, "{}", Json::Obj(pairs));
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        // Best-effort: a dropped recorder leaves no truncated final line.
        let _ = self.lock().writer.flush();
    }
}

fn id_json(id: Option<SpanId>) -> Json {
    match id {
        Some(id) => Json::from(id.get()),
        None => Json::Null,
    }
}

impl Recorder for JsonlRecorder {
    fn span_open(&self, id: SpanId, parent: Option<SpanId>, name: &str) {
        let mut inner = self.lock();
        let path = match parent.and_then(|p| inner.open.get(&p)) {
            Some(parent_path) => format!("{parent_path}/{name}"),
            None => name.to_string(),
        };
        inner.open.insert(id, path);
    }

    fn span_close(&self, id: SpanId, parent: Option<SpanId>, name: &str, wall: Duration) {
        let mut inner = self.lock();
        let path = inner.open.remove(&id).unwrap_or_else(|| name.to_string());
        let fields = vec![
            ("ev", Json::str("span")),
            ("id", Json::from(id.get())),
            ("parent", id_json(parent)),
            ("name", Json::str(name)),
            ("path", Json::str(path)),
            ("wall_us", Json::from(wall.as_micros() as u64)),
            ("tid", Json::from(thread_ordinal())),
        ];
        self.emit(&mut inner, fields);
    }

    fn span_attr(&self, id: SpanId, key: &str, value: &Json) {
        let mut inner = self.lock();
        let fields = vec![
            ("ev", Json::str("attr")),
            ("id", Json::from(id.get())),
            ("key", Json::str(key)),
            ("value", value.clone()),
        ];
        self.emit(&mut inner, fields);
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let fields =
            vec![("ev", Json::str("counter")), ("name", Json::str(name)), ("delta", delta.into())];
        self.emit(&mut inner, fields);
    }

    fn histogram(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        let fields =
            vec![("ev", Json::str("hist")), ("name", Json::str(name)), ("value", value.into())];
        self.emit(&mut inner, fields);
    }
}

/// A clonable in-memory sink for [`JsonlRecorder::buffered`].
#[derive(Clone, Debug, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// The buffer contents as UTF-8 text.
    pub fn contents(&self) -> String {
        let bytes = self.bytes.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// The buffered lines, each parsed as JSON.
    ///
    /// # Errors
    ///
    /// The first line that fails to parse.
    pub fn parsed_lines(&self) -> Result<Vec<Json>, String> {
        self.contents().lines().map(Json::parse).collect()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn streams_parseable_lines() {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let _outer = Span::new(&rec, "pipeline");
            let _inner = Span::new(&rec, "coloring");
            rec.counter("engine.messages", 7);
            rec.histogram("engine.messages_per_round", 3);
        }
        rec.flush().unwrap();
        let lines = buf.parsed_lines().unwrap();
        assert_eq!(lines.len(), 4); // counter, hist, inner close, outer close
        for line in &lines {
            assert!(line.get("us").is_some());
        }
        let spans: Vec<&Json> =
            lines.iter().filter(|l| l.get("ev").and_then(Json::as_str) == Some("span")).collect();
        let paths: Vec<&str> =
            spans.iter().map(|l| l.get("path").unwrap().as_str().unwrap()).collect();
        assert_eq!(paths, ["pipeline/coloring", "pipeline"]);
        // id/parent links: the inner close's parent is the outer close's id.
        let inner_parent = spans[0].get("parent").unwrap().as_f64().unwrap();
        let outer_id = spans[1].get("id").unwrap().as_f64().unwrap();
        assert_eq!(inner_parent, outer_id);
        assert_eq!(spans[1].get("parent"), Some(&Json::Null));
        for span in &spans {
            assert!(span.get("wall_us").is_some());
            assert!(span.get("tid").unwrap().as_f64().unwrap() >= 1.0);
            assert!(span.get("name").is_some());
        }
        let counter =
            lines.iter().find(|l| l.get("ev").and_then(Json::as_str) == Some("counter")).unwrap();
        assert_eq!(counter.get("name").unwrap().as_str(), Some("engine.messages"));
        assert_eq!(counter.get("delta").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn attrs_attach_to_span_ids() {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let span = Span::new(&rec, "soak_cell");
            span.attr("replay", "tc1:abc");
            span.attr("threads", 8u64);
        }
        rec.flush().unwrap();
        let lines = buf.parsed_lines().unwrap();
        let attrs: Vec<&Json> =
            lines.iter().filter(|l| l.get("ev").and_then(Json::as_str) == Some("attr")).collect();
        assert_eq!(attrs.len(), 2);
        let span =
            lines.iter().find(|l| l.get("ev").and_then(Json::as_str) == Some("span")).unwrap();
        for attr in &attrs {
            assert_eq!(attr.get("id"), span.get("id"));
        }
        assert_eq!(attrs[0].get("value").unwrap().as_str(), Some("tc1:abc"));
        assert_eq!(attrs[1].get("value").unwrap().as_f64(), Some(8.0));
    }

    #[test]
    fn create_writes_a_file() {
        let path = std::env::temp_dir().join("anonet_obs_jsonl_test.jsonl");
        let rec = JsonlRecorder::create(&path).unwrap();
        rec.counter("c", 1);
        rec.flush().unwrap();
        drop(rec);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text.lines().count(), 1);
        Json::parse(text.lines().next().unwrap()).unwrap();
    }

    #[test]
    fn drop_flushes_no_truncated_final_line() {
        let path = std::env::temp_dir()
            .join(format!("anonet_obs_jsonl_drop_{}.jsonl", std::process::id()));
        {
            // Buffered file sink, *no* explicit flush: only Drop runs.
            let rec = JsonlRecorder::create(&path).unwrap();
            for i in 0..200u64 {
                rec.counter("c", i);
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text.lines().count(), 200);
        assert!(text.ends_with('\n'), "final line must be newline-terminated");
        for line in text.lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn panic_hook_flushes_registered_recorders() {
        let (rec, buf) = JsonlRecorder::buffered();
        let rec = Arc::new(rec);
        rec.flush_on_panic();
        rec.counter("before_panic", 1);
        let result = std::panic::catch_unwind(|| panic!("boom for the trace flush"));
        assert!(result.is_err());
        // SharedBuffer is unbuffered, so the observable effect is just
        // that the hook ran without deadlocking and the line is intact.
        assert!(buf.contents().contains("before_panic"));
    }
}
