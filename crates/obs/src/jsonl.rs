//! The streaming JSONL backend.
//!
//! [`JsonlRecorder`] writes one JSON object per line to any `Write + Send`
//! sink as metrics arrive: span closings (with their `/`-joined path and
//! wall time in microseconds), counter bumps, and histogram samples, each
//! stamped with microseconds since the recorder was created. Lines are
//! self-describing (`"ev"` discriminates), so traces can be grepped,
//! tailed, or re-parsed with [`Json::parse`](crate::json::Json::parse).

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::recorder::Recorder;

struct Inner {
    writer: Box<dyn Write + Send>,
    stacks: HashMap<ThreadId, Vec<String>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").field("stacks", &self.stacks).finish_non_exhaustive()
    }
}

/// A [`Recorder`] that streams every metric event as one JSON line.
///
/// Write errors are swallowed (observability must never fail the
/// observed computation); call [`JsonlRecorder::flush`] to learn whether
/// the sink is still healthy.
#[derive(Debug)]
pub struct JsonlRecorder {
    inner: Mutex<Inner>,
    epoch: Instant,
}

impl JsonlRecorder {
    /// Streams to an arbitrary sink.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonlRecorder {
            inner: Mutex::new(Inner { writer: Box::new(writer), stacks: HashMap::new() }),
            epoch: Instant::now(),
        }
    }

    /// Streams to a buffered file created (truncated) at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlRecorder::new(BufWriter::new(File::create(path)?)))
    }

    /// A recorder writing into a shared in-memory buffer, plus a handle
    /// to read the buffer back — the test- and example-friendly sink.
    pub fn buffered() -> (Self, SharedBuffer) {
        let buf = SharedBuffer::default();
        (JsonlRecorder::new(buf.clone()), buf)
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's flush failure.
    pub fn flush(&self) -> io::Result<()> {
        self.lock().writer.flush()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn emit(&self, inner: &mut Inner, fields: Vec<(&'static str, Json)>) {
        let us = self.epoch.elapsed().as_micros() as u64;
        let mut pairs = vec![("us".to_string(), Json::from(us))];
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        // Swallow write errors: a full disk must not panic the engine.
        let _ = writeln!(inner.writer, "{}", Json::Obj(pairs));
    }
}

impl Recorder for JsonlRecorder {
    fn span_open(&self, name: &str) {
        let mut inner = self.lock();
        inner.stacks.entry(std::thread::current().id()).or_default().push(name.to_string());
    }

    fn span_close(&self, name: &str, wall: Duration) {
        let mut inner = self.lock();
        let stack = inner.stacks.entry(std::thread::current().id()).or_default();
        let path = if stack.last().map(String::as_str) == Some(name) {
            let joined = stack.join("/");
            stack.pop();
            joined
        } else {
            name.to_string()
        };
        let fields = vec![
            ("ev", Json::str("span")),
            ("path", Json::str(path)),
            ("wall_us", Json::from(wall.as_micros() as u64)),
        ];
        self.emit(&mut inner, fields);
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let fields =
            vec![("ev", Json::str("counter")), ("name", Json::str(name)), ("delta", delta.into())];
        self.emit(&mut inner, fields);
    }

    fn histogram(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        let fields =
            vec![("ev", Json::str("hist")), ("name", Json::str(name)), ("value", value.into())];
        self.emit(&mut inner, fields);
    }
}

/// A clonable in-memory sink for [`JsonlRecorder::buffered`].
#[derive(Clone, Debug, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// The buffer contents as UTF-8 text.
    pub fn contents(&self) -> String {
        let bytes = self.bytes.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// The buffered lines, each parsed as JSON.
    ///
    /// # Errors
    ///
    /// The first line that fails to parse.
    pub fn parsed_lines(&self) -> Result<Vec<Json>, String> {
        self.contents().lines().map(Json::parse).collect()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn streams_parseable_lines() {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let _outer = Span::new(&rec, "pipeline");
            let _inner = Span::new(&rec, "coloring");
            rec.counter("engine.messages", 7);
            rec.histogram("engine.messages_per_round", 3);
        }
        rec.flush().unwrap();
        let lines = buf.parsed_lines().unwrap();
        assert_eq!(lines.len(), 4); // counter, hist, inner close, outer close
        for line in &lines {
            assert!(line.get("us").is_some());
        }
        let spans: Vec<&str> = lines
            .iter()
            .filter(|l| l.get("ev").and_then(Json::as_str) == Some("span"))
            .map(|l| l.get("path").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(spans, ["pipeline/coloring", "pipeline"]);
        let counter =
            lines.iter().find(|l| l.get("ev").and_then(Json::as_str) == Some("counter")).unwrap();
        assert_eq!(counter.get("name").unwrap().as_str(), Some("engine.messages"));
        assert_eq!(counter.get("delta").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn create_writes_a_file() {
        let path = std::env::temp_dir().join("anonet_obs_jsonl_test.jsonl");
        let rec = JsonlRecorder::create(&path).unwrap();
        rec.counter("c", 1);
        rec.flush().unwrap();
        drop(rec);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text.lines().count(), 1);
        Json::parse(text.lines().next().unwrap()).unwrap();
    }
}
