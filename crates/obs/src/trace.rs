//! Span identities and cross-thread causality.
//!
//! Every enabled span gets a process-unique [`SpanId`] and an explicit
//! `parent: Option<SpanId>`, so backends can reconstruct the span *tree*
//! even when a child closes on a different thread than its parent opened
//! on. Parents are found two ways:
//!
//! * **Ambient** — [`Span::new`](crate::Span::new) adopts the innermost
//!   span the *same recorder* has open on the calling thread (tracked
//!   here in a thread-local stack keyed by recorder identity, so two
//!   recorders live on one thread never cross-pollute).
//! * **Explicit** — a [`TraceContext`] captured from a span with
//!   [`Span::context`](crate::Span::context) is `Copy + Send`; hand it
//!   across a thread boundary and open children with
//!   [`Span::child_of`](crate::Span::child_of). This is how scheduler
//!   jobs and the `A_*` phase fan-out stay parented under the submitting
//!   span instead of becoming fresh per-thread roots.
//!
//! Nothing here allocates an id, touches the thread-local, or reads a
//! clock when the recorder is disabled — the no-op path stays free.

use std::cell::RefCell;
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::recorder::Recorder;

/// A process-unique span identity, allocated from one global counter the
/// moment an *enabled* span opens. The numeric value is what JSONL traces
/// carry in their `id`/`parent` fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(NonZeroU64);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

impl SpanId {
    /// Allocates the next id. Wrapping 2^64 allocations is unreachable in
    /// any real process; the fallback keeps the function total anyway.
    pub(crate) fn fresh() -> SpanId {
        let raw = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        SpanId(NonZeroU64::new(raw).unwrap_or(NonZeroU64::MIN))
    }

    /// The numeric value, as emitted in trace `id`/`parent` fields.
    pub fn get(self) -> u64 {
        self.0.get()
    }
}

/// A causality handle that crosses thread boundaries: `Copy + Send`,
/// carrying the span new work should be parented under.
///
/// # Example
///
/// ```
/// use anonet_obs::{MemoryRecorder, Span};
///
/// let rec = MemoryRecorder::new();
/// let batch = Span::new(&rec, "batch_run");
/// let ctx = batch.context();
/// std::thread::scope(|scope| {
///     scope.spawn(|| {
///         let _job = Span::child_of(&rec, "job", ctx);
///     });
/// });
/// drop(batch);
/// let snap = rec.snapshot();
/// assert_eq!(snap.span("batch_run/job").unwrap().count, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceContext {
    parent: Option<SpanId>,
}

impl TraceContext {
    /// The empty context: children opened under it become roots.
    pub const NONE: TraceContext = TraceContext { parent: None };

    /// A context parenting children under `id`.
    pub fn under(id: SpanId) -> TraceContext {
        TraceContext { parent: Some(id) }
    }

    /// The parent a child span opened with this context adopts.
    pub fn parent(self) -> Option<SpanId> {
        self.parent
    }
}

thread_local! {
    /// The calling thread's open enabled spans: `(recorder key, id)`,
    /// innermost last. Spans borrow their recorder, so a frame can never
    /// outlive the recorder its key points at.
    static AMBIENT: RefCell<Vec<(usize, SpanId)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique ordinal for the calling thread (1, 2, 3, … in
/// first-use order) — the `tid` stamped on JSONL and flight-recorder
/// events, stable for the thread's lifetime.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|&t| t)
}

/// The identity key distinguishing recorders on the ambient stack: the
/// recorder's address.
pub(crate) fn recorder_key(rec: &dyn Recorder) -> usize {
    rec as *const dyn Recorder as *const () as usize
}

/// The innermost span `key`'s recorder has open on this thread.
pub(crate) fn ambient_parent(key: usize) -> Option<SpanId> {
    AMBIENT.with(|stack| stack.borrow().iter().rev().find(|&&(k, _)| k == key).map(|&(_, id)| id))
}

pub(crate) fn push_ambient(key: usize, id: SpanId) {
    AMBIENT.with(|stack| stack.borrow_mut().push((key, id)));
}

/// Removes the frame `(key, id)` if this thread holds it. A span guard
/// moved to (and dropped on) another thread leaves no frame here — the
/// close still carries its explicit parent, so causality survives.
pub(crate) fn pop_ambient(key: usize, id: SpanId) {
    AMBIENT.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&frame| frame == (key, id)) {
            stack.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_across_threads() {
        let mut ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| (0..100).map(|_| SpanId::fresh().get()).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let there = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn context_carries_its_parent() {
        assert_eq!(TraceContext::NONE.parent(), None);
        let id = SpanId::fresh();
        assert_eq!(TraceContext::under(id).parent(), Some(id));
        assert_eq!(TraceContext::default(), TraceContext::NONE);
    }
}
