//! The in-memory aggregating backend.
//!
//! [`MemoryRecorder`] keeps counters, histograms, and span aggregates in
//! `BTreeMap`s behind one mutex. Spans arrive with explicit ids and
//! parent links (see [`crate::trace`]), so aggregation is *causal*: each
//! closing lands under the `/`-joined path of its parent chain — even
//! when the child closed on a different thread than its parent opened on.
//! [`MemoryRecorder::snapshot`] clones the aggregates out as a
//! [`MemorySnapshot`] — an inert, comparable, renderable value used by
//! the experiments and the differential tests, which can also rebuild the
//! nested span tree ([`MemorySnapshot::tree`]).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use crate::hist::Histogram;
use crate::recorder::Recorder;
use crate::trace::SpanId;

/// Aggregate of all closings of one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span closed.
    pub count: u64,
    /// Total wall time across closings.
    pub total: Duration,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    /// Open span id → its full `/`-joined path, removed on close.
    open: HashMap<SpanId, String>,
}

/// An aggregating in-memory [`Recorder`].
///
/// # Example
///
/// ```
/// use anonet_obs::{MemoryRecorder, Recorder};
///
/// let rec = MemoryRecorder::new();
/// rec.counter("engine.messages", 12);
/// rec.counter("engine.messages", 3);
/// rec.histogram("engine.messages_per_round", 4);
/// let snap = rec.snapshot();
/// assert_eq!(snap.counter("engine.messages"), 15);
/// assert_eq!(snap.histogram("engine.messages_per_round").unwrap().count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    state: Mutex<State>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panicking instrumented job must not take observability down
        // with it; all updates are atomic under the lock.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Clones the current aggregates out.
    pub fn snapshot(&self) -> MemorySnapshot {
        let s = self.lock();
        MemorySnapshot {
            counters: s.counters.clone(),
            histograms: s.histograms.clone(),
            spans: s.spans.clone(),
        }
    }

    /// Drops all aggregates (open spans keep their paths and survive).
    pub fn reset(&self) {
        let mut s = self.lock();
        s.counters.clear();
        s.histograms.clear();
        s.spans.clear();
    }
}

impl Recorder for MemoryRecorder {
    fn span_open(&self, id: SpanId, parent: Option<SpanId>, name: &str) {
        let mut s = self.lock();
        // A parent that is not open here (already closed, or recorded by
        // another backend) degrades to a root — never a lost event.
        let path = match parent.and_then(|p| s.open.get(&p)) {
            Some(parent_path) => format!("{parent_path}/{name}"),
            None => name.to_string(),
        };
        s.open.insert(id, path);
    }

    fn span_close(&self, id: SpanId, _parent: Option<SpanId>, name: &str, wall: Duration) {
        let mut s = self.lock();
        let path = s.open.remove(&id).unwrap_or_else(|| name.to_string());
        let stat = s.spans.entry(path).or_default();
        stat.count += 1;
        stat.total += wall;
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.lock();
        *s.counters.entry(name.to_string()).or_default() += delta;
    }

    fn histogram(&self, name: &str, value: u64) {
        let mut s = self.lock();
        s.histograms.entry(name.to_string()).or_default().record(value);
    }
}

/// A point-in-time clone of a [`MemoryRecorder`]'s aggregates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

/// One node of a reconstructed span tree ([`MemorySnapshot::tree`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// The leaf name.
    pub name: String,
    /// The full `/`-joined path.
    pub path: String,
    /// Aggregate closings at exactly this path (zero for a synthesized
    /// intermediate whose own closings were never recorded).
    pub stat: SpanStat,
    /// Child nodes, sorted by name.
    pub children: Vec<SpanNode>,
}

impl MemorySnapshot {
    /// The value of a counter (`0` if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The aggregate of one exact span path (e.g. `pipeline/coloring`).
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// All span aggregates, sorted by path.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStat)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums every span path whose **leaf** name is `leaf`, across parents
    /// (a `views` span shows up under `pipeline/derandomize/views` and
    /// `derandomize/views` alike).
    pub fn span_total(&self, leaf: &str) -> SpanStat {
        let mut out = SpanStat::default();
        for (path, stat) in &self.spans {
            if path.rsplit('/').next() == Some(leaf) {
                out.count += stat.count;
                out.total += stat.total;
            }
        }
        out
    }

    /// Reconstructs the nested span tree from the aggregated paths.
    /// Intermediate nodes that never closed themselves (still open at
    /// snapshot time, or closed only under other parents) are synthesized
    /// with zero stats so their children still hang in the right place.
    pub fn tree(&self) -> Vec<SpanNode> {
        fn insert(nodes: &mut Vec<SpanNode>, prefix: &str, segments: &[&str], stat: &SpanStat) {
            let name = segments[0];
            let path =
                if prefix.is_empty() { name.to_string() } else { format!("{prefix}/{name}") };
            let pos = match nodes.iter().position(|n| n.name == name) {
                Some(pos) => pos,
                None => {
                    nodes.push(SpanNode {
                        name: name.to_string(),
                        path: path.clone(),
                        stat: SpanStat::default(),
                        children: Vec::new(),
                    });
                    nodes.len() - 1
                }
            };
            if segments.len() == 1 {
                nodes[pos].stat.count += stat.count;
                nodes[pos].stat.total += stat.total;
            } else {
                insert(&mut nodes[pos].children, &path, &segments[1..], stat);
            }
        }
        let mut roots = Vec::new();
        for (path, stat) in &self.spans {
            let segments: Vec<&str> = path.split('/').collect();
            insert(&mut roots, "", &segments, stat);
        }
        roots
    }

    /// Span path → close count with the named segments erased — the
    /// *phase structure* of a run with scheduler plumbing (`batch_run`,
    /// `job`) removed. Spans whose own leaf is an erased name vanish
    /// entirely; deeper descendants splice up to the surviving ancestor
    /// (`astar/batch_run/job/update_graph` → `astar/update_graph`). The
    /// testkit's causality oracle compares these maps across thread
    /// counts.
    pub fn reduced_span_paths(&self, erase: &[&str]) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (path, stat) in &self.spans {
            let leaf = path.rsplit('/').next().unwrap_or(path);
            if erase.contains(&leaf) {
                continue;
            }
            let kept: Vec<&str> = path.split('/').filter(|seg| !erase.contains(seg)).collect();
            *out.entry(kept.join("/")).or_default() += stat.count;
        }
        out
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Multi-line human-readable rendering (spans, counters, histograms
    /// with p50/p90/p99 bucket-bound estimates).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.spans {
            let _ = writeln!(out, "span      {path:<40} x{:<6} {:.3?}", stat.count, stat.total);
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name:<40} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name:<40} n={} min={} mean={:.2} p50={} p90={} p99={} max={}",
                h.count(),
                h.min().unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
                h.max().unwrap_or(0),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn spans_nest_into_paths() {
        let rec = MemoryRecorder::new();
        {
            let _a = Span::new(&rec, "pipeline");
            {
                let _b = Span::new(&rec, "coloring");
            }
            {
                let _c = Span::new(&rec, "derandomize");
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.span("pipeline").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/coloring").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize").unwrap().count, 1);
        assert!(snap.span("coloring").is_none());
        assert_eq!(snap.span_total("coloring").count, 1);
    }

    #[test]
    fn threads_get_independent_stacks() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _outer = Span::new(&rec, "job");
                    let _inner = Span::new(&rec, "work");
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.span("job").unwrap().count, 4);
        assert_eq!(snap.span("job/work").unwrap().count, 4);
    }

    #[test]
    fn contexts_link_worker_spans_to_their_submitter() {
        let rec = MemoryRecorder::new();
        {
            let batch = Span::new(&rec, "batch_run");
            let ctx = batch.context();
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        let job = Span::child_of(&rec, "job", ctx);
                        let _inner = Span::child_of(&rec, "step", job.context());
                    });
                }
            });
        }
        let snap = rec.snapshot();
        assert_eq!(snap.span("batch_run").unwrap().count, 1);
        assert_eq!(snap.span("batch_run/job").unwrap().count, 3);
        assert_eq!(snap.span("batch_run/job/step").unwrap().count, 3);
        assert!(snap.span("job").is_none(), "no orphan per-thread roots");
    }

    #[test]
    fn tree_reconstructs_nesting_and_synthesizes_open_parents() {
        let rec = MemoryRecorder::new();
        let root = Span::new(&rec, "campaign");
        {
            let _cell = Span::new(&rec, "cell");
            let _work = Span::new(&rec, "work");
        }
        // `campaign` is still open at snapshot time.
        let snap = rec.snapshot();
        let tree = snap.tree();
        assert_eq!(tree.len(), 1);
        let campaign = &tree[0];
        assert_eq!(campaign.name, "campaign");
        assert_eq!(campaign.stat.count, 0, "open parent is synthesized");
        assert_eq!(campaign.children.len(), 1);
        let cell = &campaign.children[0];
        assert_eq!((cell.path.as_str(), cell.stat.count), ("campaign/cell", 1));
        assert_eq!(cell.children[0].path, "campaign/cell/work");
        drop(root);
    }

    #[test]
    fn reduced_paths_erase_scheduler_segments() {
        let rec = MemoryRecorder::new();
        {
            let astar = Span::new(&rec, "astar");
            let batch = Span::child_of(&rec, "batch_run", astar.context());
            let job = Span::child_of(&rec, "job", batch.context());
            let _step = Span::child_of(&rec, "update_graph", astar.context());
            drop(job);
        }
        let reduced = rec.snapshot().reduced_span_paths(&["batch_run", "job"]);
        let expected: BTreeMap<String, u64> =
            [("astar".to_string(), 1), ("astar/update_graph".to_string(), 1)].into();
        assert_eq!(reduced, expected);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let rec = MemoryRecorder::new();
        rec.counter("c", 1);
        rec.counter("c", 2);
        rec.histogram("h", 10);
        rec.histogram("h", 20);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert!(snap.render().contains("counter   c"));
        assert!(snap.render().contains("p50="));
        assert!(!snap.is_empty());
    }

    #[test]
    fn reset_clears_aggregates() {
        let rec = MemoryRecorder::new();
        rec.counter("c", 1);
        rec.reset();
        assert!(rec.snapshot().is_empty());
    }
}
