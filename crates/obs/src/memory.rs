//! The in-memory aggregating backend.
//!
//! [`MemoryRecorder`] keeps counters, histograms, and span aggregates in
//! `BTreeMap`s behind one mutex, with a per-thread span stack so concurrent
//! batch workers nest independently. [`MemoryRecorder::snapshot`] clones
//! the aggregates out as a [`MemorySnapshot`] — an inert, comparable,
//! renderable value used by the experiments and the differential tests.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Duration;

use crate::hist::Histogram;
use crate::recorder::Recorder;

/// Aggregate of all closings of one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span closed.
    pub count: u64,
    /// Total wall time across closings.
    pub total: Duration,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    stacks: HashMap<ThreadId, Vec<String>>,
}

/// An aggregating in-memory [`Recorder`].
///
/// # Example
///
/// ```
/// use anonet_obs::{MemoryRecorder, Recorder};
///
/// let rec = MemoryRecorder::new();
/// rec.counter("engine.messages", 12);
/// rec.counter("engine.messages", 3);
/// rec.histogram("engine.messages_per_round", 4);
/// let snap = rec.snapshot();
/// assert_eq!(snap.counter("engine.messages"), 15);
/// assert_eq!(snap.histogram("engine.messages_per_round").unwrap().count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    state: Mutex<State>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panicking instrumented job must not take observability down
        // with it; all updates are atomic under the lock.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Clones the current aggregates out.
    pub fn snapshot(&self) -> MemorySnapshot {
        let s = self.lock();
        MemorySnapshot {
            counters: s.counters.clone(),
            histograms: s.histograms.clone(),
            spans: s.spans.clone(),
        }
    }

    /// Drops all aggregates (open span stacks survive).
    pub fn reset(&self) {
        let mut s = self.lock();
        s.counters.clear();
        s.histograms.clear();
        s.spans.clear();
    }
}

impl Recorder for MemoryRecorder {
    fn span_open(&self, name: &str) {
        let mut s = self.lock();
        s.stacks.entry(std::thread::current().id()).or_default().push(name.to_string());
    }

    fn span_close(&self, name: &str, wall: Duration) {
        let mut s = self.lock();
        let stack = s.stacks.entry(std::thread::current().id()).or_default();
        // Tolerate a mismatched close (a span guard moved across threads):
        // fall back to the bare name rather than corrupting the stack.
        let path = if stack.last().map(String::as_str) == Some(name) {
            let joined = stack.join("/");
            stack.pop();
            joined
        } else {
            name.to_string()
        };
        let stat = s.spans.entry(path).or_default();
        stat.count += 1;
        stat.total += wall;
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut s = self.lock();
        *s.counters.entry(name.to_string()).or_default() += delta;
    }

    fn histogram(&self, name: &str, value: u64) {
        let mut s = self.lock();
        s.histograms.entry(name.to_string()).or_default().record(value);
    }
}

/// A point-in-time clone of a [`MemoryRecorder`]'s aggregates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

impl MemorySnapshot {
    /// The value of a counter (`0` if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The aggregate of one exact span path (e.g. `pipeline/coloring`).
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// All span aggregates, sorted by path.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStat)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums every span path whose **leaf** name is `leaf`, across parents
    /// (a `views` span shows up under `pipeline/derandomize/views` and
    /// `derandomize/views` alike).
    pub fn span_total(&self, leaf: &str) -> SpanStat {
        let mut out = SpanStat::default();
        for (path, stat) in &self.spans {
            if path.rsplit('/').next() == Some(leaf) {
                out.count += stat.count;
                out.total += stat.total;
            }
        }
        out
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Multi-line human-readable rendering (spans, counters, histograms).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.spans {
            let _ = writeln!(out, "span      {path:<40} x{:<6} {:.3?}", stat.count, stat.total);
        }
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name:<40} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name:<40} n={} min={} mean={:.2} max={}",
                h.count(),
                h.min().unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.max().unwrap_or(0),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn spans_nest_into_paths() {
        let rec = MemoryRecorder::new();
        {
            let _a = Span::new(&rec, "pipeline");
            {
                let _b = Span::new(&rec, "coloring");
            }
            {
                let _c = Span::new(&rec, "derandomize");
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.span("pipeline").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/coloring").unwrap().count, 1);
        assert_eq!(snap.span("pipeline/derandomize").unwrap().count, 1);
        assert!(snap.span("coloring").is_none());
        assert_eq!(snap.span_total("coloring").count, 1);
    }

    #[test]
    fn threads_get_independent_stacks() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _outer = Span::new(&rec, "job");
                    let _inner = Span::new(&rec, "work");
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.span("job").unwrap().count, 4);
        assert_eq!(snap.span("job/work").unwrap().count, 4);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let rec = MemoryRecorder::new();
        rec.counter("c", 1);
        rec.counter("c", 2);
        rec.histogram("h", 10);
        rec.histogram("h", 20);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert!(snap.render().contains("counter   c"));
        assert!(!snap.is_empty());
    }

    #[test]
    fn reset_clears_aggregates() {
        let rec = MemoryRecorder::new();
        rec.counter("c", 1);
        rec.reset();
        assert!(rec.snapshot().is_empty());
    }
}
