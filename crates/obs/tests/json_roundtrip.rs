//! Property coverage for the shared JSON layer: arbitrary [`Json`] trees
//! must survive `render → parse` exactly, in both the compact rendering
//! (what the JSONL recorder streams) and the pretty rendering (what the
//! `BENCH_*.json` artifacts use).
//!
//! The vendored proptest drives only integer strategies, so the trees
//! are grown from a seeded ChaCha stream inside the test body — the
//! same idiom as the batch crate's key-invariance properties.

use anonet_obs::Json;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Strings that exercise the escaper: quotes, backslashes, control
/// characters, multi-byte code points, and plain ASCII runs.
fn arbitrary_string(rng: &mut ChaCha8Rng) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '/', 'é', 'λ', '網',
        '🦀', '{', '}', '[', ']', ':', ',',
    ];
    let len = rng.gen_range(0..12);
    (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

/// Numbers the renderer round-trips: integers in the exact-`i64` window
/// and dyadic fractions (both print via `{}` which is shortest-exact).
fn arbitrary_number(rng: &mut ChaCha8Rng) -> f64 {
    match rng.gen_range(0..4u8) {
        0 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
        1 => rng.gen_range(-8_000_000_000_000_000i64..8_000_000_000_000_000) as f64,
        2 => rng.gen_range(-1_000_000i64..1_000_000) as f64 / 64.0,
        _ => f64::from_bits(rng.gen::<u64>() & 0x7fef_ffff_ffff_ffff), // finite by mask
    }
}

fn arbitrary_json(rng: &mut ChaCha8Rng, depth: usize) -> Json {
    let max = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..max as u8) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        2 => Json::Num(arbitrary_number(rng)),
        3 => Json::Str(arbitrary_string(rng)),
        4 => {
            let len = rng.gen_range(0..5);
            Json::Arr((0..len).map(|_| arbitrary_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..5);
            Json::Obj(
                (0..len).map(|_| (arbitrary_string(rng), arbitrary_json(rng, depth - 1))).collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compact rendering parses back to the identical tree.
    #[test]
    fn compact_rendering_round_trips(seed in 0u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let value = arbitrary_json(&mut rng, 3);
        let text = value.to_string();
        let back = Json::parse(&text)
            .map_err(|e| format!("{e} in {text}"))?;
        prop_assert_eq!(&back, &value, "compact text: {}", text);
    }

    /// Pretty rendering parses back to the identical tree, and
    /// re-rendering the parse is a fixed point (canonical artifacts).
    #[test]
    fn pretty_rendering_round_trips_and_is_a_fixed_point(seed in 0u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let value = arbitrary_json(&mut rng, 3);
        let text = value.pretty();
        let back = Json::parse(&text)
            .map_err(|e| format!("{e} in {text}"))?;
        prop_assert_eq!(&back, &value, "pretty text: {}", text);
        prop_assert_eq!(back.pretty(), text, "pretty is canonical");
    }

    /// Every escaped string comes back byte-identical.
    #[test]
    fn strings_survive_escaping(seed in 0u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
        let s = arbitrary_string(&mut rng);
        let rendered = Json::str(s.clone()).to_string();
        let back = Json::parse(&rendered)
            .map_err(|e| format!("{e} in {rendered}"))?;
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }
}

/// Non-finite numbers have no JSON rendering; the serializer writes
/// `null` instead of emitting unparseable text.
#[test]
fn non_finite_numbers_render_as_null() {
    for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let text = Json::Num(x).to_string();
        assert_eq!(text, "null");
        assert_eq!(Json::parse(&text).unwrap(), Json::Null);
    }
}
