//! The batch scheduler: a work-queue driver over [`std::thread::scope`].
//!
//! Jobs are claimed from an atomic cursor by a fixed pool of scoped worker
//! threads; results land in submission-order slots, so the output order is
//! deterministic no matter how the OS schedules workers. A panicking job is
//! isolated by [`std::panic::catch_unwind`]: it fails *its* slot
//! ([`JobResult::Panicked`]) and the rest of the batch proceeds.
//!
//! The simulator itself stays single-threaded: a job runs its synchronous
//! rounds sequentially; only *instances* run concurrently. This is the
//! reconciliation of the batch engine with the DESIGN decision that
//! parallelism inside an execution "would buy noise, not fidelity" —
//! across independent executions it buys throughput and changes nothing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use anonet_obs::{names, noop, Recorder, SharedRecorder, Span};

use crate::cache::CacheStats;

/// The outcome of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobResult<O> {
    /// The job completed.
    Ok(O),
    /// The job returned an error (rendered).
    Failed(String),
    /// The job panicked; the batch survived (payload: panic message).
    Panicked(String),
}

impl<O> JobResult<O> {
    /// The success value, if any.
    pub fn ok(&self) -> Option<&O> {
        match self {
            JobResult::Ok(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for [`JobResult::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobResult::Ok(_))
    }

    /// Unwraps the success value.
    ///
    /// # Panics
    ///
    /// Panics with the failure description if the job did not succeed.
    pub fn unwrap(self) -> O {
        match self {
            JobResult::Ok(o) => o,
            // anonet-lint: allow(panic-hygiene, reason = "documented panicking accessor; callers opt in after checking")
            JobResult::Failed(e) => panic!("job failed: {e}"),
            // anonet-lint: allow(panic-hygiene, reason = "documented panicking accessor; callers opt in after checking")
            JobResult::Panicked(e) => panic!("job panicked: {e}"),
        }
    }
}

/// Aggregate statistics for one batch run.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that returned a value.
    pub succeeded: usize,
    /// Jobs that returned an error.
    pub failed: usize,
    /// Jobs that panicked (isolated).
    pub panicked: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Sum of per-job execution times (= wall on one thread; up to
    /// `threads ×` wall when saturated).
    pub busy: Duration,
    /// Per-job execution times, in submission order.
    pub job_times: Vec<Duration>,
    /// Aggregate per-stage wall times, filled in by drivers that know the
    /// internal structure of their jobs (e.g. `coloring` / `quotient` /
    /// `simulate` for pipeline batches).
    pub stages: Vec<(String, Duration)>,
    /// Cache accounting for the batch window, when a cache was attached:
    /// the difference between the post- and pre-batch snapshots.
    pub cache: Option<CacheStats>,
}

impl BatchStats {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.jobs as f64 / secs
        }
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "batch: {} job(s) on {} thread(s): {} ok, {} failed, {} panicked\n\
             wall {:.3?}, busy {:.3?} (parallel speedup {:.2}x), {:.1} jobs/sec",
            self.jobs,
            self.threads,
            self.succeeded,
            self.failed,
            self.panicked,
            self.wall,
            self.busy,
            self.busy.as_secs_f64() / self.wall.as_secs_f64().max(f64::EPSILON),
            self.jobs_per_sec(),
        );
        for (name, time) in &self.stages {
            out.push_str(&format!("\nstage {name:<20} {time:.3?}"));
        }
        if let Some(cache) = &self.cache {
            out.push('\n');
            out.push_str(&cache.render());
        }
        out
    }
}

/// A finished batch: submission-ordered results plus statistics.
#[derive(Debug)]
pub struct BatchOutcome<O> {
    /// One result per submitted job, in submission order.
    pub results: Vec<JobResult<O>>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

impl<O> BatchOutcome<O> {
    /// Unwraps every result into a `Vec`, in submission order.
    ///
    /// # Panics
    ///
    /// Panics on the first failed or panicked job.
    pub fn unwrap_all(self) -> Vec<O> {
        self.results.into_iter().map(JobResult::unwrap).collect()
    }
}

/// Runs closures over many inputs on a scoped thread pool.
///
/// # Example
///
/// ```
/// use anonet_batch::BatchScheduler;
///
/// let outcome = BatchScheduler::new()
///     .run(&[1u64, 2, 3, 4], |_idx, &x| Ok::<u64, String>(x * x));
/// assert_eq!(outcome.unwrap_all(), vec![1, 4, 9, 16]);
/// ```
#[derive(Clone, Debug)]
pub struct BatchScheduler {
    threads: usize,
    recorder: SharedRecorder,
}

impl Default for BatchScheduler {
    fn default() -> Self {
        BatchScheduler::new()
    }
}

impl BatchScheduler {
    /// A scheduler sized to the machine (`available_parallelism`).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        BatchScheduler { threads, recorder: noop() }
    }

    /// A scheduler with an explicit worker count (≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        BatchScheduler { threads: threads.max(1), recorder: noop() }
    }

    /// Attaches an observability [`Recorder`]: batch runs then report job
    /// counters (`batch.jobs*`), queue-wait and per-job wall-time
    /// histograms, and a `batch_run` span. The default is the no-op
    /// recorder, which costs nothing and changes nothing.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` over every input concurrently. Results come back in
    /// submission order; a panic in one job fails only that job's slot.
    ///
    /// The job closure is wrapped in [`AssertUnwindSafe`]: a panicking job
    /// must leave any state it shares with other jobs consistent (the
    /// [`DerandCache`](crate::DerandCache) does — every update is atomic
    /// under its lock).
    pub fn run<I, O, E, F>(&self, inputs: &[I], job: F) -> BatchOutcome<O>
    where
        I: Sync,
        O: Send,
        E: std::fmt::Display,
        F: Fn(usize, &I) -> Result<O, E> + Sync,
    {
        type Slot<O> = Mutex<Option<(JobResult<O>, Duration)>>;
        let rec: &dyn Recorder = &*self.recorder;
        let observing = rec.is_enabled();
        let batch_span = Span::new(rec, names::SPAN_BATCH_RUN);
        // Workers parent their job spans under the batch span via this
        // Copy + Send context — causality survives the thread hop instead
        // of every worker starting a fresh root.
        let batch_ctx = batch_span.context();
        let started = Instant::now();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Slot<O>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(inputs.len()).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= inputs.len() {
                        break;
                    }
                    // Queue wait: batch start to the moment a worker
                    // claimed this job.
                    let queue_wait_us =
                        if observing { started.elapsed().as_micros() as u64 } else { 0 };
                    if observing {
                        rec.histogram(names::BATCH_QUEUE_WAIT_US, queue_wait_us);
                    }
                    let job_span = Span::child_of(rec, names::SPAN_JOB, batch_ctx);
                    job_span.attr("job", i as u64);
                    job_span.attr("queue_wait_us", queue_wait_us);
                    let t0 = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| job(i, &inputs[i])));
                    let elapsed = t0.elapsed();
                    drop(job_span);
                    if observing {
                        rec.histogram(names::BATCH_JOB_WALL_US, elapsed.as_micros() as u64);
                    }
                    let result = match outcome {
                        Ok(Ok(o)) => JobResult::Ok(o),
                        Ok(Err(e)) => JobResult::Failed(e.to_string()),
                        Err(payload) => JobResult::Panicked(panic_message(payload)),
                    };
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some((result, elapsed));
                });
            }
        });

        let wall = started.elapsed();
        let mut results = Vec::with_capacity(inputs.len());
        let mut job_times = Vec::with_capacity(inputs.len());
        for slot in slots {
            let (result, elapsed) = slot
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                // anonet-lint: allow(panic-hygiene, reason = "scoped-thread invariant: the scope cannot end before every slot is written")
                .expect("every slot is filled before the scope ends");
            results.push(result);
            job_times.push(elapsed);
        }
        let succeeded = results.iter().filter(|r| r.is_ok()).count();
        let failed = results.iter().filter(|r| matches!(r, JobResult::Failed(_))).count();
        let panicked = results.iter().filter(|r| matches!(r, JobResult::Panicked(_))).count();
        if observing {
            rec.counter(names::BATCH_JOBS, inputs.len() as u64);
            rec.counter(names::BATCH_JOBS_OK, succeeded as u64);
            rec.counter(names::BATCH_JOBS_FAILED, failed as u64);
            rec.counter(names::BATCH_JOBS_PANICKED, panicked as u64);
        }
        let busy = job_times.iter().sum();
        let stats = BatchStats {
            jobs: inputs.len(),
            succeeded,
            failed,
            panicked,
            threads: workers,
            wall,
            busy,
            job_times,
            stages: Vec::new(),
            cache: None,
        };
        BatchOutcome { results, stats }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_submission_ordered() {
        let inputs: Vec<usize> = (0..64).collect();
        let outcome = BatchScheduler::with_threads(8).run(&inputs, |idx, &x| {
            assert_eq!(idx, x);
            // Vary the work so completion order scrambles.
            std::thread::sleep(Duration::from_micros(((x * 37) % 5) as u64 * 100));
            Ok::<usize, String>(x * 2)
        });
        assert_eq!(outcome.unwrap_all(), (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let outcome = BatchScheduler::new().run(&[] as &[u8], |_, _| Ok::<u8, String>(0));
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.jobs, 0);
    }

    #[test]
    fn panics_are_isolated() {
        let inputs: Vec<usize> = (0..10).collect();
        let outcome = BatchScheduler::with_threads(4).run(&inputs, |_, &x| {
            if x == 3 {
                panic!("poisoned instance {x}");
            }
            Ok::<usize, String>(x)
        });
        assert_eq!(outcome.stats.succeeded, 9);
        assert_eq!(outcome.stats.panicked, 1);
        match &outcome.results[3] {
            JobResult::Panicked(msg) => assert!(msg.contains("poisoned instance 3")),
            other => panic!("expected a panic slot, got {other:?}"),
        }
        // Every other slot holds its own value.
        for (i, r) in outcome.results.iter().enumerate() {
            if i != 3 {
                assert_eq!(r.ok(), Some(&i));
            }
        }
    }

    #[test]
    fn errors_are_reported_per_job() {
        let inputs = [1i32, -1, 2, -2];
        let outcome = BatchScheduler::with_threads(2).run(&inputs, |_, &x| {
            if x < 0 {
                Err(format!("negative: {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(outcome.stats.succeeded, 2);
        assert_eq!(outcome.stats.failed, 2);
        assert_eq!(outcome.results[1], JobResult::Failed("negative: -1".into()));
    }

    #[test]
    fn stats_account_every_job() {
        let inputs: Vec<u32> = (0..17).collect();
        let outcome = BatchScheduler::with_threads(3).run(&inputs, |_, &x| Ok::<u32, String>(x));
        let s = &outcome.stats;
        assert_eq!(s.jobs, 17);
        assert_eq!(s.succeeded, 17);
        assert_eq!(s.job_times.len(), 17);
        assert_eq!(s.threads, 3);
        assert!(s.busy <= s.wall * 3 + Duration::from_millis(50));
        assert!(s.jobs_per_sec() > 0.0);
        assert!(s.render().contains("17 job(s)"));
    }

    #[test]
    fn ordering_and_isolation_hold_across_thread_counts() {
        // The same mixed batch — successes, errors, panics — must produce
        // the *identical* submission-ordered outcome on 1, 2, and 8
        // workers: thread count is a throughput knob, never a semantics
        // knob.
        let inputs: Vec<usize> = (0..32).collect();
        let job = |idx: usize, &x: &usize| {
            assert_eq!(idx, x);
            // Scramble completion order so slot order is actually tested.
            std::thread::sleep(Duration::from_micros(((x * 13) % 7) as u64 * 50));
            match x % 5 {
                3 => panic!("boom at {x}"),
                4 => Err(format!("error at {x}")),
                _ => Ok(x * x),
            }
        };
        let reference: Vec<JobResult<usize>> = inputs
            .iter()
            .map(|&x| match x % 5 {
                3 => JobResult::Panicked(format!("boom at {x}")),
                4 => JobResult::Failed(format!("error at {x}")),
                _ => JobResult::Ok(x * x),
            })
            .collect();
        for threads in [1usize, 2, 8] {
            let outcome = BatchScheduler::with_threads(threads).run(&inputs, job);
            assert_eq!(outcome.results, reference, "divergence at {threads} thread(s)");
            assert_eq!(outcome.stats.threads, threads.min(inputs.len()));
            assert_eq!(outcome.stats.succeeded, 20);
            assert_eq!(outcome.stats.failed, 6);
            assert_eq!(outcome.stats.panicked, 6);
        }
    }

    #[test]
    fn recorder_sees_jobs_and_waits() {
        use std::sync::Arc;
        let rec = Arc::new(anonet_obs::MemoryRecorder::new());
        let inputs: Vec<usize> = (0..6).collect();
        let outcome = BatchScheduler::with_threads(2)
            .with_recorder(rec.clone())
            .run(&inputs, |_, &x| if x == 5 { Err("no") } else { Ok(x) });
        assert_eq!(outcome.stats.succeeded, 5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(names::BATCH_JOBS), 6);
        assert_eq!(snap.counter(names::BATCH_JOBS_OK), 5);
        assert_eq!(snap.counter(names::BATCH_JOBS_FAILED), 1);
        assert_eq!(snap.counter(names::BATCH_JOBS_PANICKED), 0);
        assert_eq!(snap.histogram(names::BATCH_QUEUE_WAIT_US).unwrap().count(), 6);
        assert_eq!(snap.histogram(names::BATCH_JOB_WALL_US).unwrap().count(), 6);
        assert_eq!(snap.span(names::SPAN_BATCH_RUN).unwrap().count, 1);
        assert_eq!(snap.span_total(names::SPAN_JOB).count, 6);
        // Causal parenting: every worker-executed job span nests under
        // the submitting batch span — no fresh per-thread roots.
        assert_eq!(snap.span("batch_run/job").unwrap().count, 6);
        assert!(snap.span("job").is_none(), "orphan job roots");
    }

    #[test]
    fn job_spans_stay_parented_under_an_outer_span() {
        use std::sync::Arc;
        let rec = Arc::new(anonet_obs::MemoryRecorder::new());
        let inputs: Vec<usize> = (0..4).collect();
        {
            let _outer = anonet_obs::Span::new(&*rec, "soak_cell");
            BatchScheduler::with_threads(4)
                .with_recorder(rec.clone())
                .run(&inputs, |_, &x| Ok::<usize, String>(x));
        }
        let snap = rec.snapshot();
        // The whole chain survives two hops: outer (caller thread) →
        // batch_run (same thread) → job (worker threads).
        assert_eq!(snap.span("soak_cell/batch_run/job").unwrap().count, 4);
    }

    #[test]
    fn more_threads_than_jobs_is_capped() {
        let outcome = BatchScheduler::with_threads(64).run(&[1u8, 2], |_, &x| Ok::<u8, String>(x));
        assert_eq!(outcome.stats.threads, 2);
    }
}
