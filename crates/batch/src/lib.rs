//! # anonet-batch
//!
//! Concurrent batch execution for the Theorem-1 pipeline, built on the
//! observation (paper, Lemma 3) that *every lift of the same base graph has
//! the same unique prime factor*: the entire quotient-side computation of
//! the derandomizer — the canonical order on `V_*` and the minimal
//! successful bit assignment — is a function of `G_*` alone, so whole
//! experiment sweeps over lift families redo identical work.
//!
//! Three cooperating parts:
//!
//! * [`DerandCache`] — a thread-safe, content-addressed store keyed by the
//!   canonical byte encoding `s(G_*)` of the quotient (and, for assignment
//!   entries, by `(problem-id, s(G_*))`). A cache hit replaces the whole
//!   canonical-assignment search with a single tape replay.
//! * [`PersistentDerandCache`] — the same cache layered over the
//!   crash-safe on-disk tier from `anonet-store` via the [`CacheBackend`]
//!   trait: memory misses fall through to disk, fresh results write
//!   through, and [`PersistentDerandCache::warm`] preloads a new process
//!   from a previous run's state, so hit rates compound across restarts.
//! * [`BatchScheduler`] — a work-queue driver over [`std::thread::scope`]
//!   (no dependencies beyond `std`, per the DESIGN dependency policy) that
//!   runs many instances concurrently with deterministic,
//!   submission-ordered results, a [`BatchStats`] report, and per-job panic
//!   isolation.
//!
//! Rounds stay strictly sequential *within* an instance — the simulator
//! remains single-threaded by design (reproducibility). Parallelism is
//! only across instances, where executions are independent by
//! construction.
//!
//! `anonet-core` wires the cache into `Derandomizer` / `run_pipeline`, and
//! `anonet-bench`'s `report batch` experiment measures the effect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod persist;
pub mod scheduler;
pub mod views_par;

pub use cache::{
    instance_key, quotient_key, CacheStats, CachedAssignment, CounterRegression, DerandCache,
};
pub use persist::{CacheBackend, PersistentDerandCache, StoreBackend, WarmEntry};
pub use scheduler::{BatchOutcome, BatchScheduler, BatchStats, JobResult};
pub use views_par::{parallel_canonical_encodings, parallel_stable_partition};
