//! The content-addressed derandomization cache.
//!
//! The address of every entry is the canonical byte encoding `s(G_*)` of a
//! finite view graph (paper, Section 3.1): the quotient is encoded under
//! its canonical node order, so the key is **isomorphism-invariant** — two
//! 2-hop colored instances whose quotients are isomorphic as labeled
//! graphs produce the *same* key, and therefore share entries. By Lemma 3
//! that covers every pair of lifts of a common base.
//!
//! Two tables:
//!
//! * **quotient entries**, keyed by `s(G_*)`: the content-addressed record
//!   of a derandomized core. The key bytes *are* the serialized `G_*`
//!   (node count, labels, adjacency under the canonical order), so holding
//!   the key holds the graph and its canonical total order; the entry adds
//!   the refinement-partition shape observed at insertion (`|V_*|`, fiber
//!   multiplicity) and hit/byte accounting.
//! * **assignment entries**, keyed by `(problem-id, s(G_*))`: the minimal
//!   successful [`BitAssignment`] of the canonical simulation, with tapes
//!   stored **by canonical position** (index `p` holds the tape of the
//!   `p`-th node in the canonical order on `V_*`) so they transfer to any
//!   isomorphic presentation of the quotient, plus the attempt count and
//!   simulation length needed to reproduce the full derandomizer metadata
//!   on a hit.
//!
//! The store is a [`Mutex`]-guarded pair of hash maps. Lock poisoning is
//! deliberately ignored (`into_inner` on poison): a panicking job in a
//! batch must not take the cache down with it, and every value is updated
//! atomically under the lock, so a poisoned state is still consistent.
//!
//! Optionally, a [`CacheBackend`] (see [`crate::persist`]) sits beneath
//! the tables as a durable second tier: memory misses fall through to it
//! (outside the lock), disk hits are promoted into memory, and fresh
//! inserts write through. Backend failures never fail a lookup — they
//! count as [`CacheStats::disk_errors`] and the cache runs memory-only.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use anonet_graph::BitString;
use anonet_graph::{Label, LabeledGraph};
use anonet_store::StoreError;
use anonet_views::{canonical_encoding, quotient, ViewMode};

use crate::persist::{CacheBackend, WarmEntry};

/// The canonical content address `s(G_*)` of a prime labeled graph (a view
/// quotient). Isomorphism-invariant: equal for isomorphic quotients.
///
/// # Errors
///
/// Propagates [`anonet_views::ViewError::NotDiscrete`] if `q` has repeated
/// views (i.e. is not actually a quotient / prime graph).
pub fn quotient_key<L: Label>(q: &LabeledGraph<L>) -> anonet_views::Result<Vec<u8>> {
    canonical_encoding(q, ViewMode::Portless)
}

/// The content address of a 2-hop colored **instance**: the key of its
/// quotient, `s(G_*)`. Two instances share a key iff their quotients are
/// isomorphic — in particular, all lifts of a common base share one key.
///
/// # Errors
///
/// Propagates quotient-construction errors if `g` is not 2-hop colored.
pub fn instance_key<L: Label>(g: &LabeledGraph<L>) -> anonet_views::Result<Vec<u8>> {
    quotient_key(quotient(g, ViewMode::Portless)?.graph())
}

/// A cached canonical simulation, returned by
/// [`DerandCache::lookup_assignment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedAssignment {
    /// Tapes by canonical position: `tapes[p]` is the tape of the node at
    /// position `p` in the canonical order on `V_*`.
    pub tapes: Vec<BitString>,
    /// Simulations attempted when the entry was first computed.
    pub attempts: usize,
    /// Rounds of the successful canonical simulation.
    pub simulation_rounds: usize,
}

/// Approximate resident size of one assignment entry.
fn assignment_bytes(problem: &str, key: &[u8], cached: &CachedAssignment) -> usize {
    key.len()
        + problem.len()
        + cached.tapes.iter().map(|tape| tape.len().div_ceil(8)).sum::<usize>()
}

#[derive(Debug)]
struct QuotientEntry {
    nodes: usize,
    multiplicity: usize,
    bytes: usize,
    hits: u64,
    last_use: u64,
}

#[derive(Debug)]
struct AssignmentEntry {
    cached: CachedAssignment,
    bytes: usize,
    hits: u64,
    last_use: u64,
}

#[derive(Debug, Default)]
struct Tables {
    quotients: HashMap<Vec<u8>, QuotientEntry>,
    assignments: HashMap<(String, Vec<u8>), AssignmentEntry>,
    quotient_hits: u64,
    quotient_misses: u64,
    assignment_hits: u64,
    assignment_misses: u64,
    evictions: u64,
    disk_hits: u64,
    disk_misses: u64,
    disk_errors: u64,
    clock: u64,
}

/// A point-in-time snapshot of cache accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct quotients recorded.
    pub quotient_entries: usize,
    /// Distinct `(problem, quotient)` assignments stored.
    pub assignment_entries: usize,
    /// Quotient-table hits (an already-known `s(G_*)` was recorded again).
    pub quotient_hits: u64,
    /// Quotient-table misses (a new `s(G_*)` was recorded).
    pub quotient_misses: u64,
    /// Assignment lookups that found an entry.
    pub assignment_hits: u64,
    /// Assignment lookups that found nothing.
    pub assignment_misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Approximate resident payload size in bytes (keys + tapes).
    pub bytes: usize,
    /// Assignment lookups answered by the persistent tier (each also
    /// counts in [`assignment_hits`](CacheStats::assignment_hits); memory
    /// hits are `assignment_hits - disk_hits`).
    pub disk_hits: u64,
    /// Memory misses the persistent tier also missed.
    pub disk_misses: u64,
    /// Backend calls that failed; the cache degraded to memory-only for
    /// that operation.
    pub disk_errors: u64,
}

impl CacheStats {
    /// Assignment-level hit rate in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.assignment_hits + self.assignment_misses;
        if total == 0 {
            0.0
        } else {
            self.assignment_hits as f64 / total as f64
        }
    }

    /// The accounting for a window that started at snapshot `before`:
    /// cumulative counters (hits, misses, evictions) are differenced,
    /// resident state (entries, bytes) keeps this snapshot's values.
    ///
    /// # Errors
    ///
    /// [`CounterRegression`] if any cumulative counter in `before` exceeds
    /// this snapshot's value. Cumulative counters are monotone within one
    /// cache lifetime, so a backwards counter means `before` belongs to a
    /// different (stale) lifecycle and the window delta is meaningless.
    pub fn delta_from(&self, before: &CacheStats) -> Result<CacheStats, CounterRegression> {
        fn window(
            counter: &'static str,
            after: u64,
            before: u64,
        ) -> Result<u64, CounterRegression> {
            after.checked_sub(before).ok_or(CounterRegression { counter, before, after })
        }
        Ok(CacheStats {
            quotient_entries: self.quotient_entries,
            assignment_entries: self.assignment_entries,
            bytes: self.bytes,
            quotient_hits: window("quotient_hits", self.quotient_hits, before.quotient_hits)?,
            quotient_misses: window(
                "quotient_misses",
                self.quotient_misses,
                before.quotient_misses,
            )?,
            assignment_hits: window(
                "assignment_hits",
                self.assignment_hits,
                before.assignment_hits,
            )?,
            assignment_misses: window(
                "assignment_misses",
                self.assignment_misses,
                before.assignment_misses,
            )?,
            evictions: window("evictions", self.evictions, before.evictions)?,
            disk_hits: window("disk_hits", self.disk_hits, before.disk_hits)?,
            disk_misses: window("disk_misses", self.disk_misses, before.disk_misses)?,
            disk_errors: window("disk_errors", self.disk_errors, before.disk_errors)?,
        })
    }

    /// One-line rendering for reports.
    pub fn render(&self) -> String {
        let disk = if self.disk_hits + self.disk_misses + self.disk_errors > 0 {
            format!(
                "; disk hits {} / memory hits {} / disk misses {}, {} disk error(s)",
                self.disk_hits,
                self.assignment_hits - self.disk_hits,
                self.disk_misses,
                self.disk_errors,
            )
        } else {
            String::new()
        };
        format!(
            "cache: {} quotient(s), {} assignment(s), {} B; \
             assignment hits {} / misses {} (hit rate {:.1}%), \
             quotient hits {} / misses {}, {} eviction(s){disk}",
            self.quotient_entries,
            self.assignment_entries,
            self.bytes,
            self.assignment_hits,
            self.assignment_misses,
            100.0 * self.hit_rate(),
            self.quotient_hits,
            self.quotient_misses,
            self.evictions,
        )
    }
}

/// A cumulative counter moved backwards between the `before` snapshot and
/// the current one — the snapshots come from different cache lifecycles
/// (e.g. a baseline taken before the cache was reopened), so no window
/// delta exists. Returned by [`CacheStats::delta_from`] instead of a
/// silently wrapped or saturated difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterRegression {
    /// Name of the offending counter field.
    pub counter: &'static str,
    /// The counter's value in the `before` snapshot.
    pub before: u64,
    /// The counter's (smaller) value in the current snapshot.
    pub after: u64,
}

impl fmt::Display for CounterRegression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache counter {} went backwards ({} -> {}): stale baseline snapshot",
            self.counter, self.before, self.after
        )
    }
}

impl std::error::Error for CounterRegression {}

/// Thread-safe, content-addressed store for derandomization artifacts.
///
/// Shared by wrapping in [`std::sync::Arc`]; every method takes `&self`.
///
/// # Example
///
/// ```
/// use anonet_batch::DerandCache;
/// use anonet_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cache = DerandCache::new();
/// // All lifts of the colored C3 share one content address.
/// let c3 = generators::cycle(3)?.with_labels(vec![1u32, 2, 3])?;
/// let c12 = generators::cycle(12)?
///     .with_labels(vec![1u32, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3])?;
/// assert_eq!(anonet_batch::instance_key(&c3)?, anonet_batch::instance_key(&c12)?);
/// cache.record_quotient(&anonet_batch::instance_key(&c3)?, 3, 1);
/// cache.record_quotient(&anonet_batch::instance_key(&c12)?, 3, 4);
/// assert_eq!(cache.stats().quotient_entries, 1);
/// assert_eq!(cache.stats().quotient_hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DerandCache {
    tables: Mutex<Tables>,
    max_entries: Option<usize>,
    backend: Option<Arc<dyn CacheBackend>>,
}

impl DerandCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        DerandCache::default()
    }

    /// A cache evicting least-recently-used entries beyond `max_entries`
    /// (counted across both tables).
    pub fn with_capacity(max_entries: usize) -> Self {
        DerandCache { max_entries: Some(max_entries), ..DerandCache::default() }
    }

    /// Layers a durable [`CacheBackend`] beneath the memory tables (see
    /// [`crate::PersistentDerandCache`] for the batteries-included
    /// bundle). Capacity eviction only drops the memory copy — the disk
    /// tier keeps evicted entries.
    pub fn with_backend(mut self, backend: Arc<dyn CacheBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// `true` if a persistent tier is attached.
    pub fn has_backend(&self) -> bool {
        self.backend.is_some()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Tables> {
        // A job that panicked mid-batch must not poison the whole cache;
        // all updates are atomic under the lock, so the state is sound.
        self.tables.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Records that a quotient with address `key` (holding `nodes` quotient
    /// nodes, observed at fiber multiplicity `multiplicity`) was seen.
    /// Returns `true` if this was the first sighting.
    ///
    /// With a backend attached, first sightings and multiplicity
    /// increases write through (outside the lock; latest write wins on
    /// disk, so the stored multiplicity is the running maximum).
    pub fn record_quotient(&self, key: &[u8], nodes: usize, multiplicity: usize) -> bool {
        let (first, write_multiplicity) = {
            let mut t = self.lock();
            t.clock += 1;
            let now = t.clock;
            if let Some(entry) = t.quotients.get_mut(key) {
                entry.hits += 1;
                entry.last_use = now;
                let grew = multiplicity > entry.multiplicity;
                entry.multiplicity = entry.multiplicity.max(multiplicity);
                let max = entry.multiplicity;
                t.quotient_hits += 1;
                (false, grew.then_some(max))
            } else {
                t.quotients.insert(
                    key.to_vec(),
                    QuotientEntry { nodes, multiplicity, bytes: key.len(), hits: 0, last_use: now },
                );
                t.quotient_misses += 1;
                self.enforce_capacity(&mut t);
                (true, Some(multiplicity))
            }
        };
        if let (Some(m), Some(backend)) = (write_multiplicity, &self.backend) {
            if backend.record_quotient(key, nodes, m).is_err() {
                self.lock().disk_errors += 1;
            }
        }
        first
    }

    /// Looks up the canonical simulation for `problem` on the quotient
    /// addressed by `key`. Clones the entry out so the lock is held only
    /// briefly.
    ///
    /// Memory answers first; with a backend attached, a memory miss falls
    /// through to the disk tier (outside the lock), and a disk hit is
    /// promoted into memory so it pays the read once per process. A
    /// backend error counts as a miss plus a
    /// [`disk_errors`](CacheStats::disk_errors) tick — persistence never
    /// fails a lookup.
    pub fn lookup_assignment(&self, problem: &str, key: &[u8]) -> Option<CachedAssignment> {
        {
            let mut t = self.lock();
            t.clock += 1;
            let now = t.clock;
            // Avoid allocating the owned key pair on the miss path is not
            // worth the contortions; lookups are rare relative to
            // simulations.
            let k = (problem.to_string(), key.to_vec());
            if let Some(entry) = t.assignments.get_mut(&k) {
                entry.hits += 1;
                entry.last_use = now;
                let cached = entry.cached.clone();
                t.assignment_hits += 1;
                return Some(cached);
            }
            if self.backend.is_none() {
                t.assignment_misses += 1;
                return None;
            }
        }
        let backend = self.backend.as_ref()?;
        match backend.load_assignment(problem, key) {
            Ok(Some(cached)) => {
                let mut t = self.lock();
                t.clock += 1;
                let now = t.clock;
                t.assignment_hits += 1;
                t.disk_hits += 1;
                let bytes = assignment_bytes(problem, key, &cached);
                // or_insert: a concurrent promoter/inserter may have won.
                t.assignments.entry((problem.to_string(), key.to_vec())).or_insert(
                    AssignmentEntry { cached: cached.clone(), bytes, hits: 0, last_use: now },
                );
                self.enforce_capacity(&mut t);
                Some(cached)
            }
            Ok(None) => {
                let mut t = self.lock();
                t.assignment_misses += 1;
                t.disk_misses += 1;
                None
            }
            Err(_) => {
                let mut t = self.lock();
                t.assignment_misses += 1;
                t.disk_errors += 1;
                None
            }
        }
    }

    /// Stores the canonical simulation for `problem` on the quotient
    /// addressed by `key`. Tapes must be in canonical-position order. First
    /// write wins: concurrent inserts of the same key keep the existing
    /// entry (both compute the same canonical object, so this only
    /// stabilizes the per-entry hit counters). A fresh insert writes
    /// through to the backend, if one is attached.
    pub fn insert_assignment(&self, problem: &str, key: &[u8], cached: CachedAssignment) {
        let bytes = assignment_bytes(problem, key, &cached);
        let fresh = {
            let mut t = self.lock();
            t.clock += 1;
            let now = t.clock;
            let mut fresh = false;
            t.assignments.entry((problem.to_string(), key.to_vec())).or_insert_with(|| {
                fresh = true;
                AssignmentEntry { cached: cached.clone(), bytes, hits: 0, last_use: now }
            });
            self.enforce_capacity(&mut t);
            fresh
        };
        if fresh {
            if let Some(backend) = &self.backend {
                if backend.store_assignment(problem, key, &cached).is_err() {
                    self.lock().disk_errors += 1;
                }
            }
        }
    }

    /// Preloads up to `limit` entries from the backend into the memory
    /// tables (no-op without a backend). Hit/miss counters are untouched;
    /// already-resident entries keep their memory copy. Returns the
    /// number of entries loaded.
    ///
    /// # Errors
    ///
    /// Backend read errors (entries decoded before the failure stay
    /// loaded).
    pub fn warm(&self, limit: usize) -> Result<usize, StoreError> {
        let Some(backend) = &self.backend else { return Ok(0) };
        let entries = backend.warm(limit)?;
        let mut t = self.lock();
        let mut loaded = 0;
        for entry in entries {
            t.clock += 1;
            let now = t.clock;
            match entry {
                WarmEntry::Quotient { key, nodes, multiplicity } => {
                    let bytes = key.len();
                    t.quotients.entry(key).or_insert_with(|| {
                        loaded += 1;
                        QuotientEntry { nodes, multiplicity, bytes, hits: 0, last_use: now }
                    });
                }
                WarmEntry::Assignment { problem, key, cached } => {
                    let bytes = assignment_bytes(&problem, &key, &cached);
                    t.assignments.entry((problem, key)).or_insert_with(|| {
                        loaded += 1;
                        AssignmentEntry { cached, bytes, hits: 0, last_use: now }
                    });
                }
            }
        }
        self.enforce_capacity(&mut t);
        Ok(loaded)
    }

    /// Flushes the backend, if one is attached.
    ///
    /// # Errors
    ///
    /// Backend I/O.
    pub fn flush(&self) -> Result<(), StoreError> {
        match &self.backend {
            Some(backend) => backend.flush(),
            None => Ok(()),
        }
    }

    /// Drops everything, keeping cumulative hit/miss counters.
    pub fn clear(&self) {
        let mut t = self.lock();
        t.quotients.clear();
        t.assignments.clear();
    }

    /// Total entries across both tables.
    pub fn len(&self) -> usize {
        let t = self.lock();
        t.quotients.len() + t.assignments.len()
    }

    /// `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the accounting counters.
    pub fn stats(&self) -> CacheStats {
        let t = self.lock();
        CacheStats {
            quotient_entries: t.quotients.len(),
            assignment_entries: t.assignments.len(),
            quotient_hits: t.quotient_hits,
            quotient_misses: t.quotient_misses,
            assignment_hits: t.assignment_hits,
            assignment_misses: t.assignment_misses,
            evictions: t.evictions,
            disk_hits: t.disk_hits,
            disk_misses: t.disk_misses,
            disk_errors: t.disk_errors,
            bytes: t.quotients.values().map(|e| e.bytes).sum::<usize>()
                + t.assignments.values().map(|e| e.bytes).sum::<usize>(),
        }
    }

    /// Per-entry accounting for the quotient table: `(s(G_*) key, |V_*|,
    /// max observed multiplicity, hits, bytes)`, sorted by key for
    /// deterministic output.
    pub fn quotient_accounting(&self) -> Vec<(Vec<u8>, usize, usize, u64, usize)> {
        let t = self.lock();
        let mut rows: Vec<_> = t
            .quotients
            .iter()
            .map(|(k, e)| (k.clone(), e.nodes, e.multiplicity, e.hits, e.bytes))
            .collect();
        rows.sort();
        rows
    }

    /// Per-entry accounting for the assignment table: `(problem, s(G_*)
    /// key, hits, bytes)`, sorted for deterministic output.
    pub fn assignment_accounting(&self) -> Vec<(String, Vec<u8>, u64, usize)> {
        let t = self.lock();
        let mut rows: Vec<_> = t
            .assignments
            .iter()
            .map(|((p, k), e)| (p.clone(), k.clone(), e.hits, e.bytes))
            .collect();
        rows.sort();
        rows
    }

    fn enforce_capacity(&self, t: &mut Tables) {
        let Some(max) = self.max_entries else { return };
        while t.quotients.len() + t.assignments.len() > max {
            let oldest_q = t.quotients.iter().min_by_key(|(_, e)| e.last_use);
            let oldest_a = t.assignments.iter().min_by_key(|(_, e)| e.last_use);
            match (oldest_q, oldest_a) {
                (Some((qk, qe)), Some((_, ae))) if qe.last_use <= ae.last_use => {
                    let qk = qk.clone();
                    t.quotients.remove(&qk);
                }
                (_, Some((ak, _))) => {
                    let ak = ak.clone();
                    t.assignments.remove(&ak);
                }
                (Some((qk, _)), None) => {
                    let qk = qk.clone();
                    t.quotients.remove(&qk);
                }
                (None, None) => return,
            }
            t.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn colored_cycle(n: usize) -> LabeledGraph<u32> {
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    fn tape(bits: &str) -> BitString {
        bits.parse().unwrap()
    }

    #[test]
    fn lifts_share_an_address() {
        let keys: Vec<Vec<u8>> =
            [3usize, 6, 9, 12].iter().map(|&n| instance_key(&colored_cycle(n)).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn different_bases_have_different_addresses() {
        let c3 = instance_key(&colored_cycle(3)).unwrap();
        let c4 =
            instance_key(&generators::cycle(4).unwrap().with_labels(vec![1u32, 2, 3, 4]).unwrap())
                .unwrap();
        assert_ne!(c3, c4);
    }

    #[test]
    fn assignment_roundtrip_and_accounting() {
        let cache = DerandCache::new();
        let key = instance_key(&colored_cycle(6)).unwrap();
        assert_eq!(cache.lookup_assignment("mis", &key), None);
        let cached = CachedAssignment {
            tapes: vec![tape("101"), tape("011"), tape("000")],
            attempts: 7,
            simulation_rounds: 4,
        };
        cache.insert_assignment("mis", &key, cached.clone());
        assert_eq!(cache.lookup_assignment("mis", &key), Some(cached));
        // Different problem id: separate entry space.
        assert_eq!(cache.lookup_assignment("coloring", &key), None);
        let s = cache.stats();
        assert_eq!(s.assignment_entries, 1);
        assert_eq!(s.assignment_hits, 1);
        assert_eq!(s.assignment_misses, 2);
        assert!(s.bytes > key.len());
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        let rows = cache.assignment_accounting();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "mis");
        assert_eq!(rows[0].2, 1); // one per-entry hit
    }

    #[test]
    fn quotient_recording_deduplicates() {
        let cache = DerandCache::new();
        let k3 = instance_key(&colored_cycle(3)).unwrap();
        assert!(cache.record_quotient(&k3, 3, 1));
        assert!(!cache.record_quotient(&k3, 3, 4));
        assert!(!cache.record_quotient(&k3, 3, 2));
        let s = cache.stats();
        assert_eq!(s.quotient_entries, 1);
        assert_eq!(s.quotient_hits, 2);
        assert_eq!(s.quotient_misses, 1);
        let rows = cache.quotient_accounting();
        assert_eq!(rows[0].1, 3); // |V_*|
        assert_eq!(rows[0].2, 4); // max multiplicity observed
        assert_eq!(rows[0].3, 2); // hits
    }

    #[test]
    fn first_insert_wins() {
        let cache = DerandCache::new();
        let key = instance_key(&colored_cycle(3)).unwrap();
        let first = CachedAssignment { tapes: vec![tape("1")], attempts: 1, simulation_rounds: 1 };
        let second = CachedAssignment { tapes: vec![tape("0")], attempts: 9, simulation_rounds: 9 };
        cache.insert_assignment("p", &key, first.clone());
        cache.insert_assignment("p", &key, second);
        assert_eq!(cache.lookup_assignment("p", &key), Some(first));
    }

    #[test]
    fn capacity_evicts_lru() {
        let cache = DerandCache::with_capacity(2);
        let a = CachedAssignment { tapes: vec![tape("1")], attempts: 1, simulation_rounds: 1 };
        cache.insert_assignment("p", b"k1", a.clone());
        cache.insert_assignment("p", b"k2", a.clone());
        // Touch k1 so k2 is the LRU entry.
        assert!(cache.lookup_assignment("p", b"k1").is_some());
        cache.insert_assignment("p", b"k3", a.clone());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup_assignment("p", b"k2").is_none());
        assert!(cache.lookup_assignment("p", b"k1").is_some());
        assert!(cache.lookup_assignment("p", b"k3").is_some());
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = DerandCache::new();
        let a = CachedAssignment { tapes: vec![tape("1")], attempts: 1, simulation_rounds: 1 };
        cache.insert_assignment("p", b"k", a);
        assert!(cache.lookup_assignment("p", b"k").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().assignment_hits, 1);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        use std::sync::Arc;
        let cache = Arc::new(DerandCache::new());
        let key = instance_key(&colored_cycle(12)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                let key = key.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        cache.record_quotient(&key, 3, t + 1);
                        if cache.lookup_assignment("mis", &key).is_none() {
                            cache.insert_assignment(
                                "mis",
                                &key,
                                CachedAssignment {
                                    tapes: vec![tape("101"), tape("011"), tape("000")],
                                    attempts: 3,
                                    simulation_rounds: i + 1,
                                },
                            );
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.quotient_entries, 1);
        assert_eq!(s.assignment_entries, 1);
        assert_eq!(s.quotient_hits + s.quotient_misses, 400);
        // Whoever inserted first won; the entry is internally consistent.
        let got = cache.lookup_assignment("mis", &key).unwrap();
        assert_eq!(got.tapes.len(), 3);
        assert_eq!(got.attempts, 3);
    }

    #[test]
    fn delta_from_rejects_backwards_counters() {
        let after =
            CacheStats { assignment_hits: 5, assignment_misses: 2, ..CacheStats::default() };
        // A snapshot from a previous cache lifecycle.
        let stale = CacheStats { assignment_hits: 9, ..CacheStats::default() };
        let err = after.delta_from(&stale).unwrap_err();
        assert_eq!(err.counter, "assignment_hits");
        assert_eq!(err.before, 9);
        assert_eq!(err.after, 5);
        assert!(err.to_string().contains("assignment_hits"));
        assert!(err.to_string().contains("stale"));

        // The monotone window still diffs cleanly.
        let before =
            CacheStats { assignment_hits: 2, assignment_misses: 1, ..CacheStats::default() };
        let delta = after.delta_from(&before).unwrap();
        assert_eq!(delta.assignment_hits, 3);
        assert_eq!(delta.assignment_misses, 1);
        // Identity window: every cumulative counter is zero.
        let zero = after.delta_from(&after).unwrap();
        assert_eq!(zero.assignment_hits, 0);
        assert_eq!(zero.assignment_misses, 0);
        assert_eq!(zero.evictions, 0);
    }
}
