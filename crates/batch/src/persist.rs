//! Persistence for the derandomization cache: the [`CacheBackend`]
//! trait, its `anonet-store` implementation, and the
//! [`PersistentDerandCache`] bundle that batch runs and pipelines plug
//! in wherever an `Arc<DerandCache>` goes today.
//!
//! The layering is strictly memory-first: [`DerandCache`] answers every
//! lookup it can from its tables, and only on a memory miss consults the
//! backend (outside the cache lock — the store shards have their own
//! locks). A disk hit is promoted into memory, so a key pays the disk
//! read once per process; fresh inserts write through, so the disk tier
//! only ever grows (first write wins on both tiers — every writer
//! computes the same canonical object). Backend *errors* degrade
//! gracefully: the lookup is simply a miss, counted in
//! [`CacheStats::disk_errors`](crate::CacheStats), and the run proceeds
//! memory-only — persistence must never turn a working pipeline into a
//! failing one.
//!
//! On-disk layout (two namespaces in one store):
//!
//! * namespace 0 — quotient records: key `s(G_*)`, value
//!   `nodes:u64le multiplicity:u64le`.
//! * namespace 1 — assignment records: key
//!   `s(G_*) problem_bytes qkey_len:u32le` (self-delimiting from the
//!   end; the first byte stays the quotient's, so both namespaces of one
//!   quotient share a shard), value = the serialized
//!   [`CachedAssignment`].

use std::path::Path;
use std::sync::Arc;

use anonet_graph::BitString;
use anonet_obs::Json;
use anonet_store::{Store, StoreConfig, StoreError, StoreStats};

use crate::cache::{CacheStats, CachedAssignment, DerandCache};
use crate::scheduler::BatchScheduler;

/// Store namespace for quotient records.
const NS_QUOTIENT: u8 = 0;
/// Store namespace for assignment records.
const NS_ASSIGNMENT: u8 = 1;

/// One entry streamed out of a backend by [`CacheBackend::warm`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WarmEntry {
    /// A quotient sighting: `(s(G_*), |V_*|, max multiplicity)`.
    Quotient {
        /// The canonical quotient encoding.
        key: Vec<u8>,
        /// Quotient node count.
        nodes: usize,
        /// Maximum fiber multiplicity observed.
        multiplicity: usize,
    },
    /// A cached canonical simulation for `(problem, s(G_*))`.
    Assignment {
        /// The derandomizer problem id.
        problem: String,
        /// The canonical quotient encoding.
        key: Vec<u8>,
        /// The replayable simulation.
        cached: CachedAssignment,
    },
}

/// A durable tier under [`DerandCache`]. Implementations must be safe to
/// call from many batch workers at once and must **never** panic —
/// errors surface as [`StoreError`] and the cache degrades to
/// memory-only.
pub trait CacheBackend: std::fmt::Debug + Send + Sync {
    /// Loads the assignment for `(problem, key)`, if the tier holds one.
    ///
    /// # Errors
    ///
    /// Backend I/O or corruption.
    fn load_assignment(
        &self,
        problem: &str,
        key: &[u8],
    ) -> Result<Option<CachedAssignment>, StoreError>;

    /// Durably stores the assignment for `(problem, key)`.
    ///
    /// # Errors
    ///
    /// Backend I/O.
    fn store_assignment(
        &self,
        problem: &str,
        key: &[u8],
        cached: &CachedAssignment,
    ) -> Result<(), StoreError>;

    /// Durably records a quotient sighting (latest write wins, so callers
    /// pass the running maximum multiplicity).
    ///
    /// # Errors
    ///
    /// Backend I/O.
    fn record_quotient(
        &self,
        key: &[u8],
        nodes: usize,
        multiplicity: usize,
    ) -> Result<(), StoreError>;

    /// Streams up to `limit` entries (hottest first) for preloading a
    /// fresh process's memory tier.
    ///
    /// # Errors
    ///
    /// Backend I/O or corruption.
    fn warm(&self, limit: usize) -> Result<Vec<WarmEntry>, StoreError>;

    /// Forces buffered writes to stable storage.
    ///
    /// # Errors
    ///
    /// Backend I/O.
    fn flush(&self) -> Result<(), StoreError>;
}

// ---------------------------------------------------------------------
// Record codecs (plain little-endian framing, like the store's own).

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], at: &mut usize) -> Result<u64, StoreError> {
    let end = at.checked_add(8).filter(|&e| e <= bytes.len()).ok_or_else(|| {
        StoreError::codec(format!("u64 field at {at} overruns {} byte value", bytes.len()))
    })?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*at..end]);
    *at = end;
    Ok(u64::from_le_bytes(buf))
}

fn encode_assignment(cached: &CachedAssignment) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, cached.attempts as u64);
    push_u64(&mut out, cached.simulation_rounds as u64);
    push_u64(&mut out, cached.tapes.len() as u64);
    for tape in &cached.tapes {
        push_u64(&mut out, tape.len() as u64);
        let mut byte = 0u8;
        let mut filled = 0u8;
        for bit in tape.iter() {
            byte |= u8::from(bit) << filled;
            filled += 1;
            if filled == 8 {
                out.push(byte);
                byte = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            out.push(byte);
        }
    }
    out
}

fn decode_assignment(bytes: &[u8]) -> Result<CachedAssignment, StoreError> {
    let mut at = 0;
    let attempts = read_u64(bytes, &mut at)? as usize;
    let simulation_rounds = read_u64(bytes, &mut at)? as usize;
    let tape_count = read_u64(bytes, &mut at)? as usize;
    let mut tapes = Vec::with_capacity(tape_count.min(1 << 16));
    for t in 0..tape_count {
        let bit_len = read_u64(bytes, &mut at)? as usize;
        let byte_len = bit_len.div_ceil(8);
        let end = at.checked_add(byte_len).filter(|&e| e <= bytes.len()).ok_or_else(|| {
            StoreError::codec(format!("tape {t} of {bit_len} bits overruns the value"))
        })?;
        let packed = &bytes[at..end];
        at = end;
        tapes.push(BitString::from_bits((0..bit_len).map(|i| packed[i / 8] >> (i % 8) & 1 == 1)));
    }
    if at != bytes.len() {
        return Err(StoreError::codec(format!(
            "assignment value has {} trailing bytes",
            bytes.len() - at
        )));
    }
    Ok(CachedAssignment { tapes, attempts, simulation_rounds })
}

/// The on-disk assignment key: `qkey ++ problem ++ qkey_len:u32le`.
/// Self-delimiting from the end, and its first byte is the quotient
/// key's, so assignments shard with their quotients.
fn assignment_disk_key(problem: &str, qkey: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(qkey.len() + problem.len() + 4);
    out.extend_from_slice(qkey);
    out.extend_from_slice(problem.as_bytes());
    out.extend_from_slice(&(qkey.len() as u32).to_le_bytes());
    out
}

fn split_assignment_disk_key(key: &[u8]) -> Result<(String, Vec<u8>), StoreError> {
    if key.len() < 4 {
        return Err(StoreError::codec("assignment key shorter than its length suffix"));
    }
    let mut len_buf = [0u8; 4];
    len_buf.copy_from_slice(&key[key.len() - 4..]);
    let qlen = u32::from_le_bytes(len_buf) as usize;
    let body = &key[..key.len() - 4];
    if qlen > body.len() {
        return Err(StoreError::codec(format!(
            "assignment key claims a {qlen} byte quotient but holds {}",
            body.len()
        )));
    }
    let problem = String::from_utf8(body[qlen..].to_vec())
        .map_err(|_| StoreError::codec("assignment key problem id is not UTF-8"))?;
    Ok((problem, body[..qlen].to_vec()))
}

fn encode_quotient(nodes: usize, multiplicity: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    push_u64(&mut out, nodes as u64);
    push_u64(&mut out, multiplicity as u64);
    out
}

fn decode_quotient(bytes: &[u8]) -> Result<(usize, usize), StoreError> {
    let mut at = 0;
    let nodes = read_u64(bytes, &mut at)? as usize;
    let multiplicity = read_u64(bytes, &mut at)? as usize;
    if at != bytes.len() {
        return Err(StoreError::codec("quotient value has trailing bytes"));
    }
    Ok((nodes, multiplicity))
}

// ---------------------------------------------------------------------

/// [`CacheBackend`] over an [`anonet_store::Store`].
#[derive(Debug)]
pub struct StoreBackend {
    store: Store,
}

impl StoreBackend {
    /// Wraps an open store.
    pub fn new(store: Store) -> Self {
        StoreBackend { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }
}

impl CacheBackend for StoreBackend {
    fn load_assignment(
        &self,
        problem: &str,
        key: &[u8],
    ) -> Result<Option<CachedAssignment>, StoreError> {
        match self.store.get(NS_ASSIGNMENT, &assignment_disk_key(problem, key))? {
            Some(value) => Ok(Some(decode_assignment(&value)?)),
            None => Ok(None),
        }
    }

    fn store_assignment(
        &self,
        problem: &str,
        key: &[u8],
        cached: &CachedAssignment,
    ) -> Result<(), StoreError> {
        self.store.put(
            NS_ASSIGNMENT,
            &assignment_disk_key(problem, key),
            &encode_assignment(cached),
        )
    }

    fn record_quotient(
        &self,
        key: &[u8],
        nodes: usize,
        multiplicity: usize,
    ) -> Result<(), StoreError> {
        self.store.put(NS_QUOTIENT, key, &encode_quotient(nodes, multiplicity))
    }

    fn warm(&self, limit: usize) -> Result<Vec<WarmEntry>, StoreError> {
        let mut out = Vec::new();
        for (key, value) in self.store.warm_scan(NS_ASSIGNMENT, limit)? {
            let (problem, qkey) = split_assignment_disk_key(&key)?;
            out.push(WarmEntry::Assignment {
                problem,
                key: qkey,
                cached: decode_assignment(&value)?,
            });
        }
        for (key, value) in self.store.warm_scan(NS_QUOTIENT, limit)? {
            let (nodes, multiplicity) = decode_quotient(&value)?;
            out.push(WarmEntry::Quotient { key, nodes, multiplicity });
        }
        Ok(out)
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.store.flush()
    }
}

/// A [`DerandCache`] layered over a persistent [`Store`]: the drop-in
/// way to make `Derandomizer::with_cache`, `run_pipeline_cached`, and
/// the batch entry points survive process restarts.
///
/// # Example
///
/// ```
/// use anonet_batch::{CachedAssignment, PersistentDerandCache};
///
/// # fn main() -> Result<(), anonet_store::StoreError> {
/// let dir = std::env::temp_dir().join(format!("anonet-pdc-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let tapes = vec!["101".parse().unwrap()];
/// let cached = CachedAssignment { tapes, attempts: 2, simulation_rounds: 3 };
/// {
///     // First process: a miss, computed, written through to disk.
///     let pdc = PersistentDerandCache::open(&dir)?;
///     assert!(pdc.cache().lookup_assignment("mis", b"qkey").is_none());
///     pdc.cache().insert_assignment("mis", b"qkey", cached.clone());
///     pdc.flush()?;
/// }
/// // Second process: warm-started, the lookup is a disk-backed hit.
/// let pdc = PersistentDerandCache::open(&dir)?;
/// pdc.warm(1024)?;
/// assert_eq!(pdc.cache().lookup_assignment("mis", b"qkey"), Some(cached));
/// assert_eq!(pdc.cache().stats().assignment_hits, 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PersistentDerandCache {
    cache: Arc<DerandCache>,
    backend: Arc<StoreBackend>,
}

impl PersistentDerandCache {
    /// Opens (or creates) the store at `dir` with default config and
    /// layers an unbounded memory cache over it.
    ///
    /// # Errors
    ///
    /// Store open/recovery errors.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(StoreConfig::new(dir.as_ref()), None)
    }

    /// Opens with an explicit [`StoreConfig`] and an optional memory-tier
    /// entry capacity (the disk tier keeps evicted entries).
    ///
    /// # Errors
    ///
    /// Store open/recovery errors.
    pub fn open_with(cfg: StoreConfig, max_entries: Option<usize>) -> Result<Self, StoreError> {
        let backend = Arc::new(StoreBackend::new(Store::open(cfg)?));
        let cache = match max_entries {
            Some(max) => DerandCache::with_capacity(max),
            None => DerandCache::new(),
        };
        let cache = Arc::new(cache.with_backend(Arc::clone(&backend) as Arc<dyn CacheBackend>));
        Ok(PersistentDerandCache { cache, backend })
    }

    /// The layered cache — pass this wherever an `Arc<DerandCache>` goes
    /// (`Derandomizer::with_cache`, `pipeline_batch`, ...).
    pub fn cache(&self) -> &Arc<DerandCache> {
        &self.cache
    }

    /// The store backend.
    pub fn backend(&self) -> &StoreBackend {
        &self.backend
    }

    /// Preloads up to `limit` hot disk entries into the memory tier.
    /// Returns how many entries were loaded.
    ///
    /// # Errors
    ///
    /// Backend read errors (nothing is partially visible on error beyond
    /// the entries already promoted).
    pub fn warm(&self, limit: usize) -> Result<usize, StoreError> {
        self.cache.warm(limit)
    }

    /// Flushes the disk tier.
    ///
    /// # Errors
    ///
    /// Backend I/O.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.backend.flush()
    }

    /// Compacts every shard sequentially; returns bytes reclaimed.
    ///
    /// # Errors
    ///
    /// The first shard failure.
    pub fn compact(&self) -> Result<u64, StoreError> {
        self.backend.store.compact()
    }

    /// Compacts all shards concurrently on `scheduler` (shards lock
    /// independently, so this parallelizes cleanly). Returns total bytes
    /// reclaimed.
    ///
    /// # Errors
    ///
    /// The first shard failure (other shards still complete).
    pub fn compact_with(&self, scheduler: &BatchScheduler) -> Result<u64, StoreError> {
        let shards: Vec<usize> = (0..self.backend.store.shard_count()).collect();
        let outcome = scheduler.run(&shards, |_, &s| self.backend.store.compact_shard(s));
        let mut reclaimed = 0;
        let mut first_err: Option<String> = None;
        for result in &outcome.results {
            match result.ok() {
                Some(bytes) => reclaimed += *bytes,
                None => {
                    if first_err.is_none() {
                        first_err = Some(format!("{result:?}"));
                    }
                }
            }
        }
        match first_err {
            None => Ok(reclaimed),
            Some(detail) => Err(StoreError::codec(format!("shard compaction failed: {detail}"))),
        }
    }

    /// Disk-tier accounting.
    pub fn store_stats(&self) -> StoreStats {
        self.backend.store.stats()
    }

    /// Memory-tier accounting (includes the `disk_*` counters).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The store's JSON report (shared `anonet_obs::Json` serializer).
    pub fn report_json(&self) -> Json {
        self.backend.store.report_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("anonet-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tape(bits: &str) -> BitString {
        bits.parse().unwrap()
    }

    fn sample() -> CachedAssignment {
        CachedAssignment {
            tapes: vec![tape("1011001"), tape(""), tape("111111110000000011")],
            attempts: 41,
            simulation_rounds: 9,
        }
    }

    #[test]
    fn assignment_codec_roundtrips() {
        let cached = sample();
        assert_eq!(decode_assignment(&encode_assignment(&cached)).unwrap(), cached);
        let empty = CachedAssignment { tapes: vec![], attempts: 0, simulation_rounds: 0 };
        assert_eq!(decode_assignment(&encode_assignment(&empty)).unwrap(), empty);
    }

    #[test]
    fn assignment_codec_rejects_malformed() {
        assert!(decode_assignment(&[1, 2, 3]).is_err());
        let mut good = encode_assignment(&sample());
        good.push(0); // trailing byte
        assert!(decode_assignment(&good).is_err());
        let mut huge = Vec::new();
        push_u64(&mut huge, 1);
        push_u64(&mut huge, 1);
        push_u64(&mut huge, 1);
        push_u64(&mut huge, u64::MAX); // impossible tape length
        assert!(decode_assignment(&huge).is_err());
    }

    #[test]
    fn disk_key_roundtrips_and_shards_with_quotient() {
        let qkey = vec![0xAB, 1, 2, 3];
        let dk = assignment_disk_key("mis|Fair|r64", &qkey);
        assert_eq!(dk[0], 0xAB); // first byte preserved for sharding
        let (problem, back) = split_assignment_disk_key(&dk).unwrap();
        assert_eq!(problem, "mis|Fair|r64");
        assert_eq!(back, qkey);
        assert!(split_assignment_disk_key(&[1, 2]).is_err());
    }

    #[test]
    fn backend_roundtrips_through_a_real_store() {
        let dir = tmp("backend");
        let backend = StoreBackend::new(Store::open(StoreConfig::new(&dir)).unwrap());
        let cached = sample();
        backend.store_assignment("p", b"qk", &cached).unwrap();
        backend.record_quotient(b"qk", 3, 4).unwrap();
        assert_eq!(backend.load_assignment("p", b"qk").unwrap(), Some(cached.clone()));
        assert_eq!(backend.load_assignment("other", b"qk").unwrap(), None);
        let warm = backend.warm(16).unwrap();
        assert!(warm.contains(&WarmEntry::Assignment {
            problem: "p".into(),
            key: b"qk".to_vec(),
            cached
        }));
        assert!(warm.contains(&WarmEntry::Quotient {
            key: b"qk".to_vec(),
            nodes: 3,
            multiplicity: 4
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_cache_survives_reopen_and_warms() {
        let dir = tmp("pdc");
        let cached = sample();
        {
            let pdc = PersistentDerandCache::open(&dir).unwrap();
            assert!(pdc.cache().lookup_assignment("mis", b"qk").is_none());
            pdc.cache().insert_assignment("mis", b"qk", cached.clone());
            assert!(pdc.cache().record_quotient(b"qk", 3, 2));
            pdc.flush().unwrap();
            let stats = pdc.cache_stats();
            assert_eq!(stats.disk_misses, 1);
            assert_eq!(stats.disk_hits, 0);
        }
        // Fresh process, cold memory: the disk tier answers.
        let pdc = PersistentDerandCache::open(&dir).unwrap();
        assert_eq!(pdc.cache().lookup_assignment("mis", b"qk"), Some(cached.clone()));
        let stats = pdc.cache_stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.assignment_hits, 1);
        // Promoted: the second lookup is memory-only.
        assert_eq!(pdc.cache().lookup_assignment("mis", b"qk"), Some(cached.clone()));
        assert_eq!(pdc.cache_stats().disk_hits, 1);
        assert_eq!(pdc.cache_stats().assignment_hits, 2);

        // warm() preloads without touching hit counters.
        let pdc2 = PersistentDerandCache::open(&dir).unwrap();
        let loaded = pdc2.warm(1024).unwrap();
        assert_eq!(loaded, 2); // one assignment + one quotient
        let before = pdc2.cache_stats();
        assert_eq!(before.assignment_hits + before.assignment_misses, 0);
        assert_eq!(pdc2.cache().lookup_assignment("mis", b"qk"), Some(cached));
        let after = pdc2.cache_stats();
        assert_eq!(after.disk_hits, 0); // served from warmed memory
        assert!(!pdc2.cache().record_quotient(b"qk", 3, 2)); // already known
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_with_scheduler_reclaims() {
        let dir = tmp("compact");
        let cfg = StoreConfig::new(&dir).with_shards(4).with_segment_bytes(256);
        let pdc = PersistentDerandCache::open_with(cfg, None).unwrap();
        for round in 0..20usize {
            // Same keys every round: 19/20 of the frames are dead.
            for k in 0..8u8 {
                let cached = CachedAssignment {
                    tapes: vec![tape("1010")],
                    attempts: round,
                    simulation_rounds: 1,
                };
                // Bypass first-write-wins by writing the backend directly.
                pdc.backend().store_assignment("p", &[k], &cached).unwrap();
            }
        }
        let before = pdc.store_stats();
        assert!(before.dead_bytes > 0);
        let reclaimed = pdc.compact_with(&BatchScheduler::with_threads(4)).unwrap();
        assert!(reclaimed > 0);
        assert_eq!(pdc.store_stats().dead_bytes, 0);
        assert_eq!(pdc.backend().load_assignment("p", &[3]).unwrap().unwrap().attempts, 19);
        std::fs::remove_dir_all(&dir).ok();
    }
}
