//! Parallel drivers for the view machinery, built on the
//! [`BatchScheduler`]'s node-order-commit discipline.
//!
//! Both entry points split the node range into contiguous chunks, run the
//! chunks concurrently, and **commit results in submission order**: every
//! chunk's output is a pure function of `(graph, range)` and the scheduler
//! slots outcomes by submission index, so concatenating the slots
//! reproduces the sequential output bit for bit at any worker count.
//! Thread count is a throughput knob, never a semantics knob — the same
//! invariant the scheduler already enforces for whole-instance batches.
//!
//! * [`parallel_canonical_encodings`] — the canonical depth-`d` view
//!   encoding of every node, each worker reusing its thread-local
//!   [`ViewArena`](anonet_views::ViewArena) so steady-state chunks
//!   allocate nothing.
//! * [`parallel_stable_partition`] — color refinement with the per-round
//!   key construction (the dominant cost, `O(Σ deg)`) fanned out across
//!   workers; the dense-class assignment stays sequential, which is what
//!   makes the result independent of chunking.

use anonet_graph::{Label, LabeledGraph, NodeId};
use anonet_views::{
    assign_dense_classes, canonical_view_encoding, initial_label_classes, round_keys, ViewMode,
};

use crate::scheduler::BatchScheduler;

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal
/// size, in order. Deterministic in `(n, parts)`.
fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// How many chunks to cut for a scheduler: a few per worker, so a slow
/// chunk (dense region, deep views) doesn't straggle the whole batch.
fn chunk_count(sched: &BatchScheduler, n: usize) -> usize {
    (sched.threads() * 4).min(n.max(1))
}

/// The canonical depth-`depth` view encoding of every node of `g`, in node
/// order — byte-identical to calling
/// [`canonical_view_encoding`] sequentially, at any thread count.
///
/// Each worker builds its chunk in its own thread-local arena; per-node
/// results (including per-node errors) are committed in node order, so the
/// returned error on failure is the sequential one: the error of the
/// smallest-index failing node.
///
/// # Errors
///
/// [`ViewError::ViewTooLarge`](anonet_views::ViewError) as the sequential
/// path, for the first (lowest-index) node whose explicit view exceeds the
/// budget.
pub fn parallel_canonical_encodings<L: Label + Sync>(
    sched: &BatchScheduler,
    g: &LabeledGraph<L>,
    depth: usize,
) -> anonet_views::Result<Vec<Vec<u8>>> {
    let n = g.node_count();
    let ranges = chunk_ranges(n, chunk_count(sched, n));
    let outcome = sched.run(&ranges, |_idx, &(lo, hi)| {
        let encs: Vec<anonet_views::Result<Vec<u8>>> =
            (lo..hi).map(|v| canonical_view_encoding(g, NodeId::new(v), depth)).collect();
        Ok::<_, String>(encs)
    });
    let mut out = Vec::with_capacity(n);
    for result in outcome.results {
        match result {
            crate::JobResult::Ok(encs) => {
                for enc in encs {
                    out.push(enc?);
                }
            }
            // The closure is infallible and panic-free; a panic here means
            // a bug below us (e.g. in the arena), surfaced as the view
            // error it can only be.
            crate::JobResult::Failed(msg) | crate::JobResult::Panicked(msg) => {
                return Err(anonet_views::ViewError::Reconstruction {
                    reason: format!("parallel encoding worker failed: {msg}"),
                });
            }
        }
    }
    Ok(out)
}

/// Color refinement to stability with parallel per-round key
/// construction: returns `(classes, stabilization_depth)`, equal to
/// [`BoundedRefinement`](anonet_views::BoundedRefinement)'s
/// `classes()` / `stabilization_depth()` — identically, at any thread
/// count.
///
/// Each round fans [`round_keys`] chunks across the scheduler, commits
/// them in node order, and runs the (cheap, `O(n log n)`) dense-class
/// assignment sequentially on the concatenation — the node-order-commit
/// trick. The loop structure (including the stop-without-commit round)
/// mirrors `BoundedRefinement::compute` exactly.
pub fn parallel_stable_partition<L: Label + Sync>(
    sched: &BatchScheduler,
    g: &LabeledGraph<L>,
    mode: ViewMode,
) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut stable = initial_label_classes(g);
    let mut depth = 0usize;
    loop {
        let prev_count = class_count(&stable);
        let ranges = chunk_ranges(n, chunk_count(sched, n));
        let keys_outcome = sched
            .run(&ranges, |_idx, &(lo, hi)| Ok::<_, String>(round_keys(g, &stable, mode, lo, hi)));
        let mut keys = Vec::with_capacity(n);
        for chunk in keys_outcome.unwrap_all() {
            keys.extend(chunk);
        }
        let next = assign_dense_classes(&keys);
        if class_count(&next) == prev_count {
            break;
        }
        stable = next;
        depth += 1;
        if depth > n {
            unreachable!("refinement must stabilize within n rounds");
        }
    }
    (stable, depth)
}

/// Number of distinct dense class ids.
fn class_count(classes: &[u32]) -> usize {
    classes.iter().copied().max().map_or(0, |m| m as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;
    use anonet_views::{BoundedRefinement, ViewError, ViewTree};

    fn families() -> Vec<(&'static str, LabeledGraph<u32>)> {
        vec![
            ("path7", generators::path(7).unwrap().with_uniform_label(0u32)),
            ("cycle9", generators::cycle(9).unwrap().with_uniform_label(0u32)),
            ("petersen", generators::petersen().with_uniform_label(0u32)),
            (
                "colored_c12",
                generators::cycle(12)
                    .unwrap()
                    .with_labels((0..12).map(|i| (i % 3) as u32).collect())
                    .unwrap(),
            ),
            ("complete5", generators::complete(5).unwrap().with_uniform_label(7u32)),
        ]
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 16, 33] {
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(n, parts);
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn encodings_match_sequential_at_every_thread_count() {
        for (name, g) in families() {
            for depth in [1usize, 3] {
                let reference: Vec<Vec<u8>> = g
                    .graph()
                    .nodes()
                    .map(|v| ViewTree::build(&g, v, depth).unwrap().canonical_encoding())
                    .collect();
                for threads in [1usize, 2, 8] {
                    let sched = BatchScheduler::with_threads(threads);
                    let got = parallel_canonical_encodings(&sched, &g, depth).unwrap();
                    assert_eq!(got, reference, "{name} depth={depth} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn encoding_errors_match_the_sequential_path() {
        // Deep views on K8 blow the size budget; the parallel driver must
        // surface the same error value the sequential call produces.
        let g = generators::complete(8).unwrap().with_uniform_label(0u32);
        let seq =
            canonical_view_encoding(&g, NodeId::new(0), 9).expect_err("budget must be exceeded");
        for threads in [1usize, 2, 8] {
            let sched = BatchScheduler::with_threads(threads);
            let err = parallel_canonical_encodings(&sched, &g, 9)
                .expect_err("budget must be exceeded in parallel too");
            assert_eq!(err, seq, "threads={threads}");
            assert!(matches!(err, ViewError::ViewTooLarge { .. }));
        }
    }

    #[test]
    fn stable_partition_matches_bounded_refinement() {
        for (name, g) in families() {
            for mode in [ViewMode::Portless, ViewMode::PortAware] {
                let reference = BoundedRefinement::compute(&g, mode);
                for threads in [1usize, 2, 8] {
                    let sched = BatchScheduler::with_threads(threads);
                    let (classes, depth) = parallel_stable_partition(&sched, &g, mode);
                    assert_eq!(classes, reference.classes(), "{name} {mode:?} threads={threads}");
                    assert_eq!(
                        depth,
                        reference.stabilization_depth(),
                        "{name} {mode:?} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_node_graphs_are_fine() {
        let g1 = generators::complete(1).unwrap().with_uniform_label(0u32);
        let sched = BatchScheduler::with_threads(4);
        let encs = parallel_canonical_encodings(&sched, &g1, 2).unwrap();
        assert_eq!(encs.len(), 1);
        let (classes, depth) = parallel_stable_partition(&sched, &g1, ViewMode::Portless);
        assert_eq!(classes, vec![0]);
        assert_eq!(depth, 0);
    }
}
