//! Property tests for the content-addressed cache key: `instance_key`
//! must be a function of the instance's *isomorphism class of quotients*
//! and nothing else — invariant under node renumbering (isomorphic
//! presentations address the same entry) and under lifting (every lift of
//! a base addresses the base's entry), and injective enough that equal
//! keys certify isomorphic quotients.

use anonet_batch::instance_key;
use anonet_graph::lift::cyclic_cycle_lift;
use anonet_graph::{coloring, generators, iso, Graph, LabeledGraph};
use anonet_views::{quotient, ViewMode};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random connected graph from a seed: mixes families for diversity.
fn arbitrary_graph(seed: u64, n: usize, flavor: u8) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match flavor % 4 {
        0 => generators::gnp_connected(n, 0.3, &mut rng).expect("valid"),
        1 => generators::random_tree(n, &mut rng).expect("valid"),
        2 => generators::cycle(n.max(3)).expect("valid"),
        _ => generators::gnp_connected(n, 0.6, &mut rng).expect("valid"),
    }
}

/// Rebuilds `g` with node `v` renumbered to `perm[v]` — an isomorphic
/// presentation of the same labeled graph.
fn permuted(g: &LabeledGraph<u32>, perm: &[usize]) -> LabeledGraph<u32> {
    let n = g.node_count();
    let edges: Vec<(usize, usize)> =
        g.graph().edges().map(|e| (perm[e.u.index()], perm[e.v.index()])).collect();
    let mut labels = vec![0u32; n];
    for (v, label) in g.labels().iter().enumerate() {
        labels[perm[v]] = *label;
    }
    Graph::from_edges(n, &edges)
        .expect("permutation preserves simplicity")
        .with_labels(labels)
        .expect("label count preserved")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Renumbering the nodes of a 2-hop colored instance does not change
    /// its content address: isomorphic presentations share cache entries.
    #[test]
    fn key_is_invariant_under_node_renumbering(
        seed in 0u64..5000, n in 2usize..14, flavor in 0u8..4
    ) {
        let g = arbitrary_graph(seed, n, flavor);
        let colored = coloring::greedy_two_hop_coloring(&g);
        let mut perm: Vec<usize> = (0..colored.node_count()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        perm.shuffle(&mut rng);
        let shuffled = permuted(&colored, &perm);
        prop_assert!(iso::are_isomorphic(&colored, &shuffled));
        prop_assert_eq!(
            instance_key(&colored).expect("2-hop colored"),
            instance_key(&shuffled).expect("2-hop colored")
        );
    }

    /// Every cyclic lift of a colored cycle addresses the base's entry
    /// (Lemma 3: lifts of a common base have isomorphic quotients).
    #[test]
    fn key_is_invariant_under_lifting(base_n in 3usize..7, m in 1usize..7) {
        let labels: Vec<u32> = (0..base_n).map(|i| i as u32 + 1).collect();
        let base = generators::cycle(base_n).expect("valid")
            .with_labels(labels.clone()).expect("sized");
        let lifted = cyclic_cycle_lift(base_n, m).expect("valid")
            .lift_labels(&labels).expect("sized");
        prop_assert_eq!(
            instance_key(&base).expect("all-distinct colors"),
            instance_key(&lifted).expect("lifted 2-hop coloring")
        );
    }

    /// Soundness of the address: two instances share a key only if their
    /// quotients really are isomorphic labeled graphs — the cache never
    /// conflates distinct derandomization problems.
    #[test]
    fn equal_keys_certify_isomorphic_quotients(
        seed_a in 0u64..2500, seed_b in 2500u64..5000,
        n_a in 2usize..12, n_b in 2usize..12,
        flavor in 0u8..4
    ) {
        let a = coloring::greedy_two_hop_coloring(&arbitrary_graph(seed_a, n_a, flavor));
        let b = coloring::greedy_two_hop_coloring(&arbitrary_graph(seed_b, n_b, (flavor + 1) % 4));
        let key_a = instance_key(&a).expect("colored");
        let key_b = instance_key(&b).expect("colored");
        let qa = quotient(&a, ViewMode::Portless).expect("colored");
        let qb = quotient(&b, ViewMode::Portless).expect("colored");
        prop_assert_eq!(
            key_a == key_b,
            iso::are_isomorphic(qa.graph(), qb.graph())
        );
    }
}
