//! A lightweight Rust-source scanner.
//!
//! This is *not* a Rust parser: the rules only need a token stream that is
//! faithful about the things that could fool a regex — comments, string
//! literals (including raw and byte strings), char literals vs lifetimes,
//! and nested block comments. Everything else is identifiers, numbers, and
//! single-character punctuation, each tagged with its 1-indexed line.
//!
//! The scanner also extracts comment text line by line (the waiver syntax
//! lives in comments) and computes `#[cfg(test)]` regions so rules can
//! exempt test code.

/// What a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A string literal (text holds the *contents*, unescaped lazily —
    /// i.e. raw source bytes between the quotes).
    Str,
    /// A numeric literal (possibly with a type suffix).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its source line (1-indexed).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`], a single character).
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` iff this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` iff this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments stripped.
    pub tokens: Vec<Tok>,
    /// Comment text, one entry per *source line* of comment (block
    /// comments spanning lines contribute one entry per line).
    pub comments: Vec<(u32, String)>,
}

/// Scans `src` into tokens and comment lines.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                out.comments.push((line, chars[start..i].iter().collect()));
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1usize;
                i += 2;
                let mut seg_start = i;
                let mut seg_line = line;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        out.comments.push((seg_line, chars[seg_start..i].iter().collect()));
                        line += 1;
                        i += 1;
                        seg_start = i;
                        seg_line = line;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = if depth == 0 { i.saturating_sub(2) } else { i };
                if end > seg_start {
                    out.comments.push((seg_line, chars[seg_start..end].iter().collect()));
                }
            }
            '"' => {
                let (tok, ni, nl) = scan_string(&chars, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            'r' if raw_string_ahead(&chars, i) => {
                let (tok, ni, nl) = scan_raw_string(&chars, i + 1, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            'b' if i + 1 < n && chars[i + 1] == '"' => {
                let (tok, ni, nl) = scan_string(&chars, i + 1, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            'b' if i + 1 < n && chars[i + 1] == 'r' && raw_string_ahead(&chars, i + 1) => {
                let (tok, ni, nl) = scan_raw_string(&chars, i + 2, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            'b' if i + 1 < n && chars[i + 1] == '\'' => {
                i = scan_char_literal(&chars, i + 1);
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`). A
                // lifetime is a quote followed by an identifier *not*
                // closed by another quote.
                let is_lifetime = i + 1 < n
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                    && !(i + 2 < n && chars[i + 2] == '\'');
                if is_lifetime {
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    i = scan_char_literal(&chars, i);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                out.tokens.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// `chars[i]` is `r`; is this the start of a raw string (`r"` / `r#`)?
fn raw_string_ahead(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j > i && j < chars.len() && chars[j] == '"' && (chars[i + 1] == '#' || chars[i + 1] == '"')
}

/// Scans a normal (escaped) string literal starting at the opening quote.
fn scan_string(chars: &[char], quote: usize, mut line: u32) -> (Tok, usize, u32) {
    let start_line = line;
    let mut i = quote + 1;
    let content_start = i;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                line += 1;
                i += 1;
            }
            '"' => break,
            _ => i += 1,
        }
    }
    let content: String = chars[content_start..i.min(chars.len())].iter().collect();
    (Tok { kind: TokKind::Str, text: content, line: start_line }, (i + 1).min(chars.len()), line)
}

/// Scans a raw string; `hashes_start` points at the first `#` or the quote.
fn scan_raw_string(chars: &[char], hashes_start: usize, mut line: u32) -> (Tok, usize, u32) {
    let start_line = line;
    let mut i = hashes_start;
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let content_start = i;
    'outer: while i < chars.len() {
        if chars[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < chars.len() && chars[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                let content: String = chars[content_start..i].iter().collect();
                return (Tok { kind: TokKind::Str, text: content, line: start_line }, j, line);
            }
            i += 1;
            continue 'outer;
        }
        i += 1;
    }
    let content: String = chars[content_start..].iter().collect();
    (Tok { kind: TokKind::Str, text: content, line: start_line }, chars.len(), line)
}

/// Scans a char literal starting at the opening quote; returns the index
/// one past the closing quote.
fn scan_char_literal(chars: &[char], quote: usize) -> usize {
    let mut i = quote + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items.
///
/// The scan finds every `#[cfg(...)]` attribute whose argument tokens
/// include the identifier `test`, skips any further attributes, and then
/// extends the region to the end of the annotated item: the matching close
/// brace of its first `{`, or the terminating `;` if one comes first.
pub fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            let attr_line = tokens[i].line;
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_test = false;
            let mut saw_cfg = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].is_ident("cfg") {
                    saw_cfg = true;
                } else if tokens[j].is_ident("test") {
                    is_test = true;
                }
                j += 1;
            }
            if saw_cfg && is_test {
                // Skip any further attributes on the same item.
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    let mut d = 1usize;
                    let mut k = j + 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                    j = k;
                }
                // Extend to the end of the item.
                let mut end_line = attr_line;
                let mut brace = 0usize;
                let mut entered = false;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        brace += 1;
                        entered = true;
                    } else if tokens[j].is_punct('}') {
                        brace = brace.saturating_sub(1);
                        if entered && brace == 0 {
                            end_line = tokens[j].line;
                            j += 1;
                            break;
                        }
                    } else if tokens[j].is_punct(';') && !entered {
                        end_line = tokens[j].line;
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                if j == tokens.len() {
                    end_line = tokens.last().map(|t| t.line).unwrap_or(attr_line);
                }
                regions.push((attr_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// `true` iff `line` falls inside any of `regions`.
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
// use rand::Rng;
let s = "use rand::Rng; HashMap";
let r = r#"panic!("in a raw string")"#;
/* HashSet
   across lines */
let x = map; // trailing HashMap comment
"##;
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("rand")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashSet")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
        assert_eq!(lexed.comments.iter().filter(|(_, t)| t.contains("HashSet")).count(), 1);
        // Two string tokens survive with their contents.
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_do_not_eat_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let nl = '\\n';";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "fn live() { }\n#[cfg(test)]\nmod tests {\n  fn a() { }\n  fn b() { }\n}\nfn also_live() { }\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let (a, b) = regions[0];
        assert!(a <= 3 && b >= 5, "region {a}..{b} should cover the mod body");
        assert!(!in_regions(&regions, 1));
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 7));
    }

    #[test]
    fn cfg_test_on_statement_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nuse live::thing;\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(&regions, 2));
        assert!(!in_regions(&regions, 3));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ ident";
        let lexed = lex(src);
        assert_eq!(lexed.tokens.len(), 1);
        assert!(lexed.tokens[0].is_ident("ident"));
    }
}
