//! The workspace item graph: per-function facts assembled across files.
//!
//! [`ItemGraph::build`] takes every file's token stream and parsed
//! skeleton ([`parser::ParsedFile`]) and derives the IR the flow rules
//! traverse (DESIGN.md §14):
//!
//! * name indices — `Type::method` and bare-name lookup over every `fn`
//!   in the workspace, plus the set of names whose *every* definition
//!   returns `Result` (the error-propagation registry);
//! * the thread-local registry — every `thread_local!` static name in
//!   the workspace;
//! * per-function facts — direct lock acquisitions (the lock **class**
//!   is the crate-qualified receiver field, e.g. `store::shards`) with
//!   their *hold regions* (let-bound guards live to the end of the
//!   enclosing block or an explicit `drop(guard)`, temporaries to the
//!   end of the statement), resolvable call sites, and spawn/submit
//!   sites (`BatchScheduler::run`, `spawn`);
//! * the **may-lock** fixpoint — the set of lock classes each function
//!   can acquire, directly or through any resolvable callee.
//!
//! Call resolution is deliberately approximate: `self.method(…)`
//! resolves within the enclosing impl, `Type::method(…)` through the
//! qualified index, and bare names only when the workspace has exactly
//! one definition and the name is not a ubiquitous container method.
//! Unresolvable calls contribute no facts — the analysis under-reports
//! rather than guesses.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::parser::{self, Closure, FnItem, ParsedFile};

/// Method names too generic to resolve by bare name: shared by the std
/// containers and half the workspace, so a bare-name match would wire
/// the call graph to the wrong function far too often.
const COMMON_METHODS: &[&str] = &[
    "new",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "contains",
    "contains_key",
    "clone",
    "next",
    "with",
    "map",
    "and_then",
    "unwrap",
    "unwrap_or",
    "expect",
    "extend",
    "clear",
    "take",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "write",
    "read",
    "flush",
    "run",
    "drain",
    "keys",
    "values",
    "sort",
    "split",
    "join",
    "lock",
];

/// Statement keywords that look like calls (`if (…)`) but are not.
const STMT_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "let", "fn", "in", "move", "as",
    "break", "continue", "where", "impl", "pub", "unsafe", "mut", "ref", "use", "mod", "const",
    "static", "type", "struct", "enum", "trait", "dyn",
];

/// One source file's contribution to the graph.
pub struct FileInput<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// The file's token stream.
    pub tokens: &'a [Tok],
    /// The file's parsed skeleton.
    pub parsed: &'a ParsedFile,
}

/// A lock acquisition site inside a function body.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Crate-qualified lock class, e.g. `store::shards`.
    pub class: String,
    /// Token index of the acquiring `.lock(` (the `.`).
    pub tok: usize,
    /// Last token index at which the guard is still held.
    pub region_end: usize,
    /// 1-indexed line of the acquisition.
    pub line: u32,
}

/// A resolved call site inside a function body.
#[derive(Clone, Copy, Debug)]
pub struct CallSite {
    /// Index of the callee in [`ItemGraph::fns`].
    pub target: usize,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-indexed line.
    pub line: u32,
}

/// A spawn/submit site: work handed to another thread.
#[derive(Clone, Copy, Debug)]
pub struct SubmitSite {
    /// Token index of the method name (`run` / `spawn`).
    pub tok: usize,
    /// Token range of the argument list, inclusive of both parens.
    pub args: (usize, usize),
    /// 1-indexed line.
    pub line: u32,
}

/// Per-function derived facts.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Direct lock acquisitions with hold regions.
    pub locks: Vec<LockSite>,
    /// Calls resolved to workspace functions.
    pub calls: Vec<CallSite>,
    /// Scheduler submissions and thread spawns.
    pub submits: Vec<SubmitSite>,
}

/// One function node of the graph.
pub struct FnNode<'a> {
    /// Index of the defining file in [`ItemGraph::files`].
    pub file: usize,
    /// The parsed item.
    pub item: &'a FnItem,
    /// Derived facts.
    pub facts: FnFacts,
}

/// The workspace-wide item graph.
pub struct ItemGraph<'a> {
    /// The input files, in the caller's (sorted) order.
    pub files: Vec<FileInput<'a>>,
    /// Every function with a body, workspace-wide.
    pub fns: Vec<FnNode<'a>>,
    /// `Type::name` → fn index (first definition wins on duplicates).
    pub qual_index: BTreeMap<String, usize>,
    /// bare name → fn indices.
    pub bare_index: BTreeMap<String, Vec<usize>>,
    /// Names whose every workspace definition (including bodyless trait
    /// declarations) returns `Result`.
    pub result_names: BTreeSet<String>,
    /// Every `thread_local!` static name in the workspace.
    pub thread_locals: BTreeSet<String>,
    /// Per-fn may-lock sets (same indexing as [`ItemGraph::fns`]).
    pub may_lock: Vec<BTreeSet<String>>,
}

impl<'a> ItemGraph<'a> {
    /// Builds the graph. `files` should be sorted by path; the graph
    /// preserves the given order everywhere, so sorted input makes every
    /// downstream report deterministic.
    pub fn build(files: Vec<FileInput<'a>>) -> ItemGraph<'a> {
        let mut fns: Vec<FnNode<'a>> = Vec::new();
        let mut qual_index = BTreeMap::new();
        let mut bare_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut thread_locals = BTreeSet::new();
        // name → (result_count, total_count), trait declarations included.
        let mut result_tally: BTreeMap<String, (usize, usize)> = BTreeMap::new();

        for (fi, file) in files.iter().enumerate() {
            for tl in &file.parsed.thread_locals {
                thread_locals.insert(tl.clone());
            }
            for item in &file.parsed.fns {
                let tally = result_tally.entry(item.name.clone()).or_insert((0, 0));
                tally.1 += 1;
                if item.returns_result {
                    tally.0 += 1;
                }
                if item.body.is_none() {
                    continue;
                }
                let id = fns.len();
                qual_index.entry(item.qualified()).or_insert(id);
                bare_index.entry(item.name.clone()).or_default().push(id);
                fns.push(FnNode { file: fi, item, facts: FnFacts::default() });
            }
        }

        let result_names = result_tally
            .into_iter()
            .filter(|(_, (res, total))| *res == *total && *res > 0)
            .map(|(name, _)| name)
            .collect();

        let mut graph = ItemGraph {
            files,
            fns,
            qual_index,
            bare_index,
            result_names,
            thread_locals,
            may_lock: Vec::new(),
        };
        graph.derive_facts();
        graph.fix_may_lock();
        graph
    }

    /// Crate name of a file (`crates/store/src/…` → `store`).
    pub fn crate_of(path: &str) -> &str {
        let mut parts = path.split('/');
        if parts.next() == Some("crates") {
            parts.next().unwrap_or("root")
        } else {
            "root"
        }
    }

    /// Fills [`FnFacts`] for every fn: lock sites, resolved calls,
    /// submit sites.
    fn derive_facts(&mut self) {
        let mut all_facts = Vec::with_capacity(self.fns.len());
        for node in &self.fns {
            let file = &self.files[node.file];
            let krate = Self::crate_of(file.path);
            let (lo, hi) = node.item.body.expect("graph holds only bodied fns");
            all_facts.push(FnFacts {
                locks: lock_sites(file.tokens, lo, hi, krate),
                submits: submit_sites(file.tokens, lo, hi),
                calls: self.call_sites(file.tokens, lo, hi, node.item.impl_type.as_deref()),
            });
        }
        for (node, facts) in self.fns.iter_mut().zip(all_facts) {
            node.facts = facts;
        }
    }

    /// Resolves call sites in `[lo, hi]` against the workspace indices.
    fn call_sites(
        &self,
        tokens: &[Tok],
        lo: usize,
        hi: usize,
        impl_type: Option<&str>,
    ) -> Vec<CallSite> {
        let mut out = Vec::new();
        for i in lo..=hi.min(tokens.len().saturating_sub(1)) {
            if tokens[i].kind != TokKind::Ident || i + 1 >= tokens.len() {
                continue;
            }
            if !tokens[i + 1].is_punct('(') {
                continue;
            }
            let name = tokens[i].text.as_str();
            if STMT_KEYWORDS.contains(&name) {
                continue;
            }
            let target = if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
                // `Type::name(` — qualified resolution; walk back to the
                // type identifier.
                if i >= 3 && tokens[i - 3].kind == TokKind::Ident {
                    self.qual_index.get(&format!("{}::{}", tokens[i - 3].text, name)).copied()
                } else {
                    None
                }
            } else if i >= 2 && tokens[i - 1].is_punct('.') && tokens[i - 2].is_ident("self") {
                // `self.name(` — resolve inside the enclosing impl first,
                // falling back to a unique bare definition.
                impl_type
                    .and_then(|t| self.qual_index.get(&format!("{t}::{name}")).copied())
                    .or_else(|| self.unique_bare(name))
            } else if i >= 1 && tokens[i - 1].is_punct('.') {
                // `recv.name(` — bare resolution only for distinctive
                // names with exactly one workspace definition.
                if COMMON_METHODS.contains(&name) {
                    None
                } else {
                    self.unique_bare(name)
                }
            } else {
                // `name(` free call.
                if COMMON_METHODS.contains(&name) {
                    None
                } else {
                    self.unique_bare(name)
                }
            };
            if let Some(target) = target {
                out.push(CallSite { target, tok: i, line: tokens[i].line });
            }
        }
        out
    }

    fn unique_bare(&self, name: &str) -> Option<usize> {
        match self.bare_index.get(name) {
            Some(ids) if ids.len() == 1 => Some(ids[0]),
            _ => None,
        }
    }

    /// Iterates may-lock to fixpoint over the call graph.
    fn fix_may_lock(&mut self) {
        let n = self.fns.len();
        let mut sets: Vec<BTreeSet<String>> = (0..n)
            .map(|i| self.fns[i].facts.locks.iter().map(|l| l.class.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                for call in &self.fns[i].facts.calls {
                    if call.target == i {
                        continue;
                    }
                    let add: Vec<String> = sets[call.target]
                        .iter()
                        .filter(|c| !sets[i].contains(*c))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        sets[i].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.may_lock = sets;
    }

    /// The classes a call site can acquire (empty when none).
    pub fn call_may_lock(&self, call: &CallSite) -> &BTreeSet<String> {
        &self.may_lock[call.target]
    }
}

/// Direct lock acquisitions in `[lo, hi]`: `recv.lock(` where the
/// receiver is a field or local (not `self` — that is a call to a
/// same-impl helper, handled through the call graph).
fn lock_sites(tokens: &[Tok], lo: usize, hi: usize, krate: &str) -> Vec<LockSite> {
    let mut out = Vec::new();
    let hi = hi.min(tokens.len().saturating_sub(1));
    for i in lo..=hi {
        if !(tokens[i].is_punct('.')
            && i + 2 <= hi
            && tokens[i + 1].is_ident("lock")
            && tokens[i + 2].is_punct('('))
        {
            continue;
        }
        // Walk back over an optional index expression (`slots[j].lock()`).
        let mut j = i.checked_sub(1);
        if let Some(k) = j {
            if tokens[k].is_punct(']') {
                j = match_bracket_back(tokens, k, lo).and_then(|open| open.checked_sub(1));
            }
        }
        let Some(k) = j else { continue };
        if tokens[k].kind != TokKind::Ident || tokens[k].text == "self" {
            continue;
        }
        let class = format!("{krate}::{}", tokens[k].text);
        let region_end = hold_region_end(tokens, k, i, hi);
        out.push(LockSite { class, tok: i, region_end, line: tokens[i].line });
    }
    out
}

/// Where the guard acquired at `.lock(` (token `dot`) with receiver at
/// `recv` stops being held: end of the enclosing block (or `drop(name)`)
/// for let-bound guards, end of the statement for temporaries.
fn hold_region_end(tokens: &[Tok], recv: usize, dot: usize, hi: usize) -> usize {
    // Is the statement a `let [mut] NAME = …`? Walk back a few tokens
    // from the receiver, stopping at statement boundaries.
    let mut bound: Option<&str> = None;
    let lo = recv.saturating_sub(12);
    let mut j = recv;
    while j > lo {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            // `let NAME =` or `let mut NAME =`.
            let mut k = j + 1;
            if k < tokens.len() && tokens[k].is_ident("mut") {
                k += 1;
            }
            if k < tokens.len() && tokens[k].kind == TokKind::Ident {
                bound = Some(tokens[k].text.as_str());
            }
            break;
        }
    }
    match bound {
        Some(name) => {
            // Held to the end of the enclosing block, or an explicit
            // `drop(name)`.
            let mut depth = 0i32;
            let mut k = dot;
            while k <= hi {
                let t = &tokens[k];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                } else if depth == 0
                    && t.is_ident("drop")
                    && k + 2 <= hi
                    && tokens[k + 1].is_punct('(')
                    && tokens[k + 2].is_ident(name)
                {
                    return k;
                }
                k += 1;
            }
            hi
        }
        None => {
            // Temporary guard: held to the end of the statement.
            let mut depth = 0i32;
            let mut k = dot;
            while k <= hi {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                } else if depth == 0 && t.is_punct(';') {
                    return k;
                }
                k += 1;
            }
            hi
        }
    }
}

/// Spawn/submit sites in `[lo, hi]`: `sched.run(…)` where `sched` is
/// scheduler-typed in this fn, any `.spawn(…)`, and `thread::spawn(…)`.
fn submit_sites(tokens: &[Tok], lo: usize, hi: usize) -> Vec<SubmitSite> {
    let scheds = scheduler_bindings(tokens, lo, hi);
    let mut out = Vec::new();
    let hi = hi.min(tokens.len().saturating_sub(1));
    for i in lo..=hi {
        if tokens[i].kind != TokKind::Ident || i + 1 > hi || !tokens[i + 1].is_punct('(') {
            continue;
        }
        let name = tokens[i].text.as_str();
        let is_submit = match name {
            "spawn" => true,
            "run" => {
                i >= 2
                    && tokens[i - 1].is_punct('.')
                    && tokens[i - 2].kind == TokKind::Ident
                    && scheds.contains(&tokens[i - 2].text)
            }
            _ => false,
        };
        if !is_submit {
            continue;
        }
        if let Some(close) = parser::match_paren(tokens, i + 1) {
            out.push(SubmitSite { tok: i, args: (i + 1, close.min(hi)), line: tokens[i].line });
        }
    }
    out
}

/// Names bound to a `BatchScheduler` in this fn: parameters annotated
/// with the type, and `let` bindings whose initializer statement
/// mentions it.
fn scheduler_bindings(tokens: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    // Scan a window that includes the signature (params precede the
    // body open brace); generous enough for generic-heavy signatures.
    let sig_lo = lo.saturating_sub(120);
    let hi = hi.min(tokens.len().saturating_sub(1));
    for i in sig_lo..=hi {
        if !tokens[i].is_ident("BatchScheduler") {
            continue;
        }
        // `name: [&][mut] BatchScheduler` — parameter or typed binding.
        let mut j = i;
        while j > sig_lo {
            j -= 1;
            let t = &tokens[j];
            if t.is_punct('&') || t.is_ident("mut") || t.is_punct('\'') {
                continue;
            }
            if t.is_punct(':') && j >= 1 && tokens[j - 1].kind == TokKind::Ident {
                out.insert(tokens[j - 1].text.clone());
            }
            break;
        }
        // `let [mut] name = … BatchScheduler …;` — walk back to the let.
        let stmt_lo = i.saturating_sub(24).max(sig_lo);
        let mut j = i;
        while j > stmt_lo {
            j -= 1;
            let t = &tokens[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                let mut k = j + 1;
                if k < tokens.len() && tokens[k].is_ident("mut") {
                    k += 1;
                }
                if k < tokens.len() && tokens[k].kind == TokKind::Ident {
                    out.insert(tokens[k].text.clone());
                }
                break;
            }
        }
    }
    out
}

/// Matching `[` for the `]` at `close`, scanning backwards to `floor`.
fn match_bracket_back(tokens: &[Tok], close: usize, floor: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        let t = &tokens[i];
        if t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('[') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == floor {
            return None;
        }
        i -= 1;
    }
}

/// Closures inside a submit site's argument list.
pub fn submit_closures(tokens: &[Tok], site: &SubmitSite) -> Vec<Closure> {
    parser::closures_in(tokens, site.args.0, site.args.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<(String, crate::lexer::Lexed, ParsedFile)>, ()) {
        let units: Vec<(String, crate::lexer::Lexed, ParsedFile)> = srcs
            .iter()
            .map(|(p, s)| {
                let lexed = lex(s);
                let parsed = parse(&lexed.tokens);
                (p.to_string(), lexed, parsed)
            })
            .collect();
        (units, ())
    }

    #[test]
    fn lock_classes_and_hold_regions() {
        let src = "
impl Store {
    fn put(&self) {
        let mut st = self.shards.lock();
        st.go();
        self.helper();
    }
    fn scan(&self) {
        for s in 0..4 {
            let g = self.shards[s].lock();
            g.look();
        }
        self.after();
    }
}
";
        let (units, ()) = graph_of(&[("crates/store/src/store.rs", src)]);
        let files = units
            .iter()
            .map(|(p, l, parsed)| FileInput { path: p, tokens: &l.tokens, parsed })
            .collect();
        let g = ItemGraph::build(files);
        assert_eq!(g.fns.len(), 2);
        let put = &g.fns[0].facts;
        assert_eq!(put.locks.len(), 1);
        assert_eq!(put.locks[0].class, "store::shards");
        // Held to the fn body's closing brace.
        let (_, body_hi) = g.fns[0].item.body.unwrap();
        assert_eq!(put.locks[0].region_end, body_hi);
        // The loop guard must not extend past the loop body: `self.after()`
        // lies outside its region.
        let scan = &g.fns[1];
        let toks = g.files[0].tokens;
        let after_tok = (0..toks.len()).find(|&i| toks[i].is_ident("after")).unwrap();
        assert!(scan.facts.locks[0].region_end < after_tok);
    }

    #[test]
    fn may_lock_propagates_through_calls() {
        let a = "
impl Store {
    fn lock_shard(&self) { let g = self.shards.lock(); g.use_it(); }
    fn outer(&self) { self.lock_shard(); }
}
";
        let (units, ()) = graph_of(&[("crates/store/src/a.rs", a)]);
        let files = units
            .iter()
            .map(|(p, l, parsed)| FileInput { path: p, tokens: &l.tokens, parsed })
            .collect();
        let g = ItemGraph::build(files);
        let outer = g.qual_index["Store::outer"];
        assert!(g.may_lock[outer].contains("store::shards"));
    }

    #[test]
    fn scheduler_run_is_a_submit_site_but_other_run_is_not() {
        let src = "
fn drive(sched: &BatchScheduler, d: &Derandomizer) {
    let out = sched.run(&jobs, |_i, j| go(j));
    let res = d.run(instance);
}
";
        let (units, ()) = graph_of(&[("crates/batch/src/x.rs", src)]);
        let files = units
            .iter()
            .map(|(p, l, parsed)| FileInput { path: p, tokens: &l.tokens, parsed })
            .collect();
        let g = ItemGraph::build(files);
        assert_eq!(g.fns[0].facts.submits.len(), 1);
    }

    #[test]
    fn result_names_require_unanimity() {
        let src = "
fn always() -> Result<u8, E> { Ok(1) }
impl A { fn mixed(&self) -> Result<u8, E> { Ok(1) } }
impl B { fn mixed(&self) -> u8 { 1 } }
";
        let (units, ()) = graph_of(&[("crates/core/src/x.rs", src)]);
        let files = units
            .iter()
            .map(|(p, l, parsed)| FileInput { path: p, tokens: &l.tokens, parsed })
            .collect();
        let g = ItemGraph::build(files);
        assert!(g.result_names.contains("always"));
        assert!(!g.result_names.contains("mixed"));
    }
}
