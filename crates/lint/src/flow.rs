//! The four flow-aware rules, each a traversal of the
//! [`ItemGraph`](crate::itemgraph::ItemGraph).
//!
//! * **lock-discipline** — builds the global lock-order graph from every
//!   guard hold region (edges `A → B` when `B` is acquired — directly or
//!   through a resolvable call — while `A` is held), then flags
//!   re-acquisition of a held class, edges that close a cross-file
//!   cycle, and guards held across a spawn/submit site.
//! * **thread-leak** — taints bindings derived from `thread_local!`
//!   statics or thread-confined types (`ViewArena`) and flags them when
//!   captured by a closure handed to a scheduler or thread spawn: the
//!   legitimate pattern accesses the thread-local *inside* the worker.
//! * **error-swallow** — flags `Result`s silently discarded in non-test
//!   code: `let _ = fallible(…)`, statement-terminal `.ok();`, and
//!   `Err(…) => {}` match arms, where "fallible" means every workspace
//!   definition of the called name returns `Result` (plus a short list
//!   of std fs operations).
//! * **commit-order** — inside the parallel drivers, flags result
//!   collection that depends on completion order: channel-based
//!   folding (`mpsc`, `recv`) and accumulation into a shared container
//!   from inside a submitted closure without a later index sort. The
//!   byte-identity guarantee requires committing by submission index.
//!
//! Findings come back as `(file index, RawFinding)`; the engine applies
//! `#[cfg(test)]` exemption and waiver resolution exactly as for the
//! per-file rules.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::itemgraph::{submit_closures, FnNode, ItemGraph, SubmitSite};
use crate::lexer::{Tok, TokKind};
use crate::parser::{match_paren, Closure};
use crate::rules::RawFinding;

/// Std filesystem calls that return `Result` and are commonly "fired
/// and forgotten"; their failures must be observed too.
const STD_RESULT_FNS: &[&str] =
    &["create_dir_all", "remove_dir_all", "remove_file", "copy", "rename", "hard_link"];

/// Runs every flow rule; returns `(file index, finding)` pairs.
pub fn run(graph: &ItemGraph<'_>, cfg: &Config) -> Vec<(usize, RawFinding)> {
    let mut out = Vec::new();
    lock_discipline(graph, cfg, &mut out);
    thread_leak(graph, cfg, &mut out);
    error_swallow(graph, cfg, &mut out);
    commit_order(graph, cfg, &mut out);
    out
}

fn raw(line: u32, rule: &'static str, message: String) -> RawFinding {
    RawFinding { line, rule, message }
}

fn in_scope(graph: &ItemGraph<'_>, scopes: &[String], file: usize) -> bool {
    Config::in_scopes(scopes, graph.files[file].path)
}

/// **lock-discipline** — the global lock-order graph.
fn lock_discipline(graph: &ItemGraph<'_>, cfg: &Config, out: &mut Vec<(usize, RawFinding)>) {
    // (from, to) → first site that witnesses the edge, in traversal
    // (= file/fn/token) order.
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();

    for node in &graph.fns {
        if !in_scope(graph, &cfg.lock_scopes, node.file) {
            continue;
        }
        for site in &node.facts.locks {
            // Direct re-acquisition or ordered acquisition while held.
            for other in &node.facts.locks {
                if other.tok > site.tok && other.tok <= site.region_end {
                    if other.class == site.class {
                        out.push((
                            node.file,
                            raw(
                                other.line,
                                "lock-discipline",
                                format!(
                                    "lock class `{}` acquired again while a guard for it is \
                                     still held (self-deadlock)",
                                    site.class
                                ),
                            ),
                        ));
                    } else {
                        edges
                            .entry((site.class.clone(), other.class.clone()))
                            .or_insert((node.file, other.line));
                    }
                }
            }
            // Acquisitions through resolvable callees.
            for call in &node.facts.calls {
                if call.tok <= site.tok || call.tok > site.region_end {
                    continue;
                }
                for class in graph.call_may_lock(call) {
                    if *class == site.class {
                        out.push((
                            node.file,
                            raw(
                                call.line,
                                "lock-discipline",
                                format!(
                                    "call re-enters lock class `{}` while a guard for it is \
                                     still held (self-deadlock through `{}`)",
                                    site.class,
                                    graph.fns[call.target].item.qualified()
                                ),
                            ),
                        ));
                    } else {
                        edges
                            .entry((site.class.clone(), class.clone()))
                            .or_insert((node.file, call.line));
                    }
                }
            }
            // Guards held across a submit/spawn: the worker can block on
            // the same class, or the submit can block while holding it.
            for submit in &node.facts.submits {
                if submit.tok > site.tok && submit.tok <= site.region_end {
                    out.push((
                        node.file,
                        raw(
                            submit.line,
                            "lock-discipline",
                            format!(
                                "guard for lock class `{}` held across a spawn/submit site; \
                                 release it before handing work to other threads",
                                site.class
                            ),
                        ),
                    ));
                }
            }
        }
    }

    // Cycle detection: flag every edge whose reversal is already implied,
    // i.e. `A → B` where `B ⇒* A` through the edge set.
    let adj: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            m.entry(a.as_str()).or_default().insert(b.as_str());
        }
        m
    };
    for ((a, b), (file, line)) in &edges {
        if reaches(&adj, b, a) {
            out.push((
                *file,
                raw(
                    *line,
                    "lock-discipline",
                    format!("lock-order cycle: acquiring `{b}` while holding `{a}` closes a cycle"),
                ),
            ));
        }
    }
}

/// Is `to` reachable from `from` over `adj`?
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// **thread-leak** — thread-local-derived bindings crossing into
/// submitted closures.
fn thread_leak(graph: &ItemGraph<'_>, cfg: &Config, out: &mut Vec<(usize, RawFinding)>) {
    for node in &graph.fns {
        if !in_scope(graph, &cfg.thread_leak_scopes, node.file) {
            continue;
        }
        if node.facts.submits.is_empty() {
            continue;
        }
        let tokens = graph.files[node.file].tokens;
        let tainted = tainted_bindings(graph, node, tokens, cfg);
        if tainted.is_empty() {
            continue;
        }
        for submit in &node.facts.submits {
            for closure in submit_closures(tokens, submit) {
                let params = closure_params(tokens, &closure);
                for name in &tainted {
                    if params.contains(name.as_str()) || shadowed_in(tokens, &closure, name) {
                        continue;
                    }
                    let used = (closure.body.0..=closure.body.1)
                        .any(|i| i < tokens.len() && tokens[i].is_ident(name));
                    if used {
                        out.push((
                            node.file,
                            raw(
                                tokens[closure.body.0].line,
                                "thread-leak",
                                format!(
                                    "binding `{name}` derives from thread-local state but is \
                                     captured by a closure submitted to another thread; access \
                                     the thread-local inside the worker instead"
                                ),
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Bindings in this fn whose initializer (or parameter type) mentions a
/// `thread_local!` static or a thread-confined type.
fn tainted_bindings(
    graph: &ItemGraph<'_>,
    node: &FnNode<'_>,
    tokens: &[Tok],
    cfg: &Config,
) -> BTreeSet<String> {
    let (lo, hi) = node.item.body.expect("graph holds only bodied fns");
    let hi = hi.min(tokens.len().saturating_sub(1));
    let is_source = |t: &Tok| {
        t.kind == TokKind::Ident
            && (graph.thread_locals.contains(&t.text) || cfg.thread_local_types.contains(&t.text))
    };
    let mut out = BTreeSet::new();
    // `let [mut] NAME = … SOURCE … ;` statements in the body.
    let mut i = lo;
    while i <= hi {
        if tokens[i].is_ident("let") {
            let mut k = i + 1;
            if k <= hi && tokens[k].is_ident("mut") {
                k += 1;
            }
            if k <= hi && tokens[k].kind == TokKind::Ident && tokens[k].text != "_" {
                let name = tokens[k].text.clone();
                // Scan the statement to its `;` at depth 0.
                let mut depth = 0i32;
                let mut j = k + 1;
                let mut mentions = false;
                while j <= hi {
                    let t = &tokens[j];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if is_source(t) {
                        mentions = true;
                    }
                    j += 1;
                }
                if mentions {
                    out.insert(name);
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    // Parameters typed with a thread-confined type: `NAME : [&][mut] TYPE`.
    let sig_lo = lo.saturating_sub(120);
    for i in sig_lo..lo {
        if !is_source(&tokens[i]) {
            continue;
        }
        let mut j = i;
        while j > sig_lo {
            j -= 1;
            let t = &tokens[j];
            if t.is_punct('&') || t.is_ident("mut") {
                continue;
            }
            if t.is_punct(':') && j >= 1 && tokens[j - 1].kind == TokKind::Ident {
                out.insert(tokens[j - 1].text.clone());
            }
            break;
        }
    }
    out
}

/// The closure's parameter names.
fn closure_params<'t>(tokens: &'t [Tok], closure: &Closure) -> BTreeSet<&'t str> {
    let mut out = BTreeSet::new();
    let mut i = closure.params_open + 1;
    while i < tokens.len() && !tokens[i].is_punct('|') {
        if tokens[i].kind == TokKind::Ident && tokens[i].text != "mut" {
            out.insert(tokens[i].text.as_str());
        }
        i += 1;
    }
    out
}

/// Is `name` re-bound by a `let` inside the closure body?
fn shadowed_in(tokens: &[Tok], closure: &Closure, name: &str) -> bool {
    (closure.body.0..closure.body.1).any(|i| {
        tokens[i].is_ident("let")
            && i + 2 < tokens.len()
            && (tokens[i + 1].is_ident(name)
                || (tokens[i + 1].is_ident("mut") && tokens[i + 2].is_ident(name)))
    })
}

/// **error-swallow** — silently discarded `Result`s.
fn error_swallow(graph: &ItemGraph<'_>, cfg: &Config, out: &mut Vec<(usize, RawFinding)>) {
    for node in &graph.fns {
        if !in_scope(graph, &cfg.error_swallow_scopes, node.file) {
            continue;
        }
        let tokens = graph.files[node.file].tokens;
        let (lo, hi) = node.item.body.expect("graph holds only bodied fns");
        let hi = hi.min(tokens.len().saturating_sub(1));
        let fallible =
            |name: &str| graph.result_names.contains(name) || STD_RESULT_FNS.contains(&name);

        let mut i = lo;
        while i <= hi {
            // `let _ = …;` discarding a fallible call.
            if tokens[i].is_ident("let")
                && i + 2 <= hi
                && tokens[i + 1].is_ident("_")
                && tokens[i + 2].is_punct('=')
            {
                let mut depth = 0i32;
                let mut j = i + 3;
                let mut culprit: Option<&str> = None;
                while j <= hi {
                    let t = &tokens[j];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    }
                    if t.kind == TokKind::Ident
                        && j < hi
                        && tokens[j + 1].is_punct('(')
                        && fallible(&t.text)
                        && culprit.is_none()
                    {
                        culprit = Some(t.text.as_str());
                    }
                    j += 1;
                }
                if let Some(name) = culprit {
                    out.push((
                        node.file,
                        raw(
                            tokens[i].line,
                            "error-swallow",
                            format!(
                                "`let _` discards the Result of `{name}`; handle the error or \
                                 bind and report it"
                            ),
                        ),
                    ));
                }
                i = j;
                continue;
            }
            // Statement-terminal `.ok();` — the error is never observed.
            if tokens[i].is_punct('.')
                && i + 4 <= hi
                && tokens[i + 1].is_ident("ok")
                && tokens[i + 2].is_punct('(')
                && tokens[i + 3].is_punct(')')
                && tokens[i + 4].is_punct(';')
                && !statement_binds(tokens, lo, i)
            {
                out.push((
                    node.file,
                    raw(
                        tokens[i + 1].line,
                        "error-swallow",
                        "statement-terminal `.ok()` swallows the error; handle it or \
                         propagate with `?`"
                            .to_string(),
                    ),
                ));
                i += 5;
                continue;
            }
            // `Err(_) => {}` / `Err(..) => ()` — the error is matched away
            // without even naming a variant. An arm that matches a
            // specific error variant (`Err(E::Known { .. }) => {}`) has
            // observed the error and is deliberate handling.
            if tokens[i].is_ident("Err") && i < hi && tokens[i + 1].is_punct('(') {
                if let Some(close) = match_paren(tokens, i + 1) {
                    let discriminates = (i + 2..close).any(|j| {
                        tokens[j].kind == TokKind::Ident && !tokens[j].text.starts_with('_')
                    });
                    let empty_block = !discriminates
                        && close + 2 <= hi
                        && tokens[close + 1].is_punct('=')
                        && tokens[close + 2].is_punct('>')
                        && close + 4 <= hi
                        && ((tokens[close + 3].is_punct('{') && tokens[close + 4].is_punct('}'))
                            || (tokens[close + 3].is_punct('(')
                                && tokens[close + 4].is_punct(')')));
                    if empty_block {
                        out.push((
                            node.file,
                            raw(
                                tokens[i].line,
                                "error-swallow",
                                "match arm discards the error without observing it".to_string(),
                            ),
                        ));
                    }
                }
            }
            i += 1;
        }
    }
}

/// Does the statement containing token `at` bind or return its value?
/// (`let x = f().ok();`, `return f().ok();`, `x = f().ok();` all do.)
fn statement_binds(tokens: &[Tok], floor: usize, at: usize) -> bool {
    let mut depth = 0i32;
    let mut i = at;
    while i > floor {
        i -= 1;
        let t = &tokens[i];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                return false;
            }
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(';') {
                return false;
            }
            if t.is_ident("let") || t.is_ident("return") || t.is_punct('=') {
                return true;
            }
        }
    }
    false
}

/// **commit-order** — completion-order result folding in the parallel
/// drivers.
fn commit_order(graph: &ItemGraph<'_>, cfg: &Config, out: &mut Vec<(usize, RawFinding)>) {
    const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout"];
    const ACCUM_METHODS: &[&str] = &["push", "extend", "append"];

    for node in &graph.fns {
        if !in_scope(graph, &cfg.commit_order_scopes, node.file) {
            continue;
        }
        let tokens = graph.files[node.file].tokens;
        let (lo, hi) = node.item.body.expect("graph holds only bodied fns");
        let hi = hi.min(tokens.len().saturating_sub(1));

        // Channel-based folding: arrival order is completion order.
        let mut flagged_lines = BTreeSet::new();
        for i in lo..=hi {
            let hit = tokens[i].is_ident("mpsc")
                || (tokens[i].is_punct('.')
                    && i + 2 <= hi
                    && tokens[i + 1].kind == TokKind::Ident
                    && RECV_METHODS.contains(&tokens[i + 1].text.as_str())
                    && tokens[i + 2].is_punct('('));
            if hit && flagged_lines.insert(tokens[i].line) {
                out.push((
                    node.file,
                    raw(
                        tokens[i].line,
                        "commit-order",
                        "channel receive folds parallel results in completion order; commit \
                         by submission index to keep outputs byte-identical"
                            .to_string(),
                    ),
                ));
            }
        }

        // Accumulation into an outer container from inside a submitted
        // closure, with no later index sort.
        for submit in &node.facts.submits {
            for closure in submit_closures(tokens, submit) {
                let params = closure_params(tokens, &closure);
                for i in closure.body.0..=closure.body.1.min(hi) {
                    if !(tokens[i].is_punct('.')
                        && i + 2 <= hi
                        && tokens[i + 1].kind == TokKind::Ident
                        && ACCUM_METHODS.contains(&tokens[i + 1].text.as_str())
                        && tokens[i + 2].is_punct('('))
                    {
                        continue;
                    }
                    let Some(head) = chain_head(tokens, i, closure.body.0) else { continue };
                    let name = tokens[head].text.as_str();
                    if params.contains(name)
                        || declared_in(tokens, closure.body.0, i, name)
                        || sorted_later(tokens, submit, hi, name)
                    {
                        continue;
                    }
                    out.push((
                        node.file,
                        raw(
                            tokens[i + 1].line,
                            "commit-order",
                            format!(
                                "worker closure accumulates into `{name}` in completion \
                                 order; commit results keyed by submission index instead"
                            ),
                        ),
                    ));
                }
            }
        }
    }
}

/// The identifier heading a postfix chain ending at the `.` at `dot`:
/// `results.lock().push(` → `results`. Walks back over `)`→`(` pairs,
/// `]`→`[` pairs, and `.`-joined idents.
fn chain_head(tokens: &[Tok], dot: usize, floor: usize) -> Option<usize> {
    let mut i = dot;
    let mut head: Option<usize> = None;
    while i > floor {
        i -= 1;
        let t = &tokens[i];
        if t.is_punct(')') {
            let mut depth = 1i32;
            while i > floor && depth > 0 {
                i -= 1;
                if tokens[i].is_punct(')') {
                    depth += 1;
                } else if tokens[i].is_punct('(') {
                    depth -= 1;
                }
            }
            continue;
        }
        if t.is_punct(']') {
            let mut depth = 1i32;
            while i > floor && depth > 0 {
                i -= 1;
                if tokens[i].is_punct(']') {
                    depth += 1;
                } else if tokens[i].is_punct('[') {
                    depth -= 1;
                }
            }
            continue;
        }
        if t.kind == TokKind::Ident {
            head = Some(i);
            continue;
        }
        if t.is_punct('.') {
            continue;
        }
        break;
    }
    head
}

/// Is `name` declared by a `let` between `lo` and `at`?
fn declared_in(tokens: &[Tok], lo: usize, at: usize, name: &str) -> bool {
    (lo..at).any(|i| {
        tokens[i].is_ident("let")
            && i + 2 < tokens.len()
            && (tokens[i + 1].is_ident(name)
                || (tokens[i + 1].is_ident("mut") && tokens[i + 2].is_ident(name)))
    })
}

/// Is `name` sorted (any `sort*` method) after the submit site?
fn sorted_later(tokens: &[Tok], submit: &SubmitSite, hi: usize, name: &str) -> bool {
    (submit.args.1..=hi).any(|i| {
        tokens[i].is_ident(name)
            && i + 2 <= hi
            && tokens[i + 1].is_punct('.')
            && tokens[i + 2].kind == TokKind::Ident
            && tokens[i + 2].text.starts_with("sort")
    })
}
