//! The `anonet-lint` CLI.
//!
//! ```text
//! anonet-lint check [--root DIR] [--json PATH] [--stats]
//! ```
//!
//! Exit codes: `0` clean (no unwaived findings), `1` unwaived findings,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use anonet_lint::{run_check, Config};

const USAGE: &str = "usage: anonet-lint check [--root DIR] [--json PATH] [--stats]

Checks the anonet workspace against its domain invariants:
  determinism     no unordered hash iteration in the deterministic stage
  anonymity       no raw node identities in algorithm code
  randomness      rand/rand_chacha confined to the sanctioned modules
  panic-hygiene   no unwrap/expect/panic! in hot paths
  obs-naming      metric names follow subsystem.noun[.verb]

Flow-aware rules over the workspace item graph:
  lock-discipline no lock-order cycles, re-entry, or guards held across
                  spawn/submit sites
  thread-leak     thread-local-derived state must not be captured by
                  closures submitted to other threads
  error-swallow   no Result discarded via `let _`, terminal `.ok()`, or
                  empty Err match arms in non-test code
  commit-order    parallel drivers commit results by submission index,
                  never completion order

Findings are suppressed inline, with a mandatory reason:
  // anonet-lint: allow(<rule>, reason = \"...\")

Options:
  --root DIR    workspace root (default: current directory)
  --json PATH   also write a machine-readable report to PATH
  --stats       print per-rule finding and waiver counts
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("anonet-lint: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses arguments and runs the check; `Ok(true)` means clean.
fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("missing command".to_string()),
    }

    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut stats = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                json_path = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--stats" => stats = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let cfg = Config::workspace();
    let report = run_check(&root, &cfg).map_err(|e| format!("walk failed: {e}"))?;
    if report.files_scanned == 0 {
        // A clean exit on an empty scan would let a misconfigured CI
        // checkout pass silently.
        return Err(format!("no source files found under {}", root.display()));
    }

    print!("{}", report.render_text());
    if stats {
        print!("{}", report.render_stats());
    }
    if let Some(path) = json_path {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
            }
        }
        std::fs::write(&path, report.to_json().pretty())
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("anonet-lint: report written to {}", path.display());
    }
    Ok(report.unwaived() == 0)
}
