//! The inline waiver syntax.
//!
//! A finding is suppressed by an adjacent comment:
//!
//! ```text
//! // anonet-lint: allow(determinism, reason = "identity map, never iterated")
//! ```
//!
//! A line waiver covers its own line and the line immediately below it
//! (so it works both as a trailing comment and on the line above the
//! flagged code). A whole file is waived for one rule with
//! `allow-file(<rule>, reason = "...")`, for the rare module whose entire
//! purpose is exempt (e.g. seeded instance generators).
//!
//! Waivers are themselves linted: a waiver without a parseable rule name,
//! an unknown rule, or a missing/empty `reason` is a finding of the
//! `waiver` rule — deny-by-default means sloppy suppressions do not pass.

/// One parsed waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// The required human reason.
    pub reason: String,
    /// Comment line (1-indexed).
    pub line: u32,
    /// `true` for `allow-file` (covers the whole file).
    pub file_scope: bool,
}

/// A waiver that failed to parse; reported as a `waiver`-rule finding.
#[derive(Clone, Debug)]
pub struct MalformedWaiver {
    /// Comment line (1-indexed).
    pub line: u32,
    /// What was wrong.
    pub detail: String,
}

/// The comment marker that introduces a waiver.
pub const MARKER: &str = "anonet-lint:";

/// Extracts waivers (and malformed waiver attempts) from comment lines.
pub fn extract(
    comments: &[(u32, String)],
    known_rules: &[&str],
) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for (line, text) in comments {
        // Waivers live in plain `//` comments only: doc comments quoting
        // the syntax (like the module docs above) must not parse as real
        // waivers.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let mut rest = text.as_str();
        while let Some(pos) = rest.find(MARKER) {
            rest = &rest[pos + MARKER.len()..];
            match parse_one(rest, known_rules) {
                Ok((w, consumed)) => {
                    waivers.push(Waiver { line: *line, ..w });
                    rest = &rest[consumed..];
                }
                Err(detail) => {
                    malformed.push(MalformedWaiver { line: *line, detail });
                    break;
                }
            }
        }
    }
    (waivers, malformed)
}

/// Parses `allow(rule, reason = "...")` or `allow-file(...)` from the text
/// after the marker; returns the waiver and how many bytes were consumed.
fn parse_one(text: &str, known_rules: &[&str]) -> Result<(Waiver, usize), String> {
    // A small cursor over `text`; `pos` is always a char boundary because
    // every delimiter in the syntax is ASCII.
    let mut pos = text.len() - text.trim_start().len();
    let eat = |pos: &mut usize, expected: &str| -> bool {
        if text[*pos..].starts_with(expected) {
            *pos += expected.len();
            true
        } else {
            false
        }
    };
    let skip_ws = |pos: &mut usize| {
        *pos += text[*pos..].len() - text[*pos..].trim_start().len();
    };

    // `allow-file` must be tried before its prefix `allow`.
    let file_scope = if eat(&mut pos, "allow-file") {
        true
    } else if eat(&mut pos, "allow") {
        false
    } else {
        return Err("expected `allow(...)` or `allow-file(...)` after `anonet-lint:`".into());
    };
    skip_ws(&mut pos);
    if !eat(&mut pos, "(") {
        return Err("expected `(` after `allow`/`allow-file`".into());
    }
    skip_ws(&mut pos);
    let rule_end = text[pos..]
        .find([',', ')'])
        .map(|o| pos + o)
        .ok_or_else(|| "unterminated waiver: missing `)`".to_string())?;
    let rule = text[pos..rule_end].trim();
    if !known_rules.contains(&rule) {
        return Err(format!("unknown rule `{rule}` (known: {})", known_rules.join(", ")));
    }
    if text[rule_end..].starts_with(')') {
        return Err(format!(
            "waiver for `{rule}` is missing `reason = \"...\"` — every waiver must say why"
        ));
    }
    pos = rule_end + 1;
    skip_ws(&mut pos);
    if !eat(&mut pos, "reason") {
        return Err("expected `reason = \"...\"` after the rule name".into());
    }
    skip_ws(&mut pos);
    if !eat(&mut pos, "=") {
        return Err("expected `=` after `reason`".into());
    }
    skip_ws(&mut pos);
    if !eat(&mut pos, "\"") {
        return Err("expected a quoted reason string".into());
    }
    let reason_end = text[pos..]
        .find('"')
        .map(|o| pos + o)
        .ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = text[pos..reason_end].trim().to_string();
    if reason.is_empty() {
        return Err(format!("waiver for `{rule}` has an empty reason"));
    }
    pos = reason_end + 1;
    skip_ws(&mut pos);
    if !eat(&mut pos, ")") {
        return Err("expected `)` to close the waiver".into());
    }

    Ok((Waiver { rule: rule.to_string(), reason, line: 0, file_scope }, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["determinism", "randomness"];

    fn one(text: &str) -> Result<Waiver, String> {
        parse_one(text, RULES).map(|(w, _)| w)
    }

    #[test]
    fn parses_line_waiver() {
        let w = one(r#" allow(determinism, reason = "identity map")"#).unwrap();
        assert_eq!(w.rule, "determinism");
        assert_eq!(w.reason, "identity map");
        assert!(!w.file_scope);
    }

    #[test]
    fn parses_file_waiver() {
        let w = one(r#" allow-file(randomness, reason = "instance generators")"#).unwrap();
        assert!(w.file_scope);
        assert_eq!(w.rule, "randomness");
    }

    #[test]
    fn missing_reason_is_malformed() {
        assert!(one(" allow(determinism)").is_err());
        assert!(one(r#" allow(determinism, reason = "")"#).is_err());
        assert!(one(r#" allow(determinism, reason = "  ")"#).is_err());
    }

    #[test]
    fn unknown_rule_is_malformed() {
        assert!(one(r#" allow(no_such_rule, reason = "x")"#).is_err());
    }

    #[test]
    fn extract_walks_comments() {
        let comments = vec![
            (3u32, r#"// anonet-lint: allow(determinism, reason = "lookup only")"#.to_string()),
            (9u32, "// anonet-lint: allow(determinism)".to_string()),
            (12u32, "// plain comment".to_string()),
        ];
        let (ws, bad) = extract(&comments, RULES);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].line, 3);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].line, 9);
    }
}
