//! Which rules apply where.
//!
//! Scopes are workspace-relative path prefixes with forward slashes. The
//! defaults in [`Config::workspace`] encode the anonet architecture:
//! which crates form the deterministic stage, which module is the
//! sanctioned randomness layer, and which hot paths must not panic. A
//! rule with an empty scope list never fires.

/// Path scoping for every rule.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates whose outputs must be bit-for-bit reproducible: the
    /// `determinism` rule flags unordered hash iteration here.
    pub determinism_scopes: Vec<String>,
    /// Where the `anonymity` rule applies (algorithm code).
    pub anonymity_scopes: Vec<String>,
    /// Modules inside the anonymity scope that legitimately read node
    /// identities: global-observer problem verifiers.
    pub anonymity_sanctioned: Vec<String>,
    /// Path prefixes where `rand`/`rand_chacha` are allowed: the
    /// sanctioned randomness layer, plus test/bench tooling crates.
    pub randomness_exempt: Vec<String>,
    /// Hot paths where `unwrap`/`expect`/`panic!` are forbidden.
    pub panic_scopes: Vec<String>,
    /// The file defining the `names` metric-constant module.
    pub obs_names_file: String,
    /// Where literal metric names at call sites are flagged.
    pub obs_callsite_scopes: Vec<String>,
    /// Where the `lock-discipline` flow rule applies.
    pub lock_scopes: Vec<String>,
    /// Where the `thread-leak` flow rule applies.
    pub thread_leak_scopes: Vec<String>,
    /// Where the `error-swallow` flow rule applies.
    pub error_swallow_scopes: Vec<String>,
    /// Where the `commit-order` flow rule applies: the parallel drivers
    /// whose byte-identity depends on submission-order commits.
    pub commit_order_scopes: Vec<String>,
    /// Types that are thread-confined by design: a binding derived from
    /// one must not cross into a submitted closure (`thread-leak`).
    pub thread_local_types: Vec<String>,
}

impl Config {
    /// The anonet workspace policy.
    pub fn workspace() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        Config {
            // The deterministic stage `A_*` and everything feeding its
            // canonical encodings: byte-identical outputs are promised by
            // the batch cache, the threaded engine, and the conformance
            // oracles.
            determinism_scopes: s(&[
                "crates/core/src/",
                "crates/views/src/",
                "crates/factor/src/",
                "crates/graph/src/",
            ]),
            anonymity_scopes: s(&["crates/algorithms/src/"]),
            // Problem verifiers are global observers by definition
            // (they judge outputs, they don't run on nodes).
            anonymity_sanctioned: s(&[
                "crates/algorithms/src/problems.rs",
                "crates/algorithms/src/verify.rs",
            ]),
            randomness_exempt: s(&[
                // The one sanctioned randomness abstraction: everything
                // else draws bits through `RandomSource`.
                "crates/runtime/src/randomness.rs",
                // Test/bench tooling builds instances, not pipeline state.
                "crates/testkit/",
                "crates/bench/",
            ]),
            panic_scopes: s(&[
                "crates/runtime/src/",
                "crates/batch/src/scheduler.rs",
                "crates/core/src/astar.rs",
                "crates/core/src/astar_cache.rs",
                // The persistent store sits under every cached run and
                // must degrade to errors, never aborts.
                "crates/store/src/",
                "crates/batch/src/persist.rs",
                // The soak driver is itself a gate: a panic mid-campaign
                // loses the replay strings the gate exists to report.
                "crates/soak/src/",
                // The arena is the per-node hot path of every encoding:
                // a panic there takes out whole batch workers.
                "crates/views/src/arena.rs",
                "crates/batch/src/views_par.rs",
                // The trace CLI is forensic tooling: it must report a
                // broken log as an error, never die on it.
                "crates/trace/src/",
            ]),
            obs_names_file: "crates/obs/src/lib.rs".to_string(),
            obs_callsite_scopes: s(&["crates/", "src/"]),
            // The flow rules see the whole workspace: lock order and
            // error propagation are global properties.
            lock_scopes: s(&["crates/", "src/"]),
            thread_leak_scopes: s(&["crates/", "src/"]),
            error_swallow_scopes: s(&["crates/", "src/"]),
            // Only the parallel drivers promise byte-identical commits.
            commit_order_scopes: s(&[
                "crates/batch/src/",
                "crates/core/src/astar.rs",
                "crates/core/src/batch.rs",
            ]),
            thread_local_types: s(&["ViewArena"]),
        }
    }

    /// `true` iff `path` starts with any prefix in `scopes`.
    pub fn in_scopes(scopes: &[String], path: &str) -> bool {
        scopes.iter().any(|p| path.starts_with(p.as_str()))
    }
}
