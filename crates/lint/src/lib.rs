//! `anonet-lint`: domain-invariant static analysis for the anonet
//! workspace.
//!
//! The pipeline (see DESIGN.md §9) rests on invariants no general-purpose
//! linter knows about: the deterministic stage must never observe hash
//! order, algorithm code must never read a raw node identity, randomness
//! is confined to the 2-hop-coloring preprocessing layer, hot paths
//! return typed errors instead of panicking, and every metric name
//! follows `subsystem.noun[.verb]`. This crate enforces all five with a
//! hand-written lexer ([`lexer`]), per-rule token scanners ([`rules`]),
//! path scoping ([`config`]), and deny-by-default inline waivers
//! ([`waiver`]).
//!
//! Since PR 10 the engine is flow-aware: a lightweight parser layer
//! ([`parser`]) recovers each file's item skeleton, [`itemgraph`]
//! assembles the workspace-wide item graph (fn index, approximate call
//! graph, lock/submit/thread-local facts), and [`flow`] runs four
//! cross-file rules on that IR — `lock-discipline`, `thread-leak`,
//! `error-swallow`, and `commit-order` (DESIGN.md §14). Flow findings
//! go through the same `#[cfg(test)]` exemption and waiver machinery as
//! the token rules.
//!
//! The binary (`cargo run -p anonet-lint -- check`) walks every `src/`
//! tree under `crates/`, prints `file:line rule message` per finding,
//! and exits non-zero on any unwaived finding. `--json` writes a
//! machine-readable report through the shared [`anonet_obs::Json`]
//! serializer; `--stats` prints per-rule finding and waiver counts.

pub mod config;
pub mod flow;
pub mod itemgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod waiver;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use anonet_obs::Json;

pub use config::Config;
pub use rules::RULES;

/// One finding, after waiver resolution.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// `true` if an adjacent (or file-scope) waiver covers it.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

/// The result of checking one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// All findings, waived and unwaived.
    pub findings: Vec<Finding>,
    /// How many well-formed waivers the file declares.
    pub waivers_total: usize,
    /// Well-formed waivers that suppressed nothing: `(line, rule)`.
    pub unused_waivers: Vec<(u32, String)>,
}

/// Runs every applicable rule over one file's source.
///
/// `rel_path` is the workspace-relative path with forward slashes; it
/// selects which rules apply per [`Config`]. Findings on lines inside
/// `#[cfg(test)]` regions are dropped (tests may use hash iteration,
/// panics, and raw identities freely); malformed waivers become findings
/// of the un-waivable `waiver` rule.
///
/// This is the single-file view of [`check_workspace`]: the flow rules
/// run too, over the one-file item graph (cross-file facts are simply
/// absent).
pub fn check_source(rel_path: &str, src: &str, cfg: &Config) -> FileReport {
    let files = [(rel_path.to_string(), src.to_string())];
    let report = check_workspace(&files, cfg);
    FileReport {
        findings: report.findings,
        waivers_total: report.waivers_total,
        unused_waivers: report.unused_waivers.into_iter().map(|(_, l, r)| (l, r)).collect(),
    }
}

/// One file's scanned state inside the workspace pipeline.
struct Unit {
    path: String,
    lexed: lexer::Lexed,
    parsed: parser::ParsedFile,
    regions: Vec<(u32, u32)>,
    raw: Vec<rules::RawFinding>,
}

/// Checks a set of `(workspace-relative path, source)` files as one
/// workspace: per-file token rules, then the flow rules over the item
/// graph built from *all* files, then `#[cfg(test)]` exemption and
/// waiver resolution per file.
///
/// Files are processed in sorted path order regardless of input order,
/// so the report — findings, waiver accounting, everything — is a pure
/// function of the file *set*. The analyzer itself is deterministic.
pub fn check_workspace(files: &[(String, String)], cfg: &Config) -> Report {
    let mut order: Vec<usize> = (0..files.len()).collect();
    order.sort_by(|&a, &b| files[a].0.cmp(&files[b].0));

    let mut units: Vec<Unit> = order
        .into_iter()
        .map(|i| {
            let (path, src) = &files[i];
            let lexed = lexer::lex(src);
            let regions = lexer::test_regions(&lexed.tokens);
            let parsed = parser::parse(&lexed.tokens);
            Unit { path: path.clone(), lexed, parsed, regions, raw: Vec::new() }
        })
        .collect();

    // Per-file token rules.
    for unit in &mut units {
        let rel_path = unit.path.as_str();
        let tokens = &unit.lexed.tokens;
        if Config::in_scopes(&cfg.determinism_scopes, rel_path) {
            unit.raw.extend(rules::determinism(tokens));
        }
        if Config::in_scopes(&cfg.anonymity_scopes, rel_path)
            && !Config::in_scopes(&cfg.anonymity_sanctioned, rel_path)
        {
            unit.raw.extend(rules::anonymity(tokens));
        }
        if !Config::in_scopes(&cfg.randomness_exempt, rel_path) {
            unit.raw.extend(rules::randomness(tokens));
        }
        if Config::in_scopes(&cfg.panic_scopes, rel_path) {
            unit.raw.extend(rules::panic_hygiene(tokens));
        }
        if Config::in_scopes(&cfg.obs_callsite_scopes, rel_path) || rel_path == cfg.obs_names_file {
            unit.raw.extend(rules::obs_naming(rel_path, tokens, cfg));
        }
    }

    // Flow rules over the workspace item graph.
    let flow_findings = {
        let inputs: Vec<itemgraph::FileInput<'_>> = units
            .iter()
            .map(|u| itemgraph::FileInput {
                path: u.path.as_str(),
                tokens: &u.lexed.tokens,
                parsed: &u.parsed,
            })
            .collect();
        let graph = itemgraph::ItemGraph::build(inputs);
        flow::run(&graph, cfg)
    };
    for (file_idx, f) in flow_findings {
        units[file_idx].raw.push(f);
    }

    // Test-region exemption and waiver resolution, per file.
    let mut report = Report::default();
    for unit in &mut units {
        let rel_path = unit.path.as_str();
        let (waivers, malformed) = waiver::extract(&unit.lexed.comments, RULES);
        unit.raw.retain(|f| !lexer::in_regions(&unit.regions, f.line));
        unit.raw.sort_by_key(|f| (f.line, f.rule));

        let mut used = vec![false; waivers.len()];
        let mut findings: Vec<Finding> = unit
            .raw
            .drain(..)
            .map(|f| {
                let hit = waivers.iter().enumerate().find(|(_, w)| {
                    w.rule == f.rule && (w.file_scope || w.line == f.line || w.line + 1 == f.line)
                });
                let (waived, reason) = match hit {
                    Some((i, w)) => {
                        used[i] = true;
                        (true, Some(w.reason.clone()))
                    }
                    None => (false, None),
                };
                Finding {
                    file: rel_path.to_string(),
                    line: f.line,
                    rule: f.rule,
                    message: f.message,
                    waived,
                    reason,
                }
            })
            .collect();

        // Malformed waivers are findings in their own right and can never
        // be suppressed — otherwise a broken waiver could waive itself.
        for m in &malformed {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: m.line,
                rule: "waiver",
                message: format!("malformed waiver: {}", m.detail),
                waived: false,
                reason: None,
            });
        }
        findings.sort_by_key(|f| (f.line, f.rule));

        report.files_scanned += 1;
        report.waivers_total += waivers.len();
        report.unused_waivers.extend(
            waivers
                .iter()
                .zip(&used)
                .filter(|(_, u)| !**u)
                .map(|(w, _)| (rel_path.to_string(), w.line, w.rule.clone())),
        );
        report.findings.extend(findings);
    }
    report
}

/// The whole-workspace report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// How many files were scanned.
    pub files_scanned: usize,
    /// All findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Total well-formed waivers declared.
    pub waivers_total: usize,
    /// Waivers that suppressed nothing: `(file, line, rule)`.
    pub unused_waivers: Vec<(String, u32, String)>,
}

impl Report {
    /// Findings not covered by a waiver (the CI-gating count).
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| !f.waived).count()
    }

    /// Findings suppressed by a waiver.
    pub fn waived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// `(rule, unwaived, waived)` for every rule, in [`RULES`] order.
    pub fn by_rule(&self) -> Vec<(&'static str, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                let unw = self.findings.iter().filter(|f| f.rule == *r && !f.waived).count();
                let w = self.findings.iter().filter(|f| f.rule == *r && f.waived).count();
                (*r, unw, w)
            })
            .collect()
    }

    /// The machine-readable report (written by `--json`).
    pub fn to_json(&self) -> Json {
        let findings = Json::arr(self.findings.iter().map(|f| {
            Json::obj([
                ("file", Json::str(f.file.as_str())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::str(f.rule)),
                ("message", Json::str(f.message.as_str())),
                ("waived", Json::Bool(f.waived)),
                ("reason", f.reason.as_deref().map(Json::str).unwrap_or(Json::Null)),
            ])
        }));
        let by_rule = Json::obj(self.by_rule().into_iter().map(|(rule, unw, w)| {
            (
                rule,
                Json::obj([("unwaived", Json::Num(unw as f64)), ("waived", Json::Num(w as f64))]),
            )
        }));
        let unused = Json::arr(self.unused_waivers.iter().map(|(file, line, rule)| {
            Json::obj([
                ("file", Json::str(file.as_str())),
                ("line", Json::Num(*line as f64)),
                ("rule", Json::str(rule.as_str())),
            ])
        }));
        Json::obj([
            ("tool", Json::str("anonet-lint")),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("unwaived", Json::Num(self.unwaived() as f64)),
            ("waived", Json::Num(self.waived() as f64)),
            ("waivers_total", Json::Num(self.waivers_total as f64)),
            ("findings", findings),
            ("by_rule", by_rule),
            ("unused_waivers", unused),
        ])
    }

    /// `file:line rule message` lines (unwaived findings only), plus a
    /// one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| !f.waived) {
            out.push_str(&format!("{}:{} {} {}\n", f.file, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "anonet-lint: {} unwaived finding(s), {} waived, {} file(s) scanned\n",
            self.unwaived(),
            self.waived(),
            self.files_scanned
        ));
        out
    }

    /// The `--stats` table: per-rule counts plus waiver accounting.
    pub fn render_stats(&self) -> String {
        let mut out = String::from("rule            unwaived  waived\n");
        for (rule, unw, w) in self.by_rule() {
            out.push_str(&format!("{rule:<16}{unw:>8}{w:>8}\n"));
        }
        out.push_str(&format!(
            "waivers: {} declared, {} unused\n",
            self.waivers_total,
            self.unused_waivers.len()
        ));
        for (file, line, rule) in &self.unused_waivers {
            out.push_str(&format!("  unused waiver {file}:{line} ({rule})\n"));
        }
        out
    }
}

/// Checks every workspace source file under `root`.
///
/// Scans `crates/*/src/**` and the root `src/` tree (test, bench, and
/// example trees are out of scope by design; fixture corpora under any
/// `fixtures` directory and vendored code are skipped). All files feed
/// one [`check_workspace`] call, so the flow rules see the whole
/// workspace; files are visited in sorted path order so the report is
/// deterministic.
///
/// # Errors
///
/// Propagates I/O failures from directory walks and file reads.
pub fn run_check(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(check_workspace(&sources, cfg))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
