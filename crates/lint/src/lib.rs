//! `anonet-lint`: domain-invariant static analysis for the anonet
//! workspace.
//!
//! The pipeline (see DESIGN.md §9) rests on invariants no general-purpose
//! linter knows about: the deterministic stage must never observe hash
//! order, algorithm code must never read a raw node identity, randomness
//! is confined to the 2-hop-coloring preprocessing layer, hot paths
//! return typed errors instead of panicking, and every metric name
//! follows `subsystem.noun[.verb]`. This crate enforces all five with a
//! hand-written lexer ([`lexer`]), per-rule token scanners ([`rules`]),
//! path scoping ([`config`]), and deny-by-default inline waivers
//! ([`waiver`]).
//!
//! The binary (`cargo run -p anonet-lint -- check`) walks every `src/`
//! tree under `crates/`, prints `file:line rule message` per finding,
//! and exits non-zero on any unwaived finding. `--json` writes a
//! machine-readable report through the shared [`anonet_obs::Json`]
//! serializer; `--stats` prints per-rule finding and waiver counts.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod waiver;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use anonet_obs::Json;

pub use config::Config;
pub use rules::RULES;

/// One finding, after waiver resolution.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// `true` if an adjacent (or file-scope) waiver covers it.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

/// The result of checking one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// All findings, waived and unwaived.
    pub findings: Vec<Finding>,
    /// How many well-formed waivers the file declares.
    pub waivers_total: usize,
    /// Well-formed waivers that suppressed nothing: `(line, rule)`.
    pub unused_waivers: Vec<(u32, String)>,
}

/// Runs every applicable rule over one file's source.
///
/// `rel_path` is the workspace-relative path with forward slashes; it
/// selects which rules apply per [`Config`]. Findings on lines inside
/// `#[cfg(test)]` regions are dropped (tests may use hash iteration,
/// panics, and raw identities freely); malformed waivers become findings
/// of the un-waivable `waiver` rule.
pub fn check_source(rel_path: &str, src: &str, cfg: &Config) -> FileReport {
    let lexed = lexer::lex(src);
    let regions = lexer::test_regions(&lexed.tokens);
    let (waivers, malformed) = waiver::extract(&lexed.comments, RULES);

    let mut raw = Vec::new();
    if Config::in_scopes(&cfg.determinism_scopes, rel_path) {
        raw.extend(rules::determinism(&lexed.tokens));
    }
    if Config::in_scopes(&cfg.anonymity_scopes, rel_path)
        && !Config::in_scopes(&cfg.anonymity_sanctioned, rel_path)
    {
        raw.extend(rules::anonymity(&lexed.tokens));
    }
    if !Config::in_scopes(&cfg.randomness_exempt, rel_path) {
        raw.extend(rules::randomness(&lexed.tokens));
    }
    if Config::in_scopes(&cfg.panic_scopes, rel_path) {
        raw.extend(rules::panic_hygiene(&lexed.tokens));
    }
    if Config::in_scopes(&cfg.obs_callsite_scopes, rel_path) || rel_path == cfg.obs_names_file {
        raw.extend(rules::obs_naming(rel_path, &lexed.tokens, cfg));
    }
    raw.retain(|f| !lexer::in_regions(&regions, f.line));
    raw.sort_by_key(|f| (f.line, f.rule));

    let mut used = vec![false; waivers.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .map(|f| {
            let hit = waivers.iter().enumerate().find(|(_, w)| {
                w.rule == f.rule && (w.file_scope || w.line == f.line || w.line + 1 == f.line)
            });
            let (waived, reason) = match hit {
                Some((i, w)) => {
                    used[i] = true;
                    (true, Some(w.reason.clone()))
                }
                None => (false, None),
            };
            Finding {
                file: rel_path.to_string(),
                line: f.line,
                rule: f.rule,
                message: f.message,
                waived,
                reason,
            }
        })
        .collect();

    // Malformed waivers are findings in their own right and can never be
    // suppressed — otherwise a broken waiver could waive itself.
    for m in &malformed {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: m.line,
            rule: "waiver",
            message: format!("malformed waiver: {}", m.detail),
            waived: false,
            reason: None,
        });
    }
    findings.sort_by_key(|f| (f.line, f.rule));

    let unused_waivers = waivers
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(w, _)| (w.line, w.rule.clone()))
        .collect();

    FileReport { findings, waivers_total: waivers.len(), unused_waivers }
}

/// The whole-workspace report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// How many files were scanned.
    pub files_scanned: usize,
    /// All findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Total well-formed waivers declared.
    pub waivers_total: usize,
    /// Waivers that suppressed nothing: `(file, line, rule)`.
    pub unused_waivers: Vec<(String, u32, String)>,
}

impl Report {
    /// Findings not covered by a waiver (the CI-gating count).
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| !f.waived).count()
    }

    /// Findings suppressed by a waiver.
    pub fn waived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// `(rule, unwaived, waived)` for every rule, in [`RULES`] order.
    pub fn by_rule(&self) -> Vec<(&'static str, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                let unw = self.findings.iter().filter(|f| f.rule == *r && !f.waived).count();
                let w = self.findings.iter().filter(|f| f.rule == *r && f.waived).count();
                (*r, unw, w)
            })
            .collect()
    }

    /// The machine-readable report (written by `--json`).
    pub fn to_json(&self) -> Json {
        let findings = Json::arr(self.findings.iter().map(|f| {
            Json::obj([
                ("file", Json::str(f.file.as_str())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::str(f.rule)),
                ("message", Json::str(f.message.as_str())),
                ("waived", Json::Bool(f.waived)),
                ("reason", f.reason.as_deref().map(Json::str).unwrap_or(Json::Null)),
            ])
        }));
        let by_rule = Json::obj(self.by_rule().into_iter().map(|(rule, unw, w)| {
            (
                rule,
                Json::obj([("unwaived", Json::Num(unw as f64)), ("waived", Json::Num(w as f64))]),
            )
        }));
        let unused = Json::arr(self.unused_waivers.iter().map(|(file, line, rule)| {
            Json::obj([
                ("file", Json::str(file.as_str())),
                ("line", Json::Num(*line as f64)),
                ("rule", Json::str(rule.as_str())),
            ])
        }));
        Json::obj([
            ("tool", Json::str("anonet-lint")),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("unwaived", Json::Num(self.unwaived() as f64)),
            ("waived", Json::Num(self.waived() as f64)),
            ("waivers_total", Json::Num(self.waivers_total as f64)),
            ("findings", findings),
            ("by_rule", by_rule),
            ("unused_waivers", unused),
        ])
    }

    /// `file:line rule message` lines (unwaived findings only), plus a
    /// one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| !f.waived) {
            out.push_str(&format!("{}:{} {} {}\n", f.file, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "anonet-lint: {} unwaived finding(s), {} waived, {} file(s) scanned\n",
            self.unwaived(),
            self.waived(),
            self.files_scanned
        ));
        out
    }

    /// The `--stats` table: per-rule counts plus waiver accounting.
    pub fn render_stats(&self) -> String {
        let mut out = String::from("rule            unwaived  waived\n");
        for (rule, unw, w) in self.by_rule() {
            out.push_str(&format!("{rule:<16}{unw:>8}{w:>8}\n"));
        }
        out.push_str(&format!(
            "waivers: {} declared, {} unused\n",
            self.waivers_total,
            self.unused_waivers.len()
        ));
        for (file, line, rule) in &self.unused_waivers {
            out.push_str(&format!("  unused waiver {file}:{line} ({rule})\n"));
        }
        out
    }
}

/// Checks every workspace source file under `root`.
///
/// Scans `crates/*/src/**` and the root `src/` tree (test, bench, and
/// example trees are out of scope by design; fixture corpora under any
/// `fixtures` directory and vendored code are skipped). Files are
/// visited in sorted path order so the report is deterministic.
///
/// # Errors
///
/// Propagates I/O failures from directory walks and file reads.
pub fn run_check(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let file_report = check_source(&rel, &src, cfg);
        report.files_scanned += 1;
        report.waivers_total += file_report.waivers_total;
        report
            .unused_waivers
            .extend(file_report.unused_waivers.into_iter().map(|(l, r)| (rel.clone(), l, r)));
        report.findings.extend(file_report.findings);
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
