//! A lightweight item parser on top of the [`lexer`](crate::lexer).
//!
//! This is still *not* a Rust parser: it recovers exactly the structure
//! the flow rules need — the item skeleton of a file (functions with
//! their body token ranges and enclosing `impl` type, `use` declarations,
//! `thread_local!` statics) — from the token stream, with brace matching
//! as the only notion of nesting. Everything it cannot classify it skips,
//! so unparseable corners degrade to "no facts" rather than errors.
//!
//! The output feeds [`itemgraph`](crate::itemgraph), which assembles the
//! per-file skeletons into the workspace-wide item graph.

use crate::lexer::{Tok, TokKind};

/// One `fn` item (free function or method).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare name (`put`).
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method (`Store`).
    pub impl_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// `true` iff the return type mentions `Result`.
    pub returns_result: bool,
    /// Token range of the body, inclusive of both braces, when the fn has
    /// one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use` declaration, flattened: `use a::b::{c, d as e};` yields the
/// paths `[a, b, c]` and `[a, b, d]` (aliases keep the original tail so
/// resolution still reaches the defining item).
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// Path segments, innermost last.
    pub path: Vec<String>,
    /// The name the item is visible under locally (alias or last segment).
    pub visible: String,
}

/// The parsed skeleton of one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every `fn`, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Every `use` declaration, flattened.
    pub uses: Vec<UseDecl>,
    /// Names of statics declared inside `thread_local! { … }` blocks.
    pub thread_locals: Vec<String>,
    /// Names of modules declared inline (`mod name {`) or out of line.
    pub mods: Vec<String>,
}

/// Parses the item skeleton out of a token stream.
pub fn parse(tokens: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Brace stack: `Some(type)` frames are impl bodies.
    let mut stack: Vec<Option<String>> = Vec::new();
    // When an `impl` header has been seen, the type to tag its `{` with.
    let mut pending_impl: Option<String> = None;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            stack.push(pending_impl.take());
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            stack.pop();
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                pending_impl = impl_type_name(tokens, i);
                i += 1;
            }
            "fn" if i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident => {
                let impl_type = stack.iter().rev().find_map(|f| f.clone());
                if let Some((item, _next)) = parse_fn(tokens, i, impl_type) {
                    out.fns.push(item);
                }
                // Do not skip the body: nested fns and the brace stack are
                // handled by the main loop walking straight through it.
                i += 2;
            }
            "use" if stack.iter().all(|f| f.is_none()) || !stack.is_empty() => {
                let (decls, next) = parse_use(tokens, i);
                out.uses.extend(decls);
                i = next;
            }
            "thread_local" if i + 2 < tokens.len() && tokens[i + 1].is_punct('!') => {
                let (statics, next) = parse_thread_local(tokens, i + 2);
                out.thread_locals.extend(statics);
                i = next;
            }
            "mod" if i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident => {
                out.mods.push(tokens[i + 1].text.clone());
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

/// The nominal self type of an `impl` header starting at `impl_idx`:
/// the first identifier after `for` if the header has one (trait impls),
/// else the first identifier after the generics.
fn impl_type_name(tokens: &[Tok], impl_idx: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    for t in tokens.iter().skip(impl_idx + 1).take(60) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('{') || t.is_punct(';') {
            break;
        } else if angle == 0 && t.kind == TokKind::Ident {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                break;
            } else if saw_for {
                if after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
            } else if first.is_none() {
                first = Some(t.text.clone());
            }
        }
    }
    after_for.or(first)
}

/// Parses one `fn` item starting at the `fn` keyword; returns the item
/// and the index just past the signature head.
fn parse_fn(tokens: &[Tok], fn_idx: usize, impl_type: Option<String>) -> Option<(FnItem, usize)> {
    let name_tok = &tokens[fn_idx + 1];
    let name = name_tok.text.clone();
    // Find the parameter list's `(` (skipping generics).
    let mut j = fn_idx + 2;
    let mut angle = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('<') {
            angle += 1;
        } else if tokens[j].is_punct('>') {
            angle -= 1;
        } else if angle == 0 && tokens[j].is_punct('(') {
            break;
        } else if tokens[j].is_punct('{') || tokens[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let params_end = match_paren(tokens, j)?;
    // Between `)` and the body `{` (or `;`): the return type and any
    // `where` clause; `Result` anywhere there counts.
    let mut k = params_end + 1;
    let mut returns_result = false;
    let mut depth = 0i32;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            let body_end = match_brace(tokens, k)?;
            return Some((
                FnItem {
                    name,
                    impl_type,
                    line: name_tok.line,
                    returns_result,
                    body: Some((k, body_end)),
                },
                params_end + 1,
            ));
        } else if depth == 0 && t.is_punct(';') {
            return Some((
                FnItem { name, impl_type, line: name_tok.line, returns_result, body: None },
                params_end + 1,
            ));
        } else if t.is_ident("Result") {
            returns_result = true;
        }
        k += 1;
    }
    None
}

/// Parses `use …;` starting at the `use` keyword; returns the flattened
/// declarations and the index past the `;`.
fn parse_use(tokens: &[Tok], use_idx: usize) -> (Vec<UseDecl>, usize) {
    // Collect the declaration's tokens up to `;`.
    let mut end = use_idx + 1;
    while end < tokens.len() && !tokens[end].is_punct(';') {
        end += 1;
    }
    let decl = &tokens[use_idx + 1..end];
    let mut out = Vec::new();
    flatten_use(decl, &[], &mut out);
    (out, end + 1)
}

/// Recursively flattens a use tree (`a::b::{c, d as e}`) into paths.
fn flatten_use(tokens: &[Tok], prefix: &[String], out: &mut Vec<UseDecl>) {
    fn flush(
        path: &mut Vec<String>,
        alias: &mut Option<String>,
        prefix: &[String],
        out: &mut Vec<UseDecl>,
    ) {
        if let Some(last) = path.last() {
            if last == "*" {
                path.clear();
                *alias = None;
                return;
            }
            let mut full = prefix.to_vec();
            full.extend(path.iter().cloned());
            let visible = alias.take().unwrap_or_else(|| last.clone());
            out.push(UseDecl { path: full, visible });
        }
        path.clear();
    }
    let mut i = 0usize;
    let mut path: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            // Group: recurse per comma-separated element.
            let close = match_brace(tokens, i).unwrap_or(tokens.len().saturating_sub(1));
            let mut lo = i + 1;
            let mut depth = 0i32;
            let mut new_prefix = prefix.to_vec();
            new_prefix.extend(path.iter().cloned());
            for j in i + 1..close {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && tokens[j].is_punct(',') {
                    flatten_use(&tokens[lo..j], &new_prefix, out);
                    lo = j + 1;
                }
            }
            if lo < close {
                flatten_use(&tokens[lo..close], &new_prefix, out);
            }
            path.clear();
            i = close + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text == "as" {
                if i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident {
                    alias = Some(tokens[i + 1].text.clone());
                    i += 2;
                    continue;
                }
            } else {
                path.push(t.text.clone());
            }
        } else if t.is_punct('*') {
            path.push("*".to_string());
        } else if t.is_punct(',') {
            flush(&mut path, &mut alias, prefix, out);
        }
        i += 1;
    }
    flush(&mut path, &mut alias, prefix, out);
}

/// Parses a `thread_local! { … }` body starting at its `{`; returns the
/// static names and the index past the closing `}`.
fn parse_thread_local(tokens: &[Tok], open: usize) -> (Vec<String>, usize) {
    if open >= tokens.len() || !tokens[open].is_punct('{') {
        return (Vec::new(), open + 1);
    }
    let close = match_brace(tokens, open).unwrap_or(tokens.len().saturating_sub(1));
    let mut statics = Vec::new();
    let mut i = open + 1;
    while i + 1 < close {
        if tokens[i].is_ident("static") && tokens[i + 1].kind == TokKind::Ident {
            statics.push(tokens[i + 1].text.clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    (statics, close + 1)
}

/// Index of the `)` matching the `(` at `open`.
pub fn match_paren(tokens: &[Tok], open: usize) -> Option<usize> {
    match_delim(tokens, open, '(', ')')
}

/// Index of the `}` matching the `{` at `open`.
pub fn match_brace(tokens: &[Tok], open: usize) -> Option<usize> {
    match_delim(tokens, open, '{', '}')
}

fn match_delim(tokens: &[Tok], open: usize, lo: char, hi: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(lo) {
            depth += 1;
        } else if t.is_punct(hi) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// A closure expression found in an argument list: parameter pipe span
/// and body token range (inclusive).
#[derive(Clone, Copy, Debug)]
pub struct Closure {
    /// Token index of the opening `|`.
    pub params_open: usize,
    /// Body range, inclusive; `{ … }` braces included when present.
    pub body: (usize, usize),
}

/// Finds closure expressions between `lo` and `hi` (typically the
/// argument tokens of a call): a `|` in argument position (after `(`,
/// `,`, or `move`) opens parameters up to the next `|`, and the body is
/// either a brace block or the expression up to the next depth-0 `,` /
/// closing delimiter.
pub fn closures_in(tokens: &[Tok], lo: usize, hi: usize) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut i = lo;
    while i <= hi && i < tokens.len() {
        let starts_closure = tokens[i].is_punct('|')
            && i > 0
            && (tokens[i - 1].is_punct('(')
                || tokens[i - 1].is_punct(',')
                || tokens[i - 1].is_punct('=')
                || tokens[i - 1].is_ident("move"));
        if !starts_closure {
            i += 1;
            continue;
        }
        // Parameter list: up to the closing `|` (tolerate `||`).
        let mut j = i + 1;
        while j <= hi && !tokens[j].is_punct('|') {
            j += 1;
        }
        if j > hi {
            break;
        }
        let body_start = j + 1;
        if body_start > hi {
            break;
        }
        let body_end = if tokens[body_start].is_punct('{') {
            match_brace(tokens, body_start).unwrap_or(hi).min(hi)
        } else {
            // Expression body: to the next depth-0 `,` or the end.
            let mut depth = 0i32;
            let mut k = body_start;
            let mut end = hi;
            while k <= hi {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        end = k.saturating_sub(1);
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    end = k.saturating_sub(1);
                    break;
                }
                k += 1;
            }
            end
        };
        out.push(Closure { params_open: i, body: (body_start, body_end) });
        i = body_end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fns_and_methods_are_found_with_bodies() {
        let src = "
fn free(a: u32) -> Result<u32, E> { a }
impl Store {
    pub fn put(&self, k: &[u8]) -> Result<()> { self.go(k) }
    fn helper(&self) { }
}
impl<T: Label> Fancy for Wrapper<T> {
    fn run(&self) -> io::Result<()> { Ok(()) }
}
";
        let p = parse(&lex(src).tokens);
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free", "Store::put", "Store::helper", "Wrapper::run"]);
        assert!(p.fns[0].returns_result);
        assert!(p.fns[1].returns_result);
        assert!(!p.fns[2].returns_result);
        assert!(p.fns[3].returns_result);
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn nested_fns_and_trait_decls() {
        let src = "
trait T { fn decl(&self) -> Result<u8>; }
fn outer() { fn inner() {} }
";
        let p = parse(&lex(src).tokens);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["decl", "outer", "inner"]);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn uses_flatten_groups_and_aliases() {
        let src = "use a::b::{c, d as e, f::g}; use x::Y; use z::*;";
        let p = parse(&lex(src).tokens);
        let flat: Vec<(String, String)> =
            p.uses.iter().map(|u| (u.path.join("::"), u.visible.clone())).collect();
        assert_eq!(
            flat,
            vec![
                ("a::b::c".into(), "c".into()),
                ("a::b::d".into(), "e".into()),
                ("a::b::f::g".into(), "g".into()),
                ("x::Y".into(), "Y".into()),
            ]
        );
    }

    #[test]
    fn thread_local_statics_are_collected() {
        let src = "
thread_local! {
    static ARENA: RefCell<ViewArena> = RefCell::new(ViewArena::new());
    static ORDINAL: u64 = next();
}
fn f() {}
";
        let p = parse(&lex(src).tokens);
        assert_eq!(p.thread_locals, vec!["ARENA", "ORDINAL"]);
        assert_eq!(p.fns.len(), 1);
    }

    #[test]
    fn closures_in_argument_lists() {
        let src = "sched.run(&jobs, |_, j| { work(j) }); other(move || tail());";
        let toks = lex(src).tokens;
        let all = closures_in(&toks, 0, toks.len() - 1);
        assert_eq!(all.len(), 2);
        let body: Vec<&str> =
            toks[all[0].body.0..=all[0].body.1].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"work"));
    }
}
