//! The five domain rules.
//!
//! Every rule is a pure function over the token stream of one file; the
//! engine in `lib.rs` handles scoping, `#[cfg(test)]` exemption, and
//! waivers. Rules are deliberately lexical: they trade type information
//! for a zero-dependency tool that runs in milliseconds, and lean on the
//! waiver syntax for the (rare, documented) sanctioned exceptions.

use crate::config::Config;
use crate::lexer::{Tok, TokKind};

/// Every rule name, as used in waivers, findings, and reports.
///
/// The first five are the per-file token rules; `lock-discipline`,
/// `thread-leak`, `error-swallow`, and `commit-order` are the flow-aware
/// rules over the workspace item graph (see `flow`). `waiver` is the
/// meta-rule for malformed waivers; it cannot be waived.
pub const RULES: &[&str] = &[
    "determinism",
    "anonymity",
    "randomness",
    "panic-hygiene",
    "obs-naming",
    "lock-discipline",
    "thread-leak",
    "error-swallow",
    "commit-order",
    "waiver",
];

/// One finding, before waiver resolution.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// 1-indexed line.
    pub line: u32,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

fn finding(line: u32, rule: &'static str, message: impl Into<String>) -> RawFinding {
    RawFinding { line, rule, message: message.into() }
}

/// Methods whose call on a hash container observes unordered iteration.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers that, appearing later in the same statement, certify the
/// unordered iteration is canonicalized before it can escape.
const SORT_SINKS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

/// **determinism** — unordered `HashMap`/`HashSet` iteration in the
/// deterministic-stage crates, unless the result is sorted or collected
/// into a `BTreeMap`/`BTreeSet` within the same statement.
pub fn determinism(tokens: &[Tok]) -> Vec<RawFinding> {
    let names = hash_container_names(tokens);
    let mut out = Vec::new();

    for i in 0..tokens.len() {
        // `container.iter()`-style: `.` METHOD `(` with a known container
        // (or hash-typed field) as the receiver.
        if tokens[i].is_punct('.')
            && i > 0
            && i + 2 < tokens.len()
            && tokens[i + 1].kind == TokKind::Ident
            && ITER_METHODS.contains(&tokens[i + 1].text.as_str())
            && tokens[i + 2].is_punct('(')
            && tokens[i - 1].kind == TokKind::Ident
            && names.contains(&tokens[i - 1].text)
            && !sorted_in_statement(tokens, i + 2)
        {
            out.push(finding(
                tokens[i + 1].line,
                "determinism",
                format!(
                    "unordered iteration `{}.{}()` over a HashMap/HashSet in a \
                     deterministic-stage crate; sort before emitting or use \
                     BTreeMap/BTreeSet",
                    tokens[i - 1].text,
                    tokens[i + 1].text
                ),
            ));
        }
        // `for k in &container {` / `for k in container {`.
        if tokens[i].is_ident("in") && (i == 0 || !tokens[i - 1].is_punct('(')) {
            let mut j = i + 1;
            while j < tokens.len() && (tokens[j].is_punct('&') || tokens[j].is_ident("mut")) {
                j += 1;
            }
            if j + 1 < tokens.len()
                && tokens[j].kind == TokKind::Ident
                && names.contains(&tokens[j].text)
                && tokens[j + 1].is_punct('{')
            {
                out.push(finding(
                    tokens[j].line,
                    "determinism",
                    format!(
                        "`for … in` over HashMap/HashSet `{}` iterates in unordered hash \
                         order; iterate a BTreeMap/BTreeSet or a sorted Vec instead",
                        tokens[j].text
                    ),
                ));
            }
        }
    }
    out
}

/// Collects identifiers bound or typed as `HashMap`/`HashSet` in this
/// file: `let` bindings whose initializing statement mentions the type,
/// plus `name: HashMap<…>` struct fields and function parameters.
fn hash_container_names(tokens: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let is_hash = |t: &Tok| t.is_ident("HashMap") || t.is_ident("HashSet");

    for i in 0..tokens.len() {
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_ident("mut") {
                j += 1;
            }
            // Skip destructuring patterns (`let Some(x)`, `let (a, b)`).
            if j + 1 < tokens.len()
                && tokens[j].kind == TokKind::Ident
                && !tokens[j + 1].is_punct('(')
            {
                let name = tokens[j].text.clone();
                // Scan the statement (to `;`, brace-balanced, capped).
                let mut depth = 0i32;
                for tok in tokens.iter().take((j + 200).min(tokens.len())).skip(j + 1) {
                    if tok.is_punct('{') || tok.is_punct('(') {
                        depth += 1;
                    } else if tok.is_punct('}') || tok.is_punct(')') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if tok.is_punct(';') && depth == 0 {
                        break;
                    } else if is_hash(tok) {
                        if !names.contains(&name) {
                            names.push(name.clone());
                        }
                        break;
                    }
                }
            }
        }
        // `name: HashMap<…>` (field or parameter). Require a plain `:`
        // (not `::`) and scan the type position only, stopping at any
        // angle-depth-0 delimiter.
        if i + 2 < tokens.len()
            && tokens[i].kind == TokKind::Ident
            && tokens[i + 1].is_punct(':')
            && !tokens[i + 2].is_punct(':')
            && (i == 0 || !tokens[i - 1].is_punct(':'))
        {
            let mut angle = 0i32;
            for k in i + 2..(i + 40).min(tokens.len()) {
                if tokens[k].is_punct('<') {
                    angle += 1;
                } else if tokens[k].is_punct('>') {
                    angle -= 1;
                } else if angle == 0
                    && (tokens[k].is_punct(',')
                        || tokens[k].is_punct(';')
                        || tokens[k].is_punct(')')
                        || tokens[k].is_punct('{')
                        || tokens[k].is_punct('='))
                {
                    break;
                } else if is_hash(&tokens[k]) {
                    if !names.contains(&tokens[i].text) {
                        names.push(tokens[i].text.clone());
                    }
                    break;
                }
            }
        }
    }
    names
}

/// `true` iff the iteration at `open_paren` is canonicalized nearby: a
/// sort or BTree collect in the same statement (including the binding's
/// type annotation, scanned backwards) or in the statement immediately
/// after (the `let mut v = …; v.sort();` idiom).
fn sorted_in_statement(tokens: &[Tok], open_paren: usize) -> bool {
    // Backward to the start of the statement: catches
    // `let b: BTreeMap<_, _> = m.iter().collect();`.
    for k in (open_paren.saturating_sub(40)..open_paren).rev() {
        if tokens[k].is_punct(';') || tokens[k].is_punct('{') || tokens[k].is_punct('}') {
            break;
        }
        if tokens[k].kind == TokKind::Ident && SORT_SINKS.contains(&tokens[k].text.as_str()) {
            return true;
        }
    }
    // Forward through this statement and the next one.
    let mut depth = 0i32;
    let mut semis = 0;
    for tok in tokens.iter().take((open_paren + 120).min(tokens.len())).skip(open_paren) {
        if tok.is_punct('(') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if tok.is_punct(';') && depth == 0 {
            semis += 1;
            if semis > 1 {
                return false;
            }
        } else if tok.kind == TokKind::Ident && SORT_SINKS.contains(&tok.text.as_str()) {
            return true;
        }
    }
    false
}

/// **anonymity** — reads of raw node identities inside algorithm code:
/// `NodeId::new(…)` constructions and `.index()` reads. Algorithm logic
/// must act on ports, colors, and views only (the premise of Theorem 1);
/// global-observer verifier modules are sanctioned via config.
pub fn anonymity(tokens: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("NodeId")
            && i + 4 < tokens.len()
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("new")
            && tokens[i + 4].is_punct('(')
        {
            out.push(finding(
                tokens[i].line,
                "anonymity",
                "`NodeId::new(…)` constructs a raw node identity inside algorithm code; \
                 anonymous algorithms may only use ports, colors, and views",
            ));
        }
        if tokens[i].is_punct('.')
            && i + 3 < tokens.len()
            && tokens[i + 1].is_ident("index")
            && tokens[i + 2].is_punct('(')
            && tokens[i + 3].is_punct(')')
        {
            out.push(finding(
                tokens[i + 1].line,
                "anonymity",
                "`.index()` reads a raw identity inside algorithm code; anonymous \
                 algorithms may only use ports, colors, and views (waive for \
                 global-observer verifier code)",
            ));
        }
    }
    out
}

/// Identifiers whose presence means randomness is being imported or
/// constructed directly rather than through `RandomSource`.
const RNG_IDENTS: &[&str] = &["rand", "rand_chacha", "thread_rng", "from_entropy"];

/// **randomness** — `rand`/`rand_chacha` imports or RNG construction
/// outside the sanctioned randomness layer (and testkit/bench). The
/// paper's decoupling confines randomness to the 2-hop-coloring
/// preprocessing stage; everything downstream must be deterministic.
pub fn randomness(tokens: &[Tok]) -> Vec<RawFinding> {
    let mut out: Vec<RawFinding> = Vec::new();
    for t in tokens {
        if t.kind == TokKind::Ident && RNG_IDENTS.contains(&t.text.as_str()) {
            // One finding per line, not per path segment.
            if out.last().map(|f: &RawFinding| f.line) != Some(t.line) {
                out.push(finding(
                    t.line,
                    "randomness",
                    format!(
                        "`{}` outside the designated randomness modules; draw bits through \
                         `RandomSource` so randomness stays confined to the 2-hop-coloring \
                         preprocessing stage",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}

/// **panic-hygiene** — `unwrap()`, `expect(…)`, and `panic!` in runtime
/// and scheduler hot paths, which have typed error channels
/// (`RuntimeError`, `CoreError`) that panicking bypasses.
pub fn panic_hygiene(tokens: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_punct('.')
            && i + 3 < tokens.len()
            && tokens[i + 1].is_ident("unwrap")
            && tokens[i + 2].is_punct('(')
            && tokens[i + 3].is_punct(')')
        {
            out.push(finding(
                tokens[i + 1].line,
                "panic-hygiene",
                "`unwrap()` in a hot path; return the typed error instead",
            ));
        }
        if tokens[i].is_punct('.')
            && i + 2 < tokens.len()
            && tokens[i + 1].is_ident("expect")
            && tokens[i + 2].is_punct('(')
        {
            out.push(finding(
                tokens[i + 1].line,
                "panic-hygiene",
                "`expect(…)` in a hot path; return the typed error instead",
            ));
        }
        if tokens[i].is_ident("panic") && i + 1 < tokens.len() && tokens[i + 1].is_punct('!') {
            out.push(finding(
                tokens[i].line,
                "panic-hygiene",
                "`panic!` in a hot path; return the typed error instead",
            ));
        }
    }
    out
}

/// **obs-naming** — metric/span naming discipline:
/// literal metric names at `counter`/`histogram`/`Span::new`/
/// `Span::child_of` call sites (must use `anonet_obs::names` constants),
/// and, in the names module itself, constant values violating the
/// `subsystem.noun[.verb]` convention (span constants are bare lowercase
/// leaf names).
pub fn obs_naming(rel_path: &str, tokens: &[Tok], cfg: &Config) -> Vec<RawFinding> {
    let mut out = Vec::new();

    // Call sites: `.counter("…"` / `.histogram("…"`.
    for i in 0..tokens.len() {
        if tokens[i].is_punct('.')
            && i + 3 < tokens.len()
            && (tokens[i + 1].is_ident("counter") || tokens[i + 1].is_ident("histogram"))
            && tokens[i + 2].is_punct('(')
            && tokens[i + 3].kind == TokKind::Str
        {
            out.push(finding(
                tokens[i + 3].line,
                "obs-naming",
                format!(
                    "literal metric name \"{}\"; add a constant to `anonet_obs::names` \
                     (`subsystem.noun[.verb]`) and use it",
                    tokens[i + 3].text
                ),
            ));
        }
        // `Span::new(rec, "…")` / `Span::child_of(rec, "…", ctx)`: a
        // literal as the second argument (the span name in both).
        if tokens[i].is_ident("Span")
            && i + 4 < tokens.len()
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && (tokens[i + 3].is_ident("new") || tokens[i + 3].is_ident("child_of"))
            && tokens[i + 4].is_punct('(')
        {
            let mut depth = 1i32;
            let mut k = i + 5;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('(') {
                    depth += 1;
                } else if tokens[k].is_punct(')') {
                    depth -= 1;
                } else if tokens[k].is_punct(',') && depth == 1 {
                    if k + 1 < tokens.len() && tokens[k + 1].kind == TokKind::Str {
                        out.push(finding(
                            tokens[k + 1].line,
                            "obs-naming",
                            format!(
                                "literal span name \"{}\"; add a `SPAN_*` constant to \
                                 `anonet_obs::names` and use it",
                                tokens[k + 1].text
                            ),
                        ));
                    }
                    break;
                }
                k += 1;
            }
        }
    }

    // The names module: validate every `pub const NAME: &str = "value";`.
    if rel_path == cfg.obs_names_file {
        if let Some((start, end)) = names_module_range(tokens) {
            let mut i = start;
            while i + 6 < end {
                if tokens[i].is_ident("const")
                    && tokens[i + 1].kind == TokKind::Ident
                    && tokens[i + 2].is_punct(':')
                {
                    let name = tokens[i + 1].text.clone();
                    // Find the assigned string literal before the `;`.
                    let mut k = i + 3;
                    while k < end && !tokens[k].is_punct(';') {
                        if tokens[k].kind == TokKind::Str {
                            let value = &tokens[k].text;
                            let ok = if name.starts_with("SPAN_") {
                                is_name_segment(value)
                            } else {
                                let segs: Vec<&str> = value.split('.').collect();
                                (2..=3).contains(&segs.len())
                                    && segs.iter().all(|s| is_name_segment(s))
                            };
                            if !ok {
                                out.push(finding(
                                    tokens[k].line,
                                    "obs-naming",
                                    format!(
                                        "metric name \"{value}\" violates the naming \
                                         convention: {} (lowercase `[a-z][a-z0-9_]*` segments)",
                                        if name.starts_with("SPAN_") {
                                            "span constants are bare leaf names"
                                        } else {
                                            "counters/histograms are `subsystem.noun[.verb]`"
                                        }
                                    ),
                                ));
                            }
                            break;
                        }
                        k += 1;
                    }
                    i = k;
                }
                i += 1;
            }
        }
    }
    out
}

/// Token range (exclusive end) of the body of `pub mod names { … }`.
fn names_module_range(tokens: &[Tok]) -> Option<(usize, usize)> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident("mod")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_ident("names")
            && tokens[i + 2].is_punct('{')
        {
            let mut depth = 1i32;
            let mut k = i + 3;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            return Some((i + 3, k));
        }
    }
    None
}

/// One lowercase metric-name segment: `[a-z][a-z0-9_]*`.
fn is_name_segment(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn determinism_flags_iteration_and_exempts_sorted() {
        let src = "
let mut m = HashMap::new();
let v: Vec<u32> = m.keys().copied().collect();
for k in &m {}
let mut x: Vec<u32> = m.keys().copied().collect();
x.sort();
let b: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
let count = m.len();
";
        let f = determinism(&lex(src).tokens);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("m.keys()"));
        assert!(f[1].message.contains("for"));
    }

    #[test]
    fn determinism_tracks_fields_and_params() {
        let src = "
struct S { pools: HashMap<u32, u32>, names: Vec<u32> }
fn f(&self, extra: &HashSet<u8>) {
    for x in self.pools.values() {}
    for n in &self.names {}
    let _ = extra.iter().count();
}
";
        let f = determinism(&lex(src).tokens);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn anonymity_flags_identity_reads() {
        let src = "let v = NodeId::new(0); let i = v.index(); let d = g.degree(v);";
        let f = anonymity(&lex(src).tokens);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn randomness_flags_imports_once_per_line() {
        let src = "use rand::{Rng, SeedableRng};\nuse rand_chacha::ChaCha8Rng;\nlet r = rand::thread_rng();";
        let f = randomness(&lex(src).tokens);
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn panic_rule_flags_the_three_forms_only() {
        let src =
            "a.unwrap(); b.expect(\"x\"); panic!(\"y\"); c.unwrap_or(3); d.unwrap_or_else(|| 4);";
        let f = panic_hygiene(&lex(src).tokens);
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn obs_naming_flags_literals_and_bad_consts() {
        let cfg = Config::workspace();
        let src = r#"
pub mod names {
    pub const GOOD: &str = "engine.rounds";
    pub const BAD: &str = "CamelCase.Thing";
    pub const SPAN_GOOD: &str = "pipeline";
    pub const SPAN_BAD: &str = "has.dots";
}
fn f(rec: &dyn Recorder) {
    rec.counter("raw.metric", 1);
    rec.histogram(names::GOOD, 2);
    let _s = Span::new(rec, "raw_span");
    let _t = Span::new(rec, names::SPAN_GOOD);
    let _u = Span::child_of(rec, "raw_child", _t.context());
    let _v = Span::child_of(rec, names::SPAN_GOOD, _t.context());
}
"#;
        let f = obs_naming("crates/obs/src/lib.rs", &lex(src).tokens, &cfg);
        assert_eq!(f.len(), 5, "{f:?}");
        // Same file but not the names file: only call sites flagged.
        let f2 = obs_naming("crates/core/src/x.rs", &lex(src).tokens, &cfg);
        assert_eq!(f2.len(), 3, "{f2:?}");
    }
}
