//! Fixture-corpus conformance tests for `anonet-lint`.
//!
//! Every rule has one failing and one passing fixture under
//! `tests/fixtures/{fail,pass}/`. Fixtures are fed through
//! [`check_source`] under a virtual workspace path that puts them in the
//! rule's scope — they are corpus data, not compiled code (the workspace
//! walker skips any `fixtures` directory for the same reason).

use std::path::Path;

use anonet_lint::{check_source, check_workspace, run_check, Config, FileReport};
use anonet_obs::Json;

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn check_fixture(rel: &str, virtual_path: &str) -> FileReport {
    check_source(virtual_path, &fixture(rel), &Config::workspace())
}

fn count(report: &FileReport, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule && !f.waived).count()
}

#[test]
fn determinism_fixtures() {
    let fail = check_fixture("fail/determinism.rs", "crates/graph/src/fixture.rs");
    assert_eq!(count(&fail, "determinism"), 3, "{:?}", fail.findings);
    let pass = check_fixture("pass/determinism.rs", "crates/graph/src/fixture.rs");
    assert_eq!(count(&pass, "determinism"), 0, "{:?}", pass.findings);
    // The dirty-set pattern specifically lands in the views scope: the
    // incremental refinement worklist must sweep in sorted order.
    let views = check_fixture("fail/determinism.rs", "crates/views/src/refinement.rs");
    assert_eq!(count(&views, "determinism"), 3, "{:?}", views.findings);
    let views_pass = check_fixture("pass/determinism.rs", "crates/views/src/refinement.rs");
    assert_eq!(count(&views_pass, "determinism"), 0, "{:?}", views_pass.findings);
}

#[test]
fn anonymity_fixtures() {
    let fail = check_fixture("fail/anonymity.rs", "crates/algorithms/src/fixture.rs");
    assert_eq!(count(&fail, "anonymity"), 2, "{:?}", fail.findings);
    let pass = check_fixture("pass/anonymity.rs", "crates/algorithms/src/fixture.rs");
    assert_eq!(count(&pass, "anonymity"), 0, "{:?}", pass.findings);
    // The same bad source is fine in a sanctioned verifier module.
    let sanctioned = check_fixture("fail/anonymity.rs", "crates/algorithms/src/verify.rs");
    assert_eq!(count(&sanctioned, "anonymity"), 0, "{:?}", sanctioned.findings);
}

#[test]
fn randomness_fixtures() {
    let fail = check_fixture("fail/randomness.rs", "crates/core/src/fixture.rs");
    assert!(count(&fail, "randomness") >= 2, "{:?}", fail.findings);
    let pass = check_fixture("pass/randomness.rs", "crates/core/src/fixture.rs");
    assert_eq!(count(&pass, "randomness"), 0, "{:?}", pass.findings);
    // The same source is sanctioned in the randomness layer and testkit.
    let layer = check_fixture("fail/randomness.rs", "crates/runtime/src/randomness.rs");
    assert_eq!(count(&layer, "randomness"), 0, "{:?}", layer.findings);
    let testkit = check_fixture("fail/randomness.rs", "crates/testkit/src/fixture.rs");
    assert_eq!(count(&testkit, "randomness"), 0, "{:?}", testkit.findings);
}

#[test]
fn panic_hygiene_fixtures() {
    let fail = check_fixture("fail/panic.rs", "crates/runtime/src/fixture.rs");
    assert_eq!(count(&fail, "panic-hygiene"), 3, "{:?}", fail.findings);
    let pass = check_fixture("pass/panic.rs", "crates/runtime/src/fixture.rs");
    assert_eq!(count(&pass, "panic-hygiene"), 0, "{:?}", pass.findings);
    // Out of the hot-path scope the same source is not flagged.
    let cold = check_fixture("fail/panic.rs", "crates/views/src/fixture.rs");
    assert_eq!(count(&cold, "panic-hygiene"), 0, "{:?}", cold.findings);
}

#[test]
fn obs_naming_fixtures() {
    // Under the names-file path both constant values and call-site
    // literals are judged.
    let fail = check_fixture("fail/obs_naming.rs", "crates/obs/src/lib.rs");
    assert_eq!(count(&fail, "obs-naming"), 6, "{:?}", fail.findings);
    let pass = check_fixture("pass/obs_naming.rs", "crates/obs/src/lib.rs");
    assert_eq!(count(&pass, "obs-naming"), 0, "{:?}", pass.findings);
}

/// Asserts every unwaived finding in `report` belongs to `rule` — the
/// fail fixtures must trigger exactly their own rule.
fn only_rule(report: &FileReport, rule: &str) {
    for f in report.findings.iter().filter(|f| !f.waived) {
        assert_eq!(f.rule, rule, "unexpected finding: {f:?}");
    }
}

#[test]
fn lock_discipline_fixtures() {
    let fail = check_fixture("fail/lock_discipline.rs", "crates/store/src/fixture.rs");
    // Two cycle edges, one re-entrant acquisition, one guard held
    // across a submit site.
    assert_eq!(count(&fail, "lock-discipline"), 4, "{:?}", fail.findings);
    only_rule(&fail, "lock-discipline");
    let pass = check_fixture("pass/lock_discipline.rs", "crates/store/src/fixture.rs");
    assert!(pass.findings.is_empty(), "{:?}", pass.findings);
}

#[test]
fn thread_leak_fixtures() {
    let fail = check_fixture("fail/thread_leak.rs", "crates/views/src/fixture.rs");
    assert_eq!(count(&fail, "thread-leak"), 2, "{:?}", fail.findings);
    only_rule(&fail, "thread-leak");
    let pass = check_fixture("pass/thread_leak.rs", "crates/views/src/fixture.rs");
    assert!(pass.findings.is_empty(), "{:?}", pass.findings);
}

#[test]
fn error_swallow_fixtures() {
    let fail = check_fixture("fail/error_swallow.rs", "crates/runtime/src/fixture.rs");
    assert_eq!(count(&fail, "error-swallow"), 3, "{:?}", fail.findings);
    only_rule(&fail, "error-swallow");
    let pass = check_fixture("pass/error_swallow.rs", "crates/runtime/src/fixture.rs");
    assert!(pass.findings.is_empty(), "{:?}", pass.findings);
}

#[test]
fn commit_order_fixtures() {
    let fail = check_fixture("fail/commit_order.rs", "crates/batch/src/fixture.rs");
    // One completion-order accumulation, one `mpsc`, one `recv`.
    assert_eq!(count(&fail, "commit-order"), 3, "{:?}", fail.findings);
    only_rule(&fail, "commit-order");
    let pass = check_fixture("pass/commit_order.rs", "crates/batch/src/fixture.rs");
    assert!(pass.findings.is_empty(), "{:?}", pass.findings);
    // The same accumulation pattern outside the parallel-driver scope is
    // not the commit-order rule's business.
    let elsewhere = check_fixture("fail/commit_order.rs", "crates/graph/src/fixture.rs");
    assert_eq!(count(&elsewhere, "commit-order"), 0, "{:?}", elsewhere.findings);
}

#[test]
fn lock_cycle_is_detected_across_files() {
    // Each file is clean in isolation: the cycle only exists in the
    // workspace-wide lock-order graph.
    let forward = "
use std::sync::Mutex;
pub struct A { pub shards: Mutex<u32>, pub tables: Mutex<u32> }
impl A {
    fn forward(&self) {
        let a = self.shards.lock();
        let b = self.tables.lock();
        use_both(a, b);
    }
}
";
    let backward = "
use std::sync::Mutex;
pub struct B { pub shards: Mutex<u32>, pub tables: Mutex<u32> }
impl B {
    fn backward(&self) {
        let b = self.tables.lock();
        let a = self.shards.lock();
        use_both(a, b);
    }
}
";
    let cfg = Config::workspace();
    for (src, path) in [(forward, "crates/store/src/fwd.rs"), (backward, "crates/store/src/bwd.rs")]
    {
        let alone = check_source(path, src, &cfg);
        assert!(alone.findings.is_empty(), "{path} alone: {:?}", alone.findings);
    }
    let files = vec![
        ("crates/store/src/fwd.rs".to_string(), forward.to_string()),
        ("crates/store/src/bwd.rs".to_string(), backward.to_string()),
    ];
    let report = check_workspace(&files, &cfg);
    let cycles: Vec<_> = report.findings.iter().filter(|f| f.rule == "lock-discipline").collect();
    assert_eq!(cycles.len(), 2, "{:?}", report.findings);
    assert!(cycles.iter().any(|f| f.file == "crates/store/src/fwd.rs"));
    assert!(cycles.iter().any(|f| f.file == "crates/store/src/bwd.rs"));
}

#[test]
fn may_lock_propagates_across_files_through_calls() {
    // `helper` (file 1) takes the shard lock; `outer` (file 2) calls it
    // while holding the same class — a self-deadlock only visible
    // through the cross-file call graph.
    let helper = "
use std::sync::Mutex;
pub struct Store { pub shards: Mutex<u32> }
impl Store {
    pub fn shard_stats(&self) -> u32 {
        let g = self.shards.lock();
        read(g)
    }
}
";
    let caller = "
impl Store {
    pub fn outer(&self) -> u32 {
        let g = self.shards.lock();
        let stats = self.shard_stats();
        combine(g, stats)
    }
}
";
    let files = vec![
        ("crates/store/src/helper.rs".to_string(), helper.to_string()),
        ("crates/store/src/caller.rs".to_string(), caller.to_string()),
    ];
    let report = check_workspace(&files, &Config::workspace());
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-discipline" && f.message.contains("shard_stats"))
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, "crates/store/src/caller.rs");
}

#[test]
fn flow_findings_accept_waivers_like_any_other() {
    let src = "
fn persist(x: u32) -> Result<u32, String> { Ok(x) }
fn best_effort(x: u32) {
    // anonet-lint: allow(error-swallow, reason = \"fixture: failure is benign here\")
    let _ = persist(x);
}
";
    let r = check_source("crates/runtime/src/fixture.rs", src, &Config::workspace());
    assert_eq!(count(&r, "error-swallow"), 0, "{:?}", r.findings);
    assert_eq!(r.findings.iter().filter(|f| f.waived).count(), 1);
    assert!(r.unused_waivers.is_empty());
}

#[test]
fn valid_waiver_suppresses_and_is_tracked() {
    let src = r#"
fn hot() -> u32 {
    // anonet-lint: allow(panic-hygiene, reason = "demo invariant")
    Some(1).unwrap()
}
"#;
    let r = check_source("crates/runtime/src/fixture.rs", src, &Config::workspace());
    assert_eq!(count(&r, "panic-hygiene"), 0, "{:?}", r.findings);
    assert_eq!(r.findings.iter().filter(|f| f.waived).count(), 1);
    assert_eq!(r.findings[0].reason.as_deref(), Some("demo invariant"));
    assert_eq!(r.waivers_total, 1);
    assert!(r.unused_waivers.is_empty());
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = "fn hot() -> u32 { Some(1).unwrap() } // anonet-lint: allow(panic-hygiene, reason = \"demo\")\n";
    let r = check_source("crates/runtime/src/fixture.rs", src, &Config::workspace());
    assert_eq!(count(&r, "panic-hygiene"), 0, "{:?}", r.findings);
}

#[test]
fn file_scope_waiver_covers_the_whole_file() {
    let src = r#"
// anonet-lint: allow-file(panic-hygiene, reason = "demo module")
fn a() { panic!("x"); }
fn b() -> u32 { Some(1).unwrap() }
"#;
    let r = check_source("crates/runtime/src/fixture.rs", src, &Config::workspace());
    assert_eq!(count(&r, "panic-hygiene"), 0, "{:?}", r.findings);
    assert_eq!(r.findings.iter().filter(|f| f.waived).count(), 2);
}

#[test]
fn waiver_without_reason_is_rejected_and_suppresses_nothing() {
    let src = r#"
fn hot() -> u32 {
    // anonet-lint: allow(panic-hygiene)
    Some(1).unwrap()
}
"#;
    let r = check_source("crates/runtime/src/fixture.rs", src, &Config::workspace());
    // The original finding stays…
    assert_eq!(count(&r, "panic-hygiene"), 1, "{:?}", r.findings);
    // …and the malformed waiver is its own (unwaivable) finding.
    assert_eq!(count(&r, "waiver"), 1, "{:?}", r.findings);
}

#[test]
fn unknown_rule_in_waiver_is_rejected() {
    let src = "// anonet-lint: allow(speling, reason = \"oops\")\n";
    let r = check_source("crates/runtime/src/fixture.rs", src, &Config::workspace());
    assert_eq!(count(&r, "waiver"), 1, "{:?}", r.findings);
}

#[test]
fn unused_waivers_are_reported() {
    let src = "// anonet-lint: allow(determinism, reason = \"nothing here iterates\")\nfn f() {}\n";
    let r = check_source("crates/graph/src/fixture.rs", src, &Config::workspace());
    assert!(r.findings.is_empty());
    assert_eq!(r.unused_waivers, vec![(1, "determinism".to_string())]);
}

#[test]
fn test_modules_are_exempt() {
    let src = r#"
pub fn ok() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for x in &m {}
        Some(1).unwrap();
        let v = NodeId::new(0);
        let _ = v.index();
    }
}
"#;
    for path in [
        "crates/graph/src/fixture.rs",
        "crates/runtime/src/fixture.rs",
        "crates/algorithms/src/fixture.rs",
    ] {
        let r = check_source(path, src, &Config::workspace());
        assert!(r.findings.is_empty(), "{path}: {:?}", r.findings);
    }
}

#[test]
fn workspace_self_check_is_clean() {
    // The acceptance gate: the repo itself must come out clean — every
    // true finding fixed or waived with a reason, no stale waivers.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_check(&root, &Config::workspace()).expect("walk the workspace");
    assert!(report.files_scanned > 50, "only scanned {} files", report.files_scanned);
    let unwaived: Vec<_> = report.findings.iter().filter(|f| !f.waived).collect();
    assert!(unwaived.is_empty(), "unwaived findings: {unwaived:#?}");
    assert!(report.unused_waivers.is_empty(), "unused waivers: {:?}", report.unused_waivers);
    // Every waiver that is in use carries a non-empty reason.
    for f in report.findings.iter().filter(|f| f.waived) {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "waived finding without a reason: {f:?}"
        );
    }
}

#[test]
fn json_report_round_trips_through_the_shared_serializer() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_check(&root, &Config::workspace()).expect("walk the workspace");
    let parsed = Json::parse(&report.to_json().pretty()).expect("self-produced JSON parses");
    assert_eq!(parsed.get("tool").and_then(Json::as_str), Some("anonet-lint"));
    assert_eq!(
        parsed.get("files_scanned").and_then(Json::as_f64),
        Some(report.files_scanned as f64)
    );
    assert_eq!(parsed.get("unwaived").and_then(Json::as_f64), Some(0.0));
    let findings = parsed.get("findings").and_then(Json::items).expect("findings array");
    assert_eq!(findings.len(), report.findings.len());
    for f in findings {
        assert!(f.get("waived").and_then(Json::as_bool).unwrap());
        assert!(!f.get("reason").and_then(Json::as_str).unwrap().is_empty());
    }
    let by_rule = parsed.get("by_rule").expect("by_rule object");
    for rule in anonet_lint::RULES {
        assert_eq!(
            by_rule.get(rule).and_then(|r| r.get("unwaived")).and_then(Json::as_f64),
            Some(0.0),
            "rule {rule}"
        );
    }
}
