//! Property: the flow-aware engine is a pure function of the file *set*.
//!
//! `check_workspace` sorts files by path before lexing, parsing, and
//! building the item graph, so the order in which the driver happens to
//! discover files must not leak into the report — not into the findings,
//! not into their order, not into waiver accounting. This is the
//! contract that makes the CI lint gate reproducible across platforms
//! whose directory walks order entries differently.
//!
//! The corpus is the real workspace: every `.rs` file under
//! `crates/*/src`, the same set the self-check gate scans.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use anonet_lint::{check_workspace, Config};
use proptest::prelude::*;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn workspace_files() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crates = root.join("crates");
    let mut paths = Vec::new();
    let mut krates: Vec<PathBuf> = fs::read_dir(&crates)
        .expect("workspace crates/ dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    krates.sort();
    for krate in krates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths);
        }
    }
    paths
        .into_iter()
        .map(|path| {
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src =
                fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (rel, src)
        })
        .collect()
}

/// The file corpus and the reference report for the sorted order,
/// computed once. `Report` doesn't implement `PartialEq` (it's a render
/// target, not a value type), so reports are compared through their
/// canonical JSON encoding, which covers findings, waiver accounting,
/// and scan stats alike.
fn corpus() -> &'static (Vec<(String, String)>, String) {
    static CORPUS: OnceLock<(Vec<(String, String)>, String)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let files = workspace_files();
        assert!(files.len() > 50, "corpus unexpectedly small: {} files", files.len());
        let reference = check_workspace(&files, &Config::workspace()).to_json().pretty();
        (files, reference)
    })
}

/// splitmix64: a tiny, well-mixed PRNG so the Fisher-Yates permutation
/// is a deterministic function of the proptest-drawn seed (shrinking
/// stays meaningful, failures replay exactly).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn report_is_invariant_under_file_order_permutation(seed in 0u64..u64::MAX) {
        let (files, reference) = corpus();
        let order = permutation(files.len(), seed);
        let shuffled: Vec<(String, String)> =
            order.iter().map(|&i| files[i].clone()).collect();
        let permuted = check_workspace(&shuffled, &Config::workspace()).to_json().pretty();
        prop_assert_eq!(&permuted, reference);
    }
}
