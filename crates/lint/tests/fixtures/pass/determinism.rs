// Fixture: hash containers used deterministically — lookups, sorted
// emission, BTree collection.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn class_histogram(classes: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &c in classes {
        *counts.entry(c).or_insert(0) += 1;
    }
    // OK: sorted before emission (same statement).
    let mut pairs: Vec<(u32, usize)> = counts.iter().map(|(&c, &n)| (c, n)).collect();
    pairs.sort_unstable();
    pairs
}

pub fn canonical(counts: &HashMap<u32, usize>) -> BTreeMap<u32, usize> {
    // OK: collected into a BTreeMap, which owns the order.
    let canonical: BTreeMap<u32, usize> = counts.iter().map(|(&c, &n)| (c, n)).collect();
    canonical
}

pub fn membership(set: &HashSet<u32>, probe: u32) -> bool {
    // OK: point lookup, no iteration.
    set.contains(&probe)
}

use std::collections::BTreeSet;

pub fn drain_dirty_classes(dirty: &mut BTreeSet<u32>) -> Vec<u32> {
    // OK: a BTreeSet worklist sweeps in sorted class-id order, so split
    // processing (and fresh id assignment) is deterministic.
    let sweep: Vec<u32> = dirty.iter().copied().collect();
    dirty.clear();
    sweep
}
