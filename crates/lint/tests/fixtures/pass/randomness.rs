// Fixture: randomness drawn through the sanctioned abstraction.
use anonet_runtime::RandomSource;

pub fn draw(src: &mut dyn RandomSource) -> bool {
    src.next_bit()
}
