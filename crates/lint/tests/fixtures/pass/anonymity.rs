// Fixture: identity-free algorithm code — ports, colors, views only.
pub fn local_rule(own_color: u32, neighbor_colors: &[u32]) -> bool {
    neighbor_colors.iter().all(|&c| c != own_color)
}

pub fn halt_decision(round: usize, view_depth: usize) -> bool {
    round >= view_depth
}
