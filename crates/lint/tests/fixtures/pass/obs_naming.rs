// Fixture: obs naming done right — `subsystem.noun[.verb]` constants,
// bare-leaf span names, constants at call sites.
pub mod names {
    pub const ENGINE_ROUNDS: &str = "engine.rounds";
    pub const CACHE_DERAND_HIT: &str = "cache.derand.hit";
    pub const SPAN_PIPELINE: &str = "pipeline";
}

pub fn record(rec: &dyn Recorder) {
    rec.counter(names::ENGINE_ROUNDS, 1);
    rec.histogram(names::CACHE_DERAND_HIT, 2.0);
    let _span = Span::new(rec, names::SPAN_PIPELINE);
}
