//! Pass fixture: consistent lock order, block-scoped guards, and guards
//! released before submitting work.

use std::sync::Mutex;

use anonet_batch::BatchScheduler;

pub struct Hub {
    shards: Mutex<u32>,
    tables: Mutex<u32>,
}

impl Hub {
    // Both functions acquire in the same order: one edge, no cycle.
    fn ordered_one(&self) {
        let a = self.shards.lock();
        let b = self.tables.lock();
        use_both(a, b);
    }

    fn ordered_two(&self) {
        let a = self.shards.lock();
        let b = self.tables.lock();
        use_both(a, b);
    }

    // The loop guard dies at the end of each iteration; the later
    // acquisition never overlaps it.
    fn scoped(&self) {
        for i in 0..4 {
            let g = self.shards.lock();
            touch(g, i);
        }
        let t = self.tables.lock();
        touch(t, 9);
    }

    // Explicitly dropped before the submit site.
    fn released_before_submit(&self, sched: &BatchScheduler, jobs: &[u32]) {
        let a = self.shards.lock();
        touch(a, 1);
        drop(a);
        let out = sched.run(jobs, |_i, j| j + 1);
        consume(out);
    }
}
