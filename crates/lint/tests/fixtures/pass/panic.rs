// Fixture: hot-path code returning typed errors.
pub enum HotError {
    EmptySlots,
    MissingSlot { index: usize },
}

pub fn commit(slots: Vec<Option<u32>>) -> Result<Vec<u32>, HotError> {
    if slots.is_empty() {
        return Err(HotError::EmptySlots);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, s)| s.ok_or(HotError::MissingSlot { index }))
        .collect()
}

pub fn fallback(slot: Option<u32>) -> u32 {
    // OK: non-panicking combinators are fine.
    slot.unwrap_or(0)
}
