//! Pass fixture: every Result is propagated, bound, or handled by
//! variant.

fn persist(x: u32) -> Result<u32, String> {
    Ok(x)
}

// Propagated with `?`.
fn propagates(x: u32) -> Result<u32, String> {
    let v = persist(x)?;
    Ok(v)
}

// `.ok()` whose Option is bound and returned: the caller still sees
// the failure.
fn binds_option(x: u32) -> Option<u32> {
    let v = persist(x).ok();
    v
}

// Both arms observed.
fn handles(x: u32) -> u32 {
    match persist(x) {
        Ok(v) => v,
        Err(e) => report(e),
    }
}

// An empty arm for a *specific* variant has observed the error; the
// deliberate skip is part of the protocol.
fn variant_skip(x: u32) {
    match persist_typed(x) {
        Ok(v) => consume(v),
        Err(FixtureError::Benign { .. }) => {}
        Err(e) => escalate(e),
    }
}
