//! Pass fixture: each worker touches the thread-local from inside its
//! own closure — every thread gets its own instance.

use std::cell::RefCell;

use anonet_batch::BatchScheduler;
use anonet_views::ViewArena;

thread_local! {
    static SCRATCH: RefCell<ViewArena> = RefCell::new(ViewArena::new());
}

// The canonical pattern: the thread-local is named only inside the
// submitted closure, so each worker uses its own arena.
fn per_worker(sched: &BatchScheduler, jobs: &[u32]) -> Vec<u32> {
    let out = sched.run(jobs, |_i, j| SCRATCH.with(|s| arena_encode(&s.borrow(), j)));
    unwrap_all(out)
}

// Arena use confined to the driver thread: no submit involved.
fn driver_side(jobs: &[u32]) -> Vec<u32> {
    let arena = ViewArena::new();
    jobs.iter().map(|&j| arena_encode(&arena, j)).collect()
}

// The closure parameter shadows the outer arena: nothing leaks.
fn param_shadow(sched: &BatchScheduler, jobs: &[u32]) -> Vec<u32> {
    let arena = ViewArena::new();
    warm(&arena);
    let out = sched.run(jobs, |arena, j| arena + j);
    unwrap_all(out)
}
