//! Pass fixture: results committed by submission index — byte-identical
//! at any thread count.

use std::sync::Mutex;

use anonet_batch::BatchScheduler;

// The scheduler slots outcomes by submission index; folding its results
// in order reproduces the sequential output.
fn commit_in_order(sched: &BatchScheduler, jobs: &[u32]) -> Vec<u32> {
    let outcome = sched.run(jobs, |_i, j| encode(j));
    let mut out = Vec::new();
    for r in outcome.results {
        out.push(r);
    }
    out
}

// Tagging each result with its submission index and sorting afterwards
// also restores the canonical order.
fn sort_by_index(sched: &BatchScheduler, jobs: &[u32]) -> Vec<(usize, u32)> {
    let tagged = Mutex::new(Vec::new());
    sched.run(jobs, |i, j| {
        tagged.lock().push((i, encode(j)));
    });
    let mut tagged = tagged.into_inner();
    tagged.sort_by_key(index_of);
    tagged
}
