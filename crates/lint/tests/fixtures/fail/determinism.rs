// Fixture: unordered hash iteration in a deterministic-stage crate.
use std::collections::{HashMap, HashSet};

pub fn class_histogram(classes: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &c in classes {
        *counts.entry(c).or_insert(0) += 1;
    }
    // BAD: emits pairs in hash order.
    counts.iter().map(|(&c, &n)| (c, n)).collect()
}

pub fn first_member(set: &HashSet<u32>) -> Option<u32> {
    // BAD: `for` over a HashSet observes hash order.
    for x in set {
        return Some(*x);
    }
    None
}

pub fn drain_dirty_classes(dirty: &mut HashSet<u32>) -> Vec<u32> {
    // BAD: a refinement worklist swept in hash order makes the split
    // order — and thus freshly assigned class ids — nondeterministic.
    let sweep: Vec<u32> = dirty.iter().copied().collect();
    dirty.clear();
    sweep
}
