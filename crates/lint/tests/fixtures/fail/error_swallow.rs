//! Fail fixture: Results silently discarded.

// Every definition of `persist` returns Result, so the engine registers
// it as fallible workspace-wide.
fn persist(x: u32) -> Result<u32, String> {
    Ok(x)
}

// Discarded wholesale: the error can never be observed.
fn drop_result() {
    let _ = persist(4);
}

// Statement-terminal `.ok()`: converts to Option and throws that away.
fn terminal_ok(x: u32) {
    persist(x).ok();
}

// The arm matches every error and observes none of them.
fn silent_arm(x: u32) {
    match persist(x) {
        Ok(v) => consume(v),
        Err(_) => {}
    }
}
