//! Fail fixture: parallel results folded in completion order.

use std::sync::mpsc;
use std::sync::Mutex;

use anonet_batch::BatchScheduler;

// Workers race to append: the output order depends on thread timing,
// which breaks byte-identity across thread counts.
fn fold_by_arrival(sched: &BatchScheduler, jobs: &[u32]) -> Vec<u32> {
    let results = Mutex::new(Vec::new());
    sched.run(jobs, |_i, j| {
        results.lock().push(encode(j));
    });
    results.into_inner()
}

// Channel receives yield results in whatever order workers finish.
fn channel_fold(jobs: &[u32]) -> Vec<u32> {
    let (tx, rx) = mpsc::channel();
    for &j in jobs {
        spawn_worker(tx.clone(), j);
    }
    let mut out = Vec::new();
    for _ in jobs {
        out.push(rx.recv());
    }
    out
}
