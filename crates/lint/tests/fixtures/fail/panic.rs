// Fixture: panicking in a hot path that has a typed error channel.
pub fn commit(slots: Vec<Option<u32>>) -> Vec<u32> {
    if slots.is_empty() {
        panic!("no slots");
    }
    slots
        .into_iter()
        .map(|s| s.expect("slot filled"))
        .map(|s| Some(s).unwrap())
        .collect()
}
