// Fixture: algorithm code reading raw node identities.
use anonet_graph::{LabeledGraph, NodeId};

pub fn cheat<L>(g: &LabeledGraph<L>) -> Vec<bool> {
    let mut out = vec![false; g.node_count()];
    // BAD: constructs a concrete identity inside algorithm logic.
    let chosen = NodeId::new(0);
    // BAD: branches on a raw index.
    out[chosen.index()] = true;
    out
}
