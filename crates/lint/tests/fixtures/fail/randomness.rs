// Fixture: direct RNG use outside the sanctioned randomness layer.
use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn draw(seed: u64) -> u32 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.r#gen()
}
