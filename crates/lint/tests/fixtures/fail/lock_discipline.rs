//! Fail fixture: lock-order cycle, re-entrant acquisition, and a guard
//! held across a submit site.

use std::sync::Mutex;

use anonet_batch::BatchScheduler;

pub struct Hub {
    shards: Mutex<u32>,
    tables: Mutex<u32>,
}

impl Hub {
    // Establishes the edge shards -> tables…
    fn forward(&self) {
        let a = self.shards.lock();
        let b = self.tables.lock();
        use_both(a, b);
    }

    // …and this one the reverse edge: together, a lock-order cycle.
    fn backward(&self) {
        let b = self.tables.lock();
        let a = self.shards.lock();
        use_both(a, b);
    }

    // Re-acquires a class while its guard is live: self-deadlock.
    fn reentrant(&self) {
        let a = self.shards.lock();
        let again = self.shards.lock();
        use_both(a, again);
    }

    // The guard is still live when work is handed to other threads.
    fn held_across_submit(&self, sched: &BatchScheduler, jobs: &[u32]) {
        let a = self.shards.lock();
        let out = sched.run(jobs, |_i, j| j + 1);
        consume(a, out);
    }
}
