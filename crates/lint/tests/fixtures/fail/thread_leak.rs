//! Fail fixture: thread-local-derived state captured by closures
//! submitted to the scheduler.

use std::cell::RefCell;

use anonet_batch::BatchScheduler;
use anonet_views::ViewArena;

thread_local! {
    static SCRATCH: RefCell<ViewArena> = RefCell::new(ViewArena::new());
}

// A thread-confined arena built on the driver thread, then shared with
// every worker through the closure.
fn leak_arena(sched: &BatchScheduler, jobs: &[u32]) -> Vec<u32> {
    let arena = ViewArena::new();
    let out = sched.run(jobs, |_i, j| arena_encode(&arena, j));
    unwrap_all(out)
}

// A handle pulled out of the thread-local on the driver thread leaks
// the driver's instance into the workers.
fn leak_handle(sched: &BatchScheduler, jobs: &[u32]) -> Vec<u32> {
    let handle = SCRATCH.with(|s| s.as_ptr());
    let out = sched.run(jobs, |_i, j| encode_at(handle, j));
    unwrap_all(out)
}
