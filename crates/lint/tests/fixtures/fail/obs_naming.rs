// Fixture: obs naming violations — bad constant values in the names
// module and literal names at call sites.
pub mod names {
    pub const ENGINE_ROUNDS: &str = "EngineRounds";
    pub const TOO_DEEP: &str = "engine.rounds.per.phase";
    pub const SPAN_PIPELINE: &str = "pipeline.run";
}

pub fn record(rec: &dyn Recorder) {
    rec.counter("adhoc.metric", 1);
    rec.histogram("another.raw.name", 2.0);
    let _span = Span::new(rec, "inline_span");
}
