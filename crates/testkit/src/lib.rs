//! # anonet-testkit
//!
//! A metamorphic conformance harness for the `anonet` workspace — the
//! testing counterpart of the paper's central claim that randomization
//! buys exactly a 2-hop coloring. Three pillars:
//!
//! * **Metamorphic oracles** — outputs must be invariant under node
//!   renumbering and port re-permutation, and must commute with
//!   permutation-voltage lifts along their projections;
//! * **Differential oracles** — the practical derandomizer, the
//!   infinity-model `A_∞`, the literal `A_*`, the content-addressed
//!   cache, the Theorem-1 pipeline, and a seeded randomized run must all
//!   tell the same story (via [`anonet_core::conformance`]); the
//!   [`persist`] oracle extends the cache leg to disk: memory ≡ fresh
//!   persistent ≡ crash-recovered persistent, byte for byte;
//! * **Adversarial execution** — every execution-backed oracle can run
//!   under a hostile [`RoundAdversary`](anonet_runtime::RoundAdversary)
//!   (reverse, skewed, keyed-shuffle sweeps), which must never change
//!   outputs because rounds are simultaneous — and must never change the
//!   bridged `anonet_obs` metrics either (the `obs-invariance` oracle:
//!   total messages, bytes, bits drawn, and round counts of a seeded run
//!   are schedule-invariant).
//!
//! Scenarios are generated from a deterministic, seeded [`TestCase`]
//! stream over every [`Family`](anonet_graph::generators::Family) ×
//! coloring mode × lift multiplicity × adversary. Failures shrink to a
//! locally minimal case and panic with a replay string:
//!
//! ```text
//! ANONET_TESTKIT_REPLAY='tc1:family=cycle,n=7,seed=42,color=greedy,lift=2,adv=skewed' cargo test
//! ```
//!
//! See [`suite::Config`] for the `ANONET_TESTKIT_*` environment knobs.
//!
//! # Example
//!
//! ```
//! use anonet_algorithms::{mis::RandomizedMis, problems::MisProblem};
//! use anonet_testkit::{Suite, TestCase};
//!
//! let suite = Suite::new("mis", RandomizedMis::new(), MisProblem, |_| ()).with_astar();
//! let case: TestCase = "tc1:family=cycle,n=3,seed=7,color=greedy,lift=2,adv=reverse"
//!     .parse()
//!     .unwrap();
//! suite.check(&case).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod campaign;
pub mod gen;
pub mod leader;
pub mod oracles;
pub mod persist;
pub mod suite;
pub mod testcase;

pub use campaign::{CampaignCell, CampaignGrid};
pub use gen::{build_graph, build_instance, color_graph, flavored_graph, Instance};
pub use leader::{check_leader, run_leader_suite};
pub use oracles::{fingerprint, Failure};
pub use persist::{check_persistence, default_persistence_cases, PersistReport};
pub use suite::{Config, Suite};
pub use testcase::{AdversaryKind, ColoringMode, TestCase};

/// Errors surfaced by the generator layer (oracle violations are
/// [`Failure`]s, not errors).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TestkitError {
    /// An underlying graph error.
    Graph(anonet_graph::GraphError),
    /// An underlying runtime error.
    Runtime(anonet_runtime::RuntimeError),
    /// An underlying core error.
    Core(anonet_core::CoreError),
}

impl fmt::Display for TestkitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestkitError::Graph(e) => write!(f, "graph error: {e}"),
            TestkitError::Runtime(e) => write!(f, "runtime error: {e}"),
            TestkitError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for TestkitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TestkitError::Graph(e) => Some(e),
            TestkitError::Runtime(e) => Some(e),
            TestkitError::Core(e) => Some(e),
        }
    }
}

/// Convenient alias for results with [`TestkitError`].
pub type Result<T> = std::result::Result<T, TestkitError>;
