//! The leader-election conformance suite.
//!
//! Leader election is the paper's boundary case: solvable exactly on
//! *prime* networks (trivial view quotient). The suite checks both sides
//! of the dichotomy on generated instances — a unique leader with
//! renumbering/port metamorphic invariance on prime instances, and a
//! color-sharing duplicate-view witness on non-prime ones (every lift
//! with an intact projection is non-prime by construction).

use anonet_algorithms::leader::{elect_leader, leader_election_solvable};
use anonet_algorithms::problems::LeaderOrNotProblem;
use anonet_algorithms::AlgorithmError;
use anonet_graph::lift::Perm;
use anonet_graph::NodeId;
use anonet_runtime::Problem;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::gen;
use crate::oracles::Failure;
use crate::suite::run_harness;
use crate::testcase::TestCase;

/// Runs every leader oracle on one case.
///
/// # Errors
///
/// The first oracle violation, as a [`Failure`].
pub fn check_leader(case: &TestCase) -> Result<(), Failure> {
    let inst = gen::build_instance(case).map_err(|e| Failure::new("generator", e.to_string()))?;
    let colors = &inst.colors;
    let n = colors.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(case.seed ^ 0x1EAD_E137_1EAD_E137);

    match elect_leader(colors) {
        Ok(outcome) => {
            if !leader_election_solvable(colors) {
                return Err(Failure::new(
                    "leader-dichotomy",
                    "elect_leader succeeded on an instance reported unsolvable",
                ));
            }
            if inst.projection.is_some() && case.lift >= 2 {
                return Err(Failure::new(
                    "leader-dichotomy",
                    format!("a {}-fold lift with intact fibers cannot be prime", case.lift),
                ));
            }
            // Exactly one leader, and the outcome is self-consistent.
            let unit = colors.map_labels(|_| ());
            if !LeaderOrNotProblem.is_valid_output(&unit, &outcome.outputs)
                || !outcome.outputs[outcome.leader.index()]
            {
                return Err(Failure::new(
                    "leader-uniqueness",
                    format!("outputs {:?} with leader {}", outcome.outputs, outcome.leader),
                ));
            }
            // Metamorphic: the elected leader follows a renumbering.
            let perm = Perm::random(n, &mut rng);
            let renumbered = colors
                .renumber(&perm)
                .map_err(|e| Failure::new("leader-renumbering", e.to_string()))?;
            match elect_leader(&renumbered) {
                Ok(ren) if ren.leader.index() == perm.apply(outcome.leader.index()) => {}
                Ok(ren) => {
                    return Err(Failure::new(
                        "leader-renumbering",
                        format!(
                            "leader {} should map to {} but election picked {}",
                            outcome.leader,
                            perm.apply(outcome.leader.index()),
                            ren.leader
                        ),
                    ));
                }
                Err(e) => {
                    return Err(Failure::new(
                        "leader-renumbering",
                        format!("renumbered instance stopped being prime: {e}"),
                    ));
                }
            }
            // Metamorphic: the canonical-view election is portless.
            let shuffled = colors.with_shuffled_ports(&mut rng);
            match elect_leader(&shuffled) {
                Ok(shuf) if shuf.leader == outcome.leader => Ok(()),
                Ok(shuf) => Err(Failure::new(
                    "leader-port-invariance",
                    format!(
                        "leader moved from {} to {} under a port shuffle",
                        outcome.leader, shuf.leader
                    ),
                )),
                Err(e) => Err(Failure::new(
                    "leader-port-invariance",
                    format!("port shuffle broke primality: {e}"),
                )),
            }
        }
        Err(AlgorithmError::NotPrime { duplicate_views: (u, v) }) => {
            if leader_election_solvable(colors) {
                return Err(Failure::new(
                    "leader-dichotomy",
                    "elect_leader refused an instance reported solvable",
                ));
            }
            // The witness must be two distinct nodes; equal views force
            // equal colors.
            if u == v || colors.label(NodeId::new(u)) != colors.label(NodeId::new(v)) {
                return Err(Failure::new(
                    "leader-witness",
                    format!("duplicate-view witness ({u}, {v}) is not a color-sharing pair"),
                ));
            }
            Ok(())
        }
        Err(e) => Err(Failure::new("leader-error", format!("unexpected election error: {e}"))),
    }
}

/// Walks the configured case stream through [`check_leader`], shrinking
/// and reporting like any other suite.
///
/// # Panics
///
/// Panics with a replay string when any case fails an oracle.
pub fn run_leader_suite(default_cases: usize) {
    run_harness("leader", default_cases, &[], check_leader);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_and_non_prime_cases_both_pass() {
        // A lifted case (non-prime) and a plain one (usually prime).
        let lifted: TestCase =
            "tc1:family=cycle,n=3,seed=1,color=greedy,lift=4,adv=reverse".parse().unwrap();
        check_leader(&lifted).unwrap();
        let plain: TestCase =
            "tc1:family=wheel,n=6,seed=2,color=pipeline,lift=1,adv=skewed".parse().unwrap();
        check_leader(&plain).unwrap();
    }
}
