//! Failure reporting and output fingerprints shared by the suites.

use std::fmt;

use anonet_graph::Label;

/// One oracle violation: which oracle fired and a human-readable witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Failure {
    /// Oracle name (e.g. `renumbering-invariance`).
    pub oracle: String,
    /// What disagreed, with enough context to debug from the replay.
    pub detail: String,
}

impl Failure {
    /// Creates a failure.
    pub fn new(oracle: impl Into<String>, detail: impl Into<String>) -> Self {
        Failure { oracle: oracle.into(), detail: detail.into() }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle {} failed: {}", self.oracle, self.detail)
    }
}

/// FNV-1a over the canonical encodings of a label sequence — a compact
/// output fingerprint for differential comparisons and failure messages.
pub fn fingerprint<L: Label>(labels: &[L]) -> u64 {
    let mut bytes = Vec::new();
    for l in labels {
        l.encode(&mut bytes);
        bytes.push(0xFE); // separator so encodings cannot smear
    }
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_groupings() {
        // Same bytes, different grouping ⇒ different fingerprints.
        let a = fingerprint(&[vec![1u8, 2], vec![3u8]]);
        let b = fingerprint(&[vec![1u8], vec![2u8, 3]]);
        assert_ne!(a, b);
        assert_eq!(fingerprint(&[true, false]), fingerprint(&[true, false]));
    }

    #[test]
    fn failure_display_names_the_oracle() {
        let f = Failure::new("port-invariance", "node 3 flipped");
        assert!(f.to_string().contains("port-invariance"));
        assert!(f.to_string().contains("node 3"));
    }
}
