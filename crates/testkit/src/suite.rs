//! The conformance suite runner: for each generated [`TestCase`], chain
//! every applicable oracle; on failure, greedily shrink to a locally
//! minimal case, write a replay artifact, and panic with the replay
//! string.

use std::cell::Cell;
use std::fmt::Debug;
use std::path::PathBuf;
use std::sync::Arc;

use anonet_batch::DerandCache;
use anonet_graph::lift::Perm;
use anonet_graph::{Label, LabeledGraph};
use anonet_runtime::{
    run, run_with_adversary, ExecConfig, Oblivious, ObliviousAlgorithm, Problem, RngSource, Status,
    ZeroSource,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use anonet_core::astar::{run_astar_observed, run_astar_threaded, AStarConfig};
use anonet_core::conformance::{
    astar_fast_reference_agreement, astar_infinity_agreement, replay_on_full_instance,
    view_graph_agreement,
};
use anonet_core::pipeline::run_pipeline;
use anonet_core::{CoreError, Derandomizer, SearchStrategy};
use anonet_obs::{bridge, names, MemoryRecorder, SharedRecorder};
use anonet_views::{canonical_view_encoding, Refinement, RefinementEngine, ViewMode, ViewTree};

use crate::gen::{self, Instance};
use crate::oracles::Failure;
use crate::testcase::{AdversaryKind, TestCase};

/// Environment-driven suite configuration.
///
/// * `ANONET_TESTKIT_SEED` — base seed of the case stream (default
///   `0xA11CE`);
/// * `ANONET_TESTKIT_CASES` — number of cases per suite (default: the
///   suite's own default);
/// * `ANONET_ADVERSARY` — `fair` / `reverse` / `skewed` / `shuffled`
///   forces one scheduler on every case; `mixed` (or unset) keeps the
///   per-case choice;
/// * `ANONET_TESTKIT_REPLAY` — a `tc1:…` replay string; the suite runs
///   exactly that case (no shrinking — the case is already minimal).
#[derive(Clone, Debug)]
pub struct Config {
    /// Base seed for [`TestCase::from_index`].
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Forced scheduler, if any.
    pub adversary: Option<AdversaryKind>,
    /// Single replay case, if any.
    pub replay: Option<TestCase>,
}

impl Config {
    /// Reads the configuration from the environment. Malformed variables
    /// panic — a misspelled suite configuration should never silently run
    /// the defaults. Unset and empty variables mean "default" (CI passes
    /// empty strings through its matrix).
    pub fn from_env(default_cases: usize) -> Config {
        let var = |name: &str| std::env::var(name).ok().filter(|v| !v.is_empty());
        let seed = match var("ANONET_TESTKIT_SEED") {
            Some(v) => v.parse().expect("ANONET_TESTKIT_SEED must be a u64"),
            None => 0xA11CE,
        };
        let cases = match var("ANONET_TESTKIT_CASES") {
            Some(v) => v.parse().expect("ANONET_TESTKIT_CASES must be a usize"),
            None => default_cases,
        };
        let adversary = match var("ANONET_ADVERSARY") {
            Some(v) if v == "mixed" => None,
            Some(v) => Some(v.parse().expect("ANONET_ADVERSARY must name a scheduler or 'mixed'")),
            None => None,
        };
        let replay = var("ANONET_TESTKIT_REPLAY")
            .map(|v| v.parse().expect("ANONET_TESTKIT_REPLAY must be a tc1:… string"));
        Config { seed, cases, adversary, replay }
    }
}

/// A metamorphic + differential conformance suite for one Las-Vegas
/// algorithm/problem pair.
///
/// `mk_input` maps an instance color to the node's input label (for
/// input-free problems it is `|_| ()`; the matching problem takes the
/// color itself as input).
pub struct Suite<A, P, F> {
    name: &'static str,
    alg: A,
    problem: P,
    mk_input: F,
    /// Largest quotient the literal `A_*` differential may enumerate
    /// (0 disables it). The enumeration cost is exponential in both the
    /// label universe and the tape length, so this stays tiny.
    astar_max_quotient: usize,
    /// Deterministic case guaranteed to pass the quotient gate, checked
    /// before the stream so the differential always runs at least once.
    astar_anchor: Option<&'static str>,
    /// Literal `A_*` runs spent so far in the current [`Suite::run`].
    astar_spent: Cell<usize>,
}

/// Literal `A_*` enumerations allowed per [`Suite::run`]: the anchor plus
/// at most one stream case that happens to clear the quotient gate.
const ASTAR_BUDGET: usize = 2;

impl<A, P, F> Suite<A, P, F>
where
    A: ObliviousAlgorithm + Clone + Sync,
    A::Input: Label + Sync,
    A::Output: Send,
    P: Problem<Input = A::Input, Output = A::Output>,
    F: Fn(u32) -> A::Input,
{
    /// Creates a suite.
    pub fn new(name: &'static str, alg: A, problem: P, mk_input: F) -> Self {
        Suite {
            name,
            alg,
            problem,
            mk_input,
            astar_max_quotient: 0,
            astar_anchor: None,
            astar_spent: Cell::new(0),
        }
    }

    /// Also runs the paper-exact `A_* ≡ A_∞` differential (the literal
    /// `run_astar` against the literal exhaustive `A_∞` enumeration) on
    /// cases with quotients of ≤ 3 view classes, budgeted to
    /// [`ASTAR_BUDGET`] runs per suite and anchored on a lifted triangle
    /// so it always fires. Enable only for short-tape algorithms (MIS):
    /// the enumeration is exponential in tape length.
    pub fn with_astar(mut self) -> Self {
        self.astar_max_quotient = 3;
        self.astar_anchor = Some("tc1:family=cycle,n=3,seed=1,color=greedy,lift=2,adv=reverse");
        self
    }

    /// Like [`Suite::with_astar`] but restricted to two-class quotients
    /// (a single colored edge and its lifts), for algorithms whose longer
    /// tapes make even a triangle enumeration explode (matching draws a
    /// proposal direction *and* an acceptance bit per phase).
    pub fn with_astar_tiny(mut self) -> Self {
        self.astar_max_quotient = 2;
        self.astar_anchor = Some("tc1:family=path,n=2,seed=1,color=greedy,lift=1,adv=skewed");
        self
    }

    fn inputs(&self, colors: &LabeledGraph<u32>) -> LabeledGraph<A::Input> {
        colors.map_labels(|&c| (self.mk_input)(c))
    }

    fn instance(&self, colors: &LabeledGraph<u32>) -> LabeledGraph<(A::Input, u32)> {
        self.inputs(colors).zip(colors).expect("same graph zips with itself")
    }

    /// Runs every oracle on one case.
    ///
    /// # Errors
    ///
    /// The first oracle violation, as a [`Failure`].
    pub fn check(&self, case: &TestCase) -> Result<(), Failure> {
        let inst: Instance =
            gen::build_instance(case).map_err(|e| Failure::new("generator", e.to_string()))?;
        let instance = self.instance(&inst.colors);
        let inputs = self.inputs(&inst.colors);
        let n = instance.node_count();
        let config = ExecConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(case.seed ^ 0x7E57_CA5E_7E57_CA5E);

        // Differential 1 — the derandomizer agrees with itself on the
        // instance's own view graph (the general A_* ≡ A_∞ form).
        let drun = view_graph_agreement(&self.alg, &instance, SearchStrategy::default(), &config)
            .map_err(|e| Failure::new("view-graph-agreement", e.to_string()))?;

        if !self.problem.is_valid_output(&inputs, &drun.outputs) {
            return Err(Failure::new(
                "derandomized-validity",
                format!("derandomized outputs are not a valid solution: {:?}", drun.outputs),
            ));
        }

        // Differential 2 — the randomized engine replays the canonical
        // assignment to the same outputs (lifting lemma, executable).
        replay_on_full_instance(&self.alg, &instance, &drun, &config)
            .map_err(|e| Failure::new("randomized-replay", e.to_string()))?;

        // Metamorphic 1 — node renumbering: outputs follow the nodes.
        let perm = Perm::random(n, &mut rng);
        let renumbered = instance
            .renumber(&perm)
            .map_err(|e| Failure::new("renumbering-invariance", e.to_string()))?;
        let ren_run = Derandomizer::new(self.alg.clone())
            .run(&renumbered)
            .map_err(|e| Failure::new("renumbering-invariance", e.to_string()))?;
        for v in 0..n {
            if ren_run.outputs[perm.apply(v)] != drun.outputs[v] {
                return Err(Failure::new(
                    "renumbering-invariance",
                    format!(
                        "node {v} (renumbered {}): {:?} became {:?}",
                        perm.apply(v),
                        drun.outputs[v],
                        ren_run.outputs[perm.apply(v)]
                    ),
                ));
            }
        }

        // Metamorphic 2 — port re-permutation: the derandomizer is
        // portless end to end, so outputs must be byte-identical.
        let shuffled = instance.with_shuffled_ports(&mut rng);
        let shuf_run = Derandomizer::new(self.alg.clone())
            .run(&shuffled)
            .map_err(|e| Failure::new("port-invariance", e.to_string()))?;
        if shuf_run.outputs != drun.outputs {
            return Err(Failure::new(
                "port-invariance",
                format!("{:?} vs {:?} after port shuffle", drun.outputs, shuf_run.outputs),
            ));
        }

        // Differential — the view machinery against itself: the arena
        // encoder must byte-match the recursive `ViewTree` on every node,
        // and the incremental refinement engine must track from-scratch
        // refinement through seeded monotone label refinements, in both
        // view modes. (The engine backs the scale path; a divergence here
        // is a silent wrong-canonical-id bug everywhere downstream.)
        let depth = n.clamp(1, 3);
        for v in instance.graph().nodes() {
            let reference = ViewTree::build(&instance, v, depth)
                .map_err(|e| Failure::new("arena-encoding", e.to_string()))?
                .canonical_encoding();
            let fast = canonical_view_encoding(&instance, v, depth)
                .map_err(|e| Failure::new("arena-encoding", e.to_string()))?;
            if fast != reference {
                return Err(Failure::new(
                    "arena-encoding",
                    format!("arena encoding of node {} diverged from ViewTree", v.index()),
                ));
            }
        }
        for mode in [ViewMode::Portless, ViewMode::PortAware] {
            let mut labels: Vec<(u32, u32)> =
                inst.colors.labels().iter().map(|&c| (c, 0)).collect();
            let relabeled = |labels: &[(u32, u32)]| {
                LabeledGraph::new(inst.colors.graph().clone(), labels.to_vec())
                    .expect("label count matches the graph it came from")
            };
            let mut engine = RefinementEngine::new(&relabeled(&labels), mode);
            for phase in 1..=3u32 {
                // A fresh, unique tag on one seeded node: a strict
                // refinement, so the engine's incremental path is on trial
                // (topology changes and non-monotone updates fall back to
                // a rebuild by design).
                let v = (rng.next_u64() % n as u64) as usize;
                labels[v].1 = phase;
                let g2 = relabeled(&labels);
                engine.update(&g2);
                let scratch = Refinement::compute(&g2, mode);
                if engine.classes() != scratch.classes()
                    || engine.stabilization_depth() != scratch.stabilization_depth()
                {
                    return Err(Failure::new(
                        "refinement-incremental",
                        format!(
                            "engine diverged from from-scratch refinement ({mode:?}, phase \
                             {phase}, node {v}): {:?} (depth {}) vs {:?} (depth {})",
                            engine.classes(),
                            engine.stabilization_depth(),
                            scratch.classes(),
                            scratch.stabilization_depth()
                        ),
                    ));
                }
            }
        }

        // Metamorphic 3 — lift projection: derandomizing the lift is the
        // lift of derandomizing the base (Lemma 3 / Figure 2).
        if let (Some(projection), Some(base_colors)) = (&inst.projection, &inst.base_colors) {
            let base_run = Derandomizer::new(self.alg.clone())
                .run(&self.instance(base_colors))
                .map_err(|e| Failure::new("lift-projection", e.to_string()))?;
            for (v, &img) in projection.iter().enumerate() {
                if drun.outputs[v] != base_run.outputs[img.index()] {
                    return Err(Failure::new(
                        "lift-projection",
                        format!(
                            "lift node {v} got {:?} but its base node {} got {:?}",
                            drun.outputs[v],
                            img.index(),
                            base_run.outputs[img.index()]
                        ),
                    ));
                }
            }
        }

        // Adversarial — a seeded Las-Vegas run is schedule-invariant
        // (rounds are simultaneous; bit draws are canonical) and valid.
        let fair =
            run(&Oblivious(self.alg.clone()), &inputs, &mut RngSource::seeded(case.seed), &config)
                .map_err(|e| Failure::new("adversary-invariance", e.to_string()))?;
        let mut adversary = case.adversary.build(case.seed);
        let skewed = run_with_adversary(
            &Oblivious(self.alg.clone()),
            &inputs,
            &mut RngSource::seeded(case.seed),
            &config,
            adversary.as_mut(),
        )
        .map_err(|e| Failure::new("adversary-invariance", e.to_string()))?;
        if !fair.is_successful() || !skewed.is_successful() {
            return Err(Failure::new(
                "adversary-invariance",
                format!(
                    "seeded run did not complete (fair {:?}, adv {:?})",
                    fair.status(),
                    skewed.status()
                ),
            ));
        }
        let fair_outputs = fair.outputs_unwrapped();
        if fair_outputs != skewed.outputs_unwrapped() || fair.rounds() != skewed.rounds() {
            return Err(Failure::new(
                "adversary-invariance",
                format!("outputs or round counts diverged under adversary {}", case.adversary),
            ));
        }
        // Observability — the bridged engine metrics are schedule-
        // invariant: a seeded run's totals (messages, bytes, bits,
        // rounds) and per-round histograms must not depend on the
        // delivery schedule the adversary picked.
        let fair_rec = MemoryRecorder::new();
        bridge::record_execution(&fair_rec, &fair);
        let adv_rec = MemoryRecorder::new();
        bridge::record_execution(&adv_rec, &skewed);
        let (fair_snap, adv_snap) = (fair_rec.snapshot(), adv_rec.snapshot());
        for metric in [
            names::ENGINE_ROUNDS,
            names::ENGINE_MESSAGES,
            names::ENGINE_MESSAGE_BYTES,
            names::ENGINE_BITS_DRAWN,
        ] {
            if fair_snap.counter(metric) != adv_snap.counter(metric) {
                return Err(Failure::new(
                    "obs-invariance",
                    format!(
                        "{metric} diverged under adversary {}: fair {} vs adversarial {}",
                        case.adversary,
                        fair_snap.counter(metric),
                        adv_snap.counter(metric)
                    ),
                ));
            }
        }
        if fair_snap != adv_snap {
            return Err(Failure::new(
                "obs-invariance",
                format!(
                    "bridged metric snapshots diverged under adversary {}:\nfair:\n{}\nadversarial:\n{}",
                    case.adversary,
                    fair_snap.render(),
                    adv_snap.render()
                ),
            ));
        }
        if !self.problem.is_valid_output(&inputs, &fair_outputs) {
            return Err(Failure::new(
                "randomized-validity",
                format!("live seeded run produced an invalid solution: {fair_outputs:?}"),
            ));
        }

        // Negative — starved randomness must hit the round cap, with no
        // node tricked into an output (all-zero bits make no progress).
        if n >= 2 {
            let capped = ExecConfig::with_max_rounds(16);
            let starved = run(&Oblivious(self.alg.clone()), &inputs, &mut ZeroSource, &capped)
                .map_err(|e| Failure::new("round-cap", e.to_string()))?;
            if starved.status() != Status::MaxRounds || starved.is_successful() {
                return Err(Failure::new(
                    "round-cap",
                    format!(
                        "all-zero run ended with {:?} after {} rounds",
                        starved.status(),
                        starved.rounds()
                    ),
                ));
            }
        }

        // Differential 3 — a content-addressed cache changes work, never
        // outputs: miss then hit, byte-identical both times.
        let cache = Arc::new(DerandCache::new());
        let cached = Derandomizer::new(self.alg.clone()).with_cache(cache);
        let first =
            cached.run(&instance).map_err(|e| Failure::new("cache-consistency", e.to_string()))?;
        let second =
            cached.run(&instance).map_err(|e| Failure::new("cache-consistency", e.to_string()))?;
        if first.cache_hit || !second.cache_hit {
            return Err(Failure::new(
                "cache-consistency",
                format!(
                    "expected miss-then-hit, got {} then {}",
                    first.cache_hit, second.cache_hit
                ),
            ));
        }
        if first.outputs != drun.outputs || second.outputs != drun.outputs {
            return Err(Failure::new("cache-consistency", "cached outputs diverged".to_string()));
        }

        // Differential 4 — the full Theorem-1 pipeline (fresh randomized
        // coloring + derandomization) solves the problem on these inputs.
        let pipe = run_pipeline(&self.alg, &inputs, case.seed, SearchStrategy::default())
            .map_err(|e| Failure::new("pipeline-validity", e.to_string()))?;
        if !self.problem.is_valid_output(&inputs, &pipe.outputs) {
            return Err(Failure::new(
                "pipeline-validity",
                format!("pipeline outputs are not a valid solution: {:?}", pipe.outputs),
            ));
        }

        // Differential 5 (optional) — the literal A_* against the literal
        // exhaustive A_∞, where the enumeration is feasible (tiny
        // quotients AND small instances: A_* converges by phase ~2n), and
        // at most ASTAR_BUDGET times per run (the cost is exponential in
        // the label universe and the tape length, so one anchored hit plus
        // one stream hit is the whole point, not a sample).
        if drun.quotient_nodes <= self.astar_max_quotient
            && n <= 2 * self.astar_max_quotient
            && self.astar_spent.get() < ASTAR_BUDGET
        {
            self.astar_spent.set(self.astar_spent.get() + 1);
            match astar_infinity_agreement(
                &self.alg,
                &self.problem,
                &instance,
                &AStarConfig::default(),
                24,
            ) {
                Ok(_) => {}
                Err(e @ CoreError::ConformanceMismatch { .. }) => {
                    return Err(Failure::new("astar-infinity", e.to_string()));
                }
                // Budget exhaustion just means the case outgrew the
                // paper-exact enumeration — not a conformance failure.
                // anonet-lint: allow(error-swallow, reason = "budget exhaustion is the documented benign outcome; mismatches are caught by the arm above")
                Err(_) => {}
            }

            // Differential 6 — the memoized A_* engine (and its parallel
            // fan-out at 1/2/8 threads) against the literal Figure-3
            // reference, byte-for-byte across every field of the run.
            // Same gate and budget slot as differential 5: the reference
            // side is the expensive per-node enumeration.
            match astar_fast_reference_agreement(
                &self.alg,
                &self.problem,
                &instance,
                &AStarConfig::default(),
                &[1, 2, 8],
            ) {
                Ok(_) => {}
                Err(e @ CoreError::ConformanceMismatch { .. }) => {
                    return Err(Failure::new("astar-fast-vs-reference", e.to_string()));
                }
                // anonet-lint: allow(error-swallow, reason = "same budget-exhaustion contract as differential 5; mismatches are caught by the arm above")
                Err(_) => {}
            }

            // Causality 7 — causal tracing is thread-invariant: the span
            // tree of the threaded engine at any worker count, with the
            // scheduler segments (`batch_run`, `job`) erased, must equal
            // the sequential engine's phase tree, and no worker span may
            // escape as a fresh per-thread root.
            let seq_rec = MemoryRecorder::new();
            if run_astar_observed(
                &self.alg,
                &self.problem,
                &instance,
                &AStarConfig::default(),
                &seq_rec,
            )
            .is_ok()
            {
                let erase = [names::SPAN_BATCH_RUN, names::SPAN_JOB];
                let want = seq_rec.snapshot().reduced_span_paths(&erase);
                for t in [1usize, 2, 8] {
                    let mem = Arc::new(MemoryRecorder::new());
                    let shared: SharedRecorder = mem.clone();
                    if run_astar_threaded(
                        &self.alg,
                        &self.problem,
                        &instance,
                        &AStarConfig::default(),
                        t,
                        &shared,
                    )
                    .is_err()
                    {
                        continue; // budget — out of scope here
                    }
                    let snap = mem.snapshot();
                    if snap.span(names::SPAN_JOB).is_some() {
                        return Err(Failure::new(
                            "span-causality",
                            format!("threaded({t}): job spans surfaced as orphan roots"),
                        ));
                    }
                    let got = snap.reduced_span_paths(&erase);
                    if got != want {
                        return Err(Failure::new(
                            "span-causality",
                            format!(
                                "threaded({t}) phase tree diverged from sequential:\n\
                                 sequential: {want:?}\nthreaded:   {got:?}"
                            ),
                        ));
                    }
                }
            }
        }

        Ok(())
    }

    /// Walks the configured case stream, shrinking and reporting the
    /// first failure.
    ///
    /// # Panics
    ///
    /// Panics with a replay string when any case fails an oracle.
    pub fn run(&self, default_cases: usize) {
        self.astar_spent.set(0);
        let anchors: Vec<TestCase> = self
            .astar_anchor
            .iter()
            .map(|s| s.parse().expect("anchor strings are written in-crate"))
            .collect();
        run_harness(self.name, default_cases, &anchors, |case| self.check(case));
    }
}

/// Shared harness: replay / enumerate, shrink, persist, panic.
pub(crate) fn run_harness(
    name: &'static str,
    default_cases: usize,
    anchors: &[TestCase],
    check: impl Fn(&TestCase) -> Result<(), Failure>,
) {
    let config = Config::from_env(default_cases);
    if let Some(case) = &config.replay {
        let mut case = case.clone();
        if let Some(adv) = config.adversary {
            case.adversary = adv;
        }
        if let Err(failure) = check(&case) {
            report(name, &case, &failure);
        }
        return;
    }
    let stream = (0..config.cases).map(|index| TestCase::from_index(config.seed, index));
    for mut case in anchors.iter().cloned().chain(stream) {
        if let Some(adv) = config.adversary {
            case.adversary = adv;
        }
        if let Err(failure) = check(&case) {
            let (case, failure) = shrink_failure(case, failure, &check);
            report(name, &case, &failure);
        }
    }
}

/// Greedy shrink: repeatedly move to the first single-field
/// simplification that still fails, until none does.
fn shrink_failure(
    mut case: TestCase,
    mut failure: Failure,
    check: &impl Fn(&TestCase) -> Result<(), Failure>,
) -> (TestCase, Failure) {
    'outer: loop {
        for candidate in case.shrink() {
            if let Err(f) = check(&candidate) {
                case = candidate;
                failure = f;
                continue 'outer;
            }
        }
        return (case, failure);
    }
}

fn report(name: &str, case: &TestCase, failure: &Failure) -> ! {
    let replay = case.to_string();
    let text = format!(
        "suite:  {name}\noracle: {}\ndetail: {}\nreplay: ANONET_TESTKIT_REPLAY='{replay}' cargo test\n",
        failure.oracle, failure.detail
    );
    let dir = PathBuf::from("target").join("testkit-failures");
    if std::fs::create_dir_all(&dir).is_ok() {
        // Best-effort artifact; the panic below carries the same payload.
        // anonet-lint: allow(error-swallow, reason = "best-effort artifact; the panic below carries the identical payload")
        let _ = std::fs::write(dir.join(format!("{name}.txt")), &text);
    }
    panic!("conformance failure\n{text}");
}

impl<A: Debug, P: Debug, F> Debug for Suite<A, P, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Suite")
            .field("name", &self.name)
            .field("alg", &self.alg)
            .field("problem", &self.problem)
            .field("astar_max_quotient", &self.astar_max_quotient)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_algorithms::mis::RandomizedMis;
    use anonet_algorithms::problems::MisProblem;

    fn mis_suite() -> Suite<RandomizedMis, MisProblem, impl Fn(u32)> {
        Suite::new("mis-unit", RandomizedMis::new(), MisProblem, |_| ())
    }

    #[test]
    fn a_single_case_passes_every_oracle() {
        let case: TestCase =
            "tc1:family=cycle,n=4,seed=9,color=greedy,lift=2,adv=shuffled".parse().unwrap();
        mis_suite().check(&case).unwrap();
    }

    #[test]
    fn shrinking_descends_to_a_minimal_failure() {
        // A synthetic oracle failing iff n >= 4 under a non-fair
        // adversary: the shrinker must strip the irrelevant fields.
        let check = |case: &TestCase| -> Result<(), Failure> {
            if case.n >= 4 && case.adversary != AdversaryKind::Fair {
                Err(Failure::new("synthetic", "n too large"))
            } else {
                Ok(())
            }
        };
        let start: TestCase =
            "tc1:family=torus,n=9,seed=12,color=pipeline,lift=3,adv=shuffled".parse().unwrap();
        let failure = check(&start).unwrap_err();
        let (min_case, min_failure) = shrink_failure(start, failure, &check);
        assert_eq!(min_failure.oracle, "synthetic");
        // Fair would make it pass, so the adversary stays non-fair; all
        // other fields collapse to their minimal failing values.
        assert_ne!(min_case.adversary, AdversaryKind::Fair);
        assert_eq!(min_case.n, 4);
        assert_eq!(min_case.lift, 1);
        assert_eq!(min_case.seed, 0);
    }
}
