//! Campaign-cell enumeration for soak runs: a [`CampaignGrid`] is the
//! cross product (family × n × coloring × lift × adversary × threads),
//! and each [`CampaignCell`] derives a deterministic stream of
//! [`TestCase`]s whose `tc1:…` replay strings are the campaign's failure
//! currency — any cell a sentinel flags can be re-run in isolation by
//! feeding a case's `Display` form to `ANONET_TESTKIT_REPLAY`.
//!
//! Everything here is a pure function of the grid and a base seed: cells
//! enumerate in a fixed cross-product order, and per-cell case seeds come
//! from folding the cell's coordinate string into the base seed before
//! drawing with the testkit's SplitMix64 stream. Same grid + same seed ⇒
//! the same campaign, on every machine.

use anonet_graph::generators::Family;

use crate::testcase::{splitmix64, AdversaryKind, ColoringMode, TestCase};

/// One cell of a campaign grid: the full coordinate of a measured
/// configuration, including the batch-scheduler thread count (which must
/// never change outputs — that is one of the invariants soak pins).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignCell {
    /// Graph family sampled in this cell.
    pub family: Family,
    /// Requested node count (families clamp to their feasible range).
    pub n: usize,
    /// How the 2-hop coloring is produced.
    pub coloring: ColoringMode,
    /// Lift multiplicity (`1` = run the sampled base unlifted).
    pub lift: usize,
    /// Scheduler adversary for execution-backed oracles.
    pub adversary: AdversaryKind,
    /// Batch-scheduler worker threads used for this cell's runs.
    pub threads: usize,
}

impl CampaignCell {
    /// The cell's stable coordinate string — the key baselines and diffs
    /// join on. Deliberately mirrors the `tc1:` field syntax minus the
    /// seed (which varies per rep) plus the thread count.
    pub fn id(&self) -> String {
        format!(
            "family={},n={},color={},lift={},adv={},threads={}",
            self.family, self.n, self.coloring, self.lift, self.adversary, self.threads
        )
    }

    /// The deterministic seed stream rooted at `base_seed` for this cell:
    /// the coordinate string is folded into the state (FNV-1a style), so
    /// distinct cells draw decorrelated streams from the same base seed.
    pub fn cases(&self, base_seed: u64, reps: usize) -> Vec<TestCase> {
        let mut state = base_seed ^ 0x534F_414B_9E37_79B9;
        for byte in self.id().bytes() {
            state = (state ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        (0..reps)
            .map(|_| TestCase {
                family: self.family,
                n: self.n,
                seed: splitmix64(&mut state),
                coloring: self.coloring,
                lift: self.lift,
                adversary: self.adversary,
            })
            .collect()
    }
}

/// A campaign grid: the axis values whose cross product forms the cells.
/// Cells enumerate with `family` as the outermost axis and `threads` as
/// the innermost, in the order the axis vectors list their values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignGrid {
    /// Graph families swept.
    pub families: Vec<Family>,
    /// Node counts swept.
    pub ns: Vec<usize>,
    /// Coloring modes swept.
    pub colorings: Vec<ColoringMode>,
    /// Lift multiplicities swept.
    pub lifts: Vec<usize>,
    /// Adversaries swept.
    pub adversaries: Vec<AdversaryKind>,
    /// Batch thread counts swept.
    pub threads: Vec<usize>,
}

impl CampaignGrid {
    /// The default soak grid: 96 cells over three structurally distinct
    /// families (vertex-transitive cycle, random G(n,p), random tree),
    /// two sizes, both coloring modes, unlifted and 2-lifted instances,
    /// the fair and keyed-shuffle adversaries, and two thread counts.
    pub fn full() -> CampaignGrid {
        CampaignGrid {
            families: vec![Family::Cycle, Family::Gnp, Family::Tree],
            ns: vec![4, 7],
            colorings: vec![ColoringMode::Greedy, ColoringMode::Pipeline],
            lifts: vec![1, 2],
            adversaries: vec![AdversaryKind::Fair, AdversaryKind::Shuffled],
            threads: vec![1, 2],
        }
    }

    /// A three-cell mini-grid for the default test suite: tiny cycles at
    /// lift 1, 2, and 3 — enough to cross the lift-projection oracle and
    /// the cache without noticeable wall time.
    pub fn smoke() -> CampaignGrid {
        CampaignGrid {
            families: vec![Family::Cycle],
            ns: vec![3],
            colorings: vec![ColoringMode::Greedy],
            lifts: vec![1, 2, 3],
            adversaries: vec![AdversaryKind::Fair],
            threads: vec![1],
        }
    }

    /// Number of cells in the cross product.
    pub fn len(&self) -> usize {
        self.families.len()
            * self.ns.len()
            * self.colorings.len()
            * self.lifts.len()
            * self.adversaries.len()
            * self.threads.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cells in deterministic cross-product order.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut out = Vec::with_capacity(self.len());
        for &family in &self.families {
            for &n in &self.ns {
                for &coloring in &self.colorings {
                    for &lift in &self.lifts {
                        for &adversary in &self.adversaries {
                            for &threads in &self.threads {
                                out.push(CampaignCell {
                                    family,
                                    n,
                                    coloring,
                                    lift,
                                    adversary,
                                    threads,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_is_deterministic_and_complete() {
        let grid = CampaignGrid::full();
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 96);
        assert_eq!(cells, grid.cells());
        // Ids are unique coordinates.
        let mut ids: Vec<String> = cells.iter().map(CampaignCell::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
        // Outermost axis moves slowest.
        assert_eq!(cells[0].family, Family::Cycle);
        assert_eq!(cells[0].threads, 1);
        assert_eq!(cells[1].threads, 2);
    }

    #[test]
    fn smoke_grid_is_three_cheap_cells() {
        let cells = CampaignGrid::smoke().cells();
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.n == 3 && c.threads == 1));
        assert_eq!(cells.iter().map(|c| c.lift).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn case_streams_are_deterministic_and_replayable() {
        let cell = CampaignGrid::full().cells()[17].clone();
        let a = cell.cases(0xA11CE, 4);
        let b = cell.cases(0xA11CE, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // Every case carries the cell's coordinates and a distinct seed.
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
        for case in &a {
            assert_eq!(case.family, cell.family);
            assert_eq!(case.lift, cell.lift);
            // The replay string round-trips through the tc1 parser.
            let replayed: TestCase = case.to_string().parse().unwrap();
            assert_eq!(&replayed, case);
        }
        // A different base seed or a different cell draws different seeds.
        assert_ne!(cell.cases(0xB0B, 4), a);
        let other = CampaignGrid::full().cells()[18].clone();
        assert_ne!(other.cases(0xA11CE, 4)[0].seed, a[0].seed);
    }
}
