//! The deterministic test-case DSL: a [`TestCase`] is a compact, fully
//! replayable description of one generated conformance scenario — graph
//! family, size, seed, coloring mode, lift multiplicity, and adversarial
//! scheduler. Failures print the `Display` form; setting
//! `ANONET_TESTKIT_REPLAY` to that string re-runs exactly that case.

use std::fmt;
use std::str::FromStr;

use anonet_graph::generators::Family;
use anonet_runtime::{
    FairScheduler, ReverseScheduler, RoundAdversary, ShuffledScheduler, SkewedScheduler,
};

/// SplitMix64 step — the testkit's only ambient randomness, fully
/// determined by the seed it is given.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which [`RoundAdversary`] drives the engine's sweep orders for the case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdversaryKind {
    /// The identity schedule (the engine's default).
    Fair,
    /// Reverse node order in every phase.
    Reverse,
    /// Round-dependent rotations, opposite directions for compose/step.
    Skewed,
    /// Keyed per-round Fisher–Yates shuffles.
    Shuffled,
}

impl AdversaryKind {
    /// Every kind, in parse order.
    pub const ALL: [AdversaryKind; 4] = [
        AdversaryKind::Fair,
        AdversaryKind::Reverse,
        AdversaryKind::Skewed,
        AdversaryKind::Shuffled,
    ];

    /// The lowercase name used in the `Display`/`FromStr` encoding.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::Fair => "fair",
            AdversaryKind::Reverse => "reverse",
            AdversaryKind::Skewed => "skewed",
            AdversaryKind::Shuffled => "shuffled",
        }
    }

    /// Instantiates the scheduler, deriving its parameters from `seed`.
    pub fn build(self, seed: u64) -> Box<dyn RoundAdversary> {
        match self {
            AdversaryKind::Fair => Box::new(FairScheduler),
            AdversaryKind::Reverse => Box::new(ReverseScheduler),
            AdversaryKind::Skewed => Box::new(SkewedScheduler { stride: (seed % 5) as usize + 1 }),
            AdversaryKind::Shuffled => {
                Box::new(ShuffledScheduler::new(seed ^ 0x5EED_AD5E_75A1_1CE5))
            }
        }
    }
}

impl fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AdversaryKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        AdversaryKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown adversary {s:?}"))
    }
}

/// How the instance's 2-hop coloring is produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColoringMode {
    /// Centralized greedy 2-hop coloring (always valid, no execution).
    Greedy,
    /// The randomized [`TwoHopColoring`](anonet_algorithms::two_hop_coloring::TwoHopColoring)
    /// stage, run live under the case's adversary.
    Pipeline,
}

impl ColoringMode {
    /// The lowercase name used in the `Display`/`FromStr` encoding.
    pub fn name(self) -> &'static str {
        match self {
            ColoringMode::Greedy => "greedy",
            ColoringMode::Pipeline => "pipeline",
        }
    }
}

impl fmt::Display for ColoringMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ColoringMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(ColoringMode::Greedy),
            "pipeline" => Ok(ColoringMode::Pipeline),
            other => Err(format!("unknown coloring mode {other:?}")),
        }
    }
}

/// One fully deterministic conformance scenario.
///
/// The `Display` encoding is the replay string printed on failure:
///
/// ```
/// use anonet_testkit::TestCase;
///
/// let case: TestCase = "tc1:family=cycle,n=7,seed=42,color=greedy,lift=2,adv=skewed"
///     .parse()
///     .unwrap();
/// assert_eq!(case.n, 7);
/// assert_eq!(case.to_string().parse::<TestCase>().unwrap(), case);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestCase {
    /// Graph family to sample from.
    pub family: Family,
    /// Requested node count (families clamp to their feasible range).
    pub n: usize,
    /// Master seed: graph sampling, coloring, permutations, schedulers.
    pub seed: u64,
    /// Coloring mode.
    pub coloring: ColoringMode,
    /// Lift multiplicity; `1` means no lift, `m ≥ 2` runs the instance as
    /// an `m`-fold permutation-voltage lift of the sampled base.
    pub lift: usize,
    /// Scheduler driving the engine in execution-backed oracles.
    pub adversary: AdversaryKind,
}

impl TestCase {
    /// The `i`-th case of the deterministic stream rooted at `base_seed` —
    /// the enumeration the suites walk. Same `(base_seed, index)` ⇒ same
    /// case, on every machine.
    pub fn from_index(base_seed: u64, index: usize) -> TestCase {
        let mut state = base_seed ^ (index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let family = Family::ALL[(splitmix64(&mut state) % Family::ALL.len() as u64) as usize];
        let n = 2 + (splitmix64(&mut state) % 9) as usize;
        let seed = splitmix64(&mut state);
        let coloring = if splitmix64(&mut state).is_multiple_of(2) {
            ColoringMode::Greedy
        } else {
            ColoringMode::Pipeline
        };
        let lift = match splitmix64(&mut state) % 4 {
            0 | 1 => 1,
            2 => 2,
            _ => 3,
        };
        let adversary =
            AdversaryKind::ALL[(splitmix64(&mut state) % AdversaryKind::ALL.len() as u64) as usize];
        TestCase { family, n, seed, coloring, lift, adversary }
    }

    /// Single-field simplifications of this case, most aggressive first.
    /// The suites greedily descend through these while the failure
    /// reproduces, so the reported case is locally minimal.
    pub fn shrink(&self) -> Vec<TestCase> {
        let mut out = Vec::new();
        if self.adversary != AdversaryKind::Fair {
            out.push(TestCase { adversary: AdversaryKind::Fair, ..self.clone() });
        }
        if self.lift != 1 {
            out.push(TestCase { lift: 1, ..self.clone() });
        }
        if self.coloring != ColoringMode::Greedy {
            out.push(TestCase { coloring: ColoringMode::Greedy, ..self.clone() });
        }
        if self.n / 2 >= 2 {
            out.push(TestCase { n: self.n / 2, ..self.clone() });
        }
        if self.family != Family::Cycle {
            out.push(TestCase { family: Family::Cycle, ..self.clone() });
        }
        if self.seed != 0 {
            out.push(TestCase { seed: 0, ..self.clone() });
        }
        out
    }
}

impl fmt::Display for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tc1:family={},n={},seed={},color={},lift={},adv={}",
            self.family, self.n, self.seed, self.coloring, self.lift, self.adversary
        )
    }
}

impl FromStr for TestCase {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let body = s.strip_prefix("tc1:").ok_or("test case must start with \"tc1:\"")?;
        let mut family = None;
        let mut n = None;
        let mut seed = None;
        let mut coloring = None;
        let mut lift = None;
        let mut adversary = None;
        for pair in body.split(',') {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("malformed field {pair:?}"))?;
            match key {
                "family" => family = Some(value.parse::<Family>().map_err(|e| e.to_string())?),
                "n" => n = Some(value.parse::<usize>().map_err(|e| e.to_string())?),
                "seed" => seed = Some(value.parse::<u64>().map_err(|e| e.to_string())?),
                "color" => coloring = Some(value.parse::<ColoringMode>()?),
                "lift" => lift = Some(value.parse::<usize>().map_err(|e| e.to_string())?),
                "adv" => adversary = Some(value.parse::<AdversaryKind>()?),
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(TestCase {
            family: family.ok_or("missing family")?,
            n: n.ok_or("missing n")?,
            seed: seed.ok_or("missing seed")?,
            coloring: coloring.ok_or("missing color")?,
            lift: lift.ok_or("missing lift")?,
            adversary: adversary.ok_or("missing adv")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_through_fromstr() {
        for i in 0..200 {
            let case = TestCase::from_index(0xF00D, i);
            let replayed: TestCase = case.to_string().parse().unwrap();
            assert_eq!(replayed, case);
        }
    }

    #[test]
    fn from_index_is_deterministic_and_varied() {
        let a = TestCase::from_index(1, 7);
        let b = TestCase::from_index(1, 7);
        assert_eq!(a, b);
        // The stream exercises every family, coloring, lift, and adversary.
        let cases: Vec<TestCase> = (0..400).map(|i| TestCase::from_index(3, i)).collect();
        for fam in Family::ALL {
            assert!(cases.iter().any(|c| c.family == fam), "family {fam} never sampled");
        }
        for adv in AdversaryKind::ALL {
            assert!(cases.iter().any(|c| c.adversary == adv));
        }
        assert!(cases.iter().any(|c| c.coloring == ColoringMode::Pipeline));
        assert!(cases.iter().any(|c| c.lift >= 2));
    }

    #[test]
    fn shrink_moves_every_field_toward_minimal() {
        let case: TestCase =
            "tc1:family=torus,n=9,seed=5,color=pipeline,lift=3,adv=shuffled".parse().unwrap();
        let shrunk = case.shrink();
        assert!(shrunk.iter().any(|c| c.adversary == AdversaryKind::Fair));
        assert!(shrunk.iter().any(|c| c.lift == 1));
        assert!(shrunk.iter().any(|c| c.coloring == ColoringMode::Greedy));
        assert!(shrunk.iter().any(|c| c.n == 4));
        assert!(shrunk.iter().any(|c| c.family == Family::Cycle));
        assert!(shrunk.iter().any(|c| c.seed == 0));
        // Each candidate changes exactly one field.
        for c in &shrunk {
            let diffs = usize::from(c.family != case.family)
                + usize::from(c.n != case.n)
                + usize::from(c.seed != case.seed)
                + usize::from(c.coloring != case.coloring)
                + usize::from(c.lift != case.lift)
                + usize::from(c.adversary != case.adversary);
            assert_eq!(diffs, 1);
        }
        // The all-minimal case has no shrinks left.
        let minimal: TestCase =
            "tc1:family=cycle,n=2,seed=0,color=greedy,lift=1,adv=fair".parse().unwrap();
        assert!(minimal.shrink().is_empty());
    }

    #[test]
    fn malformed_strings_are_rejected() {
        assert!("tc2:family=cycle".parse::<TestCase>().is_err());
        assert!("tc1:family=klein,n=3,seed=0,color=greedy,lift=1,adv=fair"
            .parse::<TestCase>()
            .is_err());
        assert!("tc1:n=3".parse::<TestCase>().is_err());
        assert!("tc1:family=cycle,n=3,seed=0,color=greedy,lift=1,adv=fair,x=1"
            .parse::<TestCase>()
            .is_err());
    }
}
