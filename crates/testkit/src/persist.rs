//! The persistence differential oracle: the on-disk derandomization
//! store must be a pure performance layer, even across a crash.
//!
//! For any seeded campaign of test cases, three runs must tell the same
//! story, byte for byte:
//!
//! 1. **memory** — the plain in-memory [`DerandCache`];
//! 2. **fresh** — a [`PersistentDerandCache`] over a fresh directory;
//! 3. **crashed** — a persistent cache whose first process ran half the
//!    campaign and then died mid-write (simulated by appending a torn
//!    partial frame to a live segment), after which a second process
//!    reopens the store — recovery truncates the torn tail — warms
//!    itself from disk, and runs the whole campaign.
//!
//! Outputs must be byte-identical across all three, and the
//! [`CacheStats`] must stay consistent: every job does exactly one
//! lookup, the fresh persistent run hits exactly as often as the memory
//! run, and the crash survivor — which starts knowing everything the
//! first half learned — never misses more than the memory run.

use std::path::Path;
use std::sync::Arc;

use anonet_algorithms::mis::RandomizedMis;
use anonet_batch::{CacheStats, DerandCache, PersistentDerandCache};
use anonet_core::{DerandomizedRun, Derandomizer, SearchStrategy};
use anonet_graph::{Label, LabeledGraph};

use crate::gen;
use crate::oracles::Failure;
use crate::testcase::TestCase;

/// Oracle name used in [`Failure`] reports.
pub const ORACLE: &str = "persistence-differential";

/// What [`check_persistence`] observed (returned on success so callers
/// can assert sharper, campaign-specific facts on top of the oracle).
#[derive(Clone, Debug)]
pub struct PersistReport {
    /// Jobs in the campaign.
    pub jobs: usize,
    /// Stats of the memory-only run.
    pub memory: CacheStats,
    /// Stats of the fresh persistent run.
    pub fresh: CacheStats,
    /// Stats of the post-crash run (second process, full campaign).
    pub crashed: CacheStats,
    /// Entries `warm()` preloaded in the post-crash process.
    pub warmed: usize,
    /// Torn tails the post-crash open truncated (≥ 1 by construction).
    pub torn_truncations: u64,
    /// Records the post-crash open replayed from segments.
    pub recovered_records: u64,
}

fn fail(detail: impl Into<String>) -> Failure {
    Failure::new(ORACLE, detail)
}

/// Byte-serializes every observable field of a run; equality below is
/// byte-equality of results, not a lossy comparison.
fn run_bytes<O: Label>(run: &DerandomizedRun<O>) -> Vec<u8> {
    let mut out = Vec::new();
    for o in &run.outputs {
        o.encode(&mut out);
    }
    out.extend_from_slice(&(run.quotient_nodes as u64).to_le_bytes());
    out.extend_from_slice(&(run.multiplicity as u64).to_le_bytes());
    out.extend_from_slice(&(run.simulation_rounds as u64).to_le_bytes());
    out.extend_from_slice(&(run.attempts as u64).to_le_bytes());
    for tape in run.assignment.tapes() {
        out.extend_from_slice(&(tape.len() as u64).to_le_bytes());
        out.extend(tape.iter().map(u8::from));
    }
    out
}

/// Runs `graphs[lo..]` sequentially through a cached derandomizer.
fn run_campaign(
    graphs: &[LabeledGraph<((), u32)>],
    cache: &Arc<DerandCache>,
) -> Result<Vec<Vec<u8>>, Failure> {
    let derand = Derandomizer::new(RandomizedMis::new())
        .with_strategy(SearchStrategy::default())
        .with_cache(Arc::clone(cache));
    graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            derand
                .run(g)
                .map(|r| run_bytes(&r))
                .map_err(|e| fail(format!("job {i} failed to derandomize: {e}")))
        })
        .collect()
}

/// Appends a torn partial frame (a complete length/checksum prefix that
/// promises more payload than follows) to the largest segment file under
/// `dir`, simulating a process killed mid-`write`.
fn tear_a_segment(dir: &Path) -> Result<(), Failure> {
    let mut victim: Option<(u64, std::path::PathBuf)> = None;
    let shards = std::fs::read_dir(dir).map_err(|e| fail(format!("listing store dir: {e}")))?;
    for shard in shards.flatten() {
        let Ok(segments) = std::fs::read_dir(shard.path()) else { continue };
        for seg in segments.flatten() {
            if seg.path().extension().is_some_and(|x| x == "log") {
                let len = seg.metadata().map(|m| m.len()).unwrap_or(0);
                if victim.as_ref().is_none_or(|(best, _)| len > *best) {
                    victim = Some((len, seg.path()));
                }
            }
        }
    }
    let (_, path) = victim.ok_or_else(|| fail("no segment file to tear"))?;
    let mut torn = Vec::new();
    torn.extend_from_slice(&64u32.to_le_bytes()); // promises 64 payload bytes...
    torn.extend_from_slice(&0u32.to_le_bytes()); // (checksum never reached)
    torn.extend_from_slice(&[0xEE; 5]); // ...delivers 5, then "crashes"
    let mut bytes =
        std::fs::read(&path).map_err(|e| fail(format!("reading {}: {e}", path.display())))?;
    bytes.extend_from_slice(&torn);
    std::fs::write(&path, bytes).map_err(|e| fail(format!("tearing {}: {e}", path.display())))
}

/// Checks the three-way persistence differential over one campaign.
///
/// `scratch` is a caller-owned directory for the two store instances;
/// it is created (and its `fresh/` and `crashed/` children replaced) by
/// this function, and left on disk for post-mortems on failure.
///
/// # Errors
///
/// Returns a [`Failure`] naming the first divergence: generator errors,
/// output bytes differing between variants, or inconsistent stats.
pub fn check_persistence(cases: &[TestCase], scratch: &Path) -> Result<PersistReport, Failure> {
    if cases.len() < 2 {
        return Err(fail("campaign needs >= 2 cases to split around a crash"));
    }
    let graphs: Vec<LabeledGraph<((), u32)>> = cases
        .iter()
        .map(|case| {
            let inst = gen::build_instance(case)
                .map_err(|e| fail(format!("generator failed for {case}: {e}")))?;
            Ok(inst.colors.map_labels(|&c| ((), c)))
        })
        .collect::<Result<_, Failure>>()?;
    for sub in ["fresh", "crashed"] {
        let dir = scratch.join(sub);
        // Leftover shards from an earlier run would make the fresh and
        // crashed variants diverge for reasons the differential is not
        // testing; only "already absent" is benign.
        if let Err(e) = std::fs::remove_dir_all(&dir) {
            if e.kind() != std::io::ErrorKind::NotFound {
                return Err(fail(format!("clearing scratch {}: {e}", dir.display())));
            }
        }
    }

    // Variant 1 — memory only.
    let memory_cache = Arc::new(DerandCache::new());
    let memory_out = run_campaign(&graphs, &memory_cache)?;
    let memory = memory_cache.stats();

    // Variant 2 — persistent, fresh directory.
    let fresh_pdc = PersistentDerandCache::open(scratch.join("fresh"))
        .map_err(|e| fail(format!("opening fresh store: {e}")))?;
    let fresh_out = run_campaign(&graphs, fresh_pdc.cache())?;
    fresh_pdc.flush().map_err(|e| fail(format!("flushing fresh store: {e}")))?;
    let fresh = fresh_pdc.cache_stats();

    // Variant 3 — first process runs half the campaign, then dies
    // mid-write; the second process recovers, warms, and runs it all.
    let crashed_dir = scratch.join("crashed");
    {
        let pdc = PersistentDerandCache::open(&crashed_dir)
            .map_err(|e| fail(format!("opening crash store: {e}")))?;
        run_campaign(&graphs[..graphs.len() / 2], pdc.cache())?;
        // Dropped without flush: the "crash". Frames already appended
        // are intact; the torn tail below is the write the kill cut.
    }
    tear_a_segment(&crashed_dir)?;
    let pdc = PersistentDerandCache::open(&crashed_dir)
        .map_err(|e| fail(format!("reopening crashed store: {e}")))?;
    let disk = pdc.store_stats();
    if disk.torn_truncations == 0 {
        return Err(fail("recovery did not truncate the injected torn tail"));
    }
    let warmed = pdc.warm(usize::MAX).map_err(|e| fail(format!("warming: {e}")))?;
    let crashed_out = run_campaign(&graphs, pdc.cache())?;
    let crashed = pdc.cache_stats();

    // Byte-identical outputs across all three variants.
    for (name, other) in [("fresh", &fresh_out), ("crashed", &crashed_out)] {
        if let Some(i) = (0..memory_out.len()).find(|&i| memory_out[i] != other[i]) {
            return Err(fail(format!(
                "job {i} ({}): {name} output diverged from memory ({} vs {} bytes)",
                cases[i],
                other[i].len(),
                memory_out[i].len(),
            )));
        }
    }

    // Consistent stats: one lookup per job, everywhere.
    let jobs = graphs.len() as u64;
    for (name, s) in [("memory", &memory), ("fresh", &fresh), ("crashed", &crashed)] {
        if s.assignment_hits + s.assignment_misses != jobs {
            return Err(fail(format!(
                "{name}: hits {} + misses {} != jobs {jobs}",
                s.assignment_hits, s.assignment_misses
            )));
        }
        if s.disk_errors != 0 {
            return Err(fail(format!("{name}: {} disk error(s)", s.disk_errors)));
        }
    }
    // A fresh store adds no knowledge: memory-tier behavior is identical.
    if fresh.assignment_hits != memory.assignment_hits || fresh.disk_hits != 0 {
        return Err(fail(format!(
            "fresh persistent run diverged from memory accounting: \
             hits {} vs {}, disk hits {}",
            fresh.assignment_hits, memory.assignment_hits, fresh.disk_hits
        )));
    }
    // The survivor starts knowing the first half: it can only hit more.
    if crashed.assignment_misses > memory.assignment_misses {
        return Err(fail(format!(
            "post-crash run missed more ({}) than the memory run ({})",
            crashed.assignment_misses, memory.assignment_misses
        )));
    }
    Ok(PersistReport {
        jobs: graphs.len(),
        memory,
        fresh,
        crashed,
        warmed,
        torn_truncations: disk.torn_truncations,
        recovered_records: disk.recovered_records,
    })
}

/// The default persistence campaign: C3/C4 lift towers that share
/// quotients (so the cache, and hence the disk tier, actually carries
/// weight) plus standard prime graphs with distinct quotients.
///
/// # Panics
///
/// Never — the replay strings are compile-time constants, parsed here.
#[must_use]
pub fn default_persistence_cases() -> Vec<TestCase> {
    let mut replays = Vec::new();
    for m in [1usize, 2, 3] {
        replays.push(format!("tc1:family=cycle,n=3,seed=0,color=greedy,lift={m},adv=fair"));
        replays.push(format!("tc1:family=cycle,n=4,seed=0,color=greedy,lift={m},adv=fair"));
    }
    replays.push("tc1:family=petersen,n=10,seed=1,color=greedy,lift=1,adv=fair".to_string());
    replays.push("tc1:family=path,n=8,seed=1,color=greedy,lift=1,adv=fair".to_string());
    replays.iter().map(|r| r.parse().unwrap_or_else(|e| unreachable!("replay {r}: {e}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("anonet-testkit-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn default_campaign_passes_and_reports_real_persistence() {
        let dir = scratch("default");
        let report = check_persistence(&default_persistence_cases(), &dir).unwrap();
        assert_eq!(report.jobs, 8);
        // Three C3 lifts share a quotient, three C4 lifts share another;
        // petersen and path-8 are singletons: 4 misses, 4 hits.
        assert_eq!(report.memory.assignment_misses, 4);
        assert_eq!(report.memory.assignment_hits, 4);
        // The first "process" ran 4 jobs (2 quotient classes); the
        // survivor warms both and only misses the two unseen classes.
        assert!(report.warmed >= 2, "warm() must preload the first-half classes");
        assert_eq!(report.crashed.assignment_misses, 2);
        assert_eq!(report.torn_truncations, 1);
        assert!(report.recovered_records >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_campaigns_are_rejected() {
        let dir = scratch("tiny");
        let one: TestCase =
            "tc1:family=cycle,n=3,seed=0,color=greedy,lift=1,adv=fair".parse().unwrap();
        let err = check_persistence(&[one], &dir).unwrap_err();
        assert_eq!(err.oracle, ORACLE);
        std::fs::remove_dir_all(&dir).ok();
    }
}
