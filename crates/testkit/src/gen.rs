//! Structured instance generation: [`TestCase`] → colored instance, with
//! optional permutation-voltage lifts and their projections.

use anonet_graph::coloring::{greedy_two_hop_coloring, is_two_hop_coloring};
use anonet_graph::generators::Family;
use anonet_graph::{generators, lift, BitString, Graph, LabeledGraph, NodeId};
use anonet_runtime::{run_with_adversary, ExecConfig, Oblivious, RngSource};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use anonet_algorithms::two_hop_coloring::TwoHopColoring;

use crate::testcase::{ColoringMode, TestCase};
use crate::{Result, TestkitError};

/// A generated 2-hop colored instance, plus lift provenance when the case
/// was lifted **and** the base coloring survived the lift (same-fiber
/// nodes can collide within two hops in a random lift; when they do, the
/// lift is greedily recolored and the projection oracle is dropped).
#[derive(Clone, Debug)]
pub struct Instance {
    /// The instance's graph with its 2-hop coloring as labels.
    pub colors: LabeledGraph<u32>,
    /// `projection[v]` = the base node under `v`, when the instance is a
    /// lift whose colors are lifted from `base_colors`.
    pub projection: Option<Vec<NodeId>>,
    /// The colored base of the lift, when `projection` is `Some`.
    pub base_colors: Option<LabeledGraph<u32>>,
}

/// Samples the case's base graph (before any lift).
///
/// # Errors
///
/// Graph-generator errors, wrapped in [`TestkitError`].
pub fn build_graph(case: &TestCase) -> Result<Graph> {
    let mut rng = ChaCha8Rng::seed_from_u64(case.seed);
    Ok(case.family.sample(case.n, &mut rng)?)
}

/// 2-hop colors `g` per the case's [`ColoringMode`]. Pipeline mode runs
/// the randomized [`TwoHopColoring`] stage live under the case's
/// adversary (bit draws are canonical, so the colors are a function of
/// the seed alone — itself a metamorphic fact the suites lean on) and
/// rank-compresses the [`BitString`] colors to `u32`. If the stage fails
/// to complete within the round cap the greedy coloring is used instead.
pub fn color_graph(g: &Graph, case: &TestCase) -> Result<LabeledGraph<u32>> {
    match case.coloring {
        ColoringMode::Greedy => Ok(greedy_two_hop_coloring(g)),
        ColoringMode::Pipeline => {
            let unit = g.with_uniform_label(());
            let mut adversary = case.adversary.build(case.seed);
            let exec = run_with_adversary(
                &Oblivious(TwoHopColoring::new()),
                &unit,
                &mut RngSource::seeded(case.seed),
                &ExecConfig::default(),
                adversary.as_mut(),
            )?;
            if !exec.is_successful() {
                return Ok(greedy_two_hop_coloring(g));
            }
            let bits = exec.outputs_unwrapped();
            let mut palette: Vec<&BitString> = bits.iter().collect();
            palette.sort();
            palette.dedup();
            let colors = bits
                .iter()
                .map(|b| palette.binary_search(&b).expect("color is in its own palette") as u32)
                .collect();
            Ok(g.with_labels(colors)?)
        }
    }
}

/// Builds the case's full instance: sample, color, and (for `lift ≥ 2`)
/// lift. Cycle lifts use the guaranteed-2-hop-colorable cyclic voltage;
/// other families draw a random connected lift and validate, falling back
/// to recoloring the lifted graph when the base coloring does not lift.
///
/// # Errors
///
/// Generator and runtime errors, wrapped in [`TestkitError`].
pub fn build_instance(case: &TestCase) -> Result<Instance> {
    if case.lift < 2 {
        let g = build_graph(case)?;
        return Ok(Instance {
            colors: color_graph(&g, case)?,
            projection: None,
            base_colors: None,
        });
    }

    let (l, base) = if case.family == Family::Cycle {
        let n = case.n.max(3);
        (lift::cyclic_cycle_lift(n, case.lift)?, generators::cycle(n)?)
    } else {
        let base = build_graph(case)?;
        let mut rng = ChaCha8Rng::seed_from_u64(case.seed ^ 0x11F7_0000_0000_0001);
        match lift::random_connected_lift(&base, case.lift, 32, &mut rng) {
            Ok(l) => (l, base),
            // No connected lift found (rare, tiny bases): run unlifted.
            Err(_) => {
                let colors = color_graph(&base, case)?;
                return Ok(Instance { colors, projection: None, base_colors: None });
            }
        }
    };

    let base_colors = color_graph(&base, case)?;
    let lifted = l.lift_labels(base_colors.labels())?;
    if is_two_hop_coloring(&lifted) {
        Ok(Instance {
            colors: lifted,
            projection: Some(l.projection().to_vec()),
            base_colors: Some(base_colors),
        })
    } else {
        // Same-fiber nodes landed within two hops: the projection oracle
        // is meaningless, but the lifted *graph* is still a fine instance.
        Ok(Instance {
            colors: greedy_two_hop_coloring(l.graph()),
            projection: None,
            base_colors: None,
        })
    }
}

/// The legacy flavored generator the root property tests were built on
/// (`flavor % 4` → sparse G(n,p) / tree / cycle / dense G(n,p)), kept as
/// a thin wrapper over [`Family`] sampling so old regression seeds remain
/// addressable.
///
/// # Errors
///
/// Graph-generator errors, wrapped in [`TestkitError`].
pub fn flavored_graph(seed: u64, n: usize, flavor: u8) -> Result<Graph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = match flavor % 4 {
        0 => generators::gnp_connected(n.max(2), 0.3, &mut rng)?,
        1 => generators::random_tree(n.max(2), &mut rng)?,
        2 => generators::cycle(n.max(3))?,
        _ => generators::gnp_connected(n.max(2), 0.6, &mut rng)?,
    };
    Ok(g)
}

impl From<anonet_graph::GraphError> for TestkitError {
    fn from(e: anonet_graph::GraphError) -> Self {
        TestkitError::Graph(e)
    }
}

impl From<anonet_runtime::RuntimeError> for TestkitError {
    fn from(e: anonet_runtime::RuntimeError) -> Self {
        TestkitError::Runtime(e)
    }
}

impl From<anonet_core::CoreError> for TestkitError {
    fn from(e: anonet_core::CoreError) -> Self {
        TestkitError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::AdversaryKind;

    fn case(s: &str) -> TestCase {
        s.parse().unwrap()
    }

    #[test]
    fn every_indexed_case_builds_a_two_hop_colored_instance() {
        for i in 0..40 {
            let c = TestCase::from_index(0xBEEF, i);
            let inst = build_instance(&c).unwrap_or_else(|e| panic!("case {c} failed: {e}"));
            assert!(is_two_hop_coloring(&inst.colors), "invalid coloring for {c}");
            if let Some(proj) = &inst.projection {
                assert_eq!(proj.len(), inst.colors.node_count());
                let base = inst.base_colors.as_ref().unwrap();
                for (v, &img) in proj.iter().enumerate() {
                    assert_eq!(
                        inst.colors.label(NodeId::new(v)),
                        base.label(img),
                        "lifted color mismatch for {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = case("tc1:family=gnp,n=8,seed=77,color=pipeline,lift=2,adv=shuffled");
        let a = build_instance(&c).unwrap();
        let b = build_instance(&c).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.projection, b.projection);
    }

    #[test]
    fn pipeline_coloring_is_adversary_independent() {
        // Bit draws are canonical, so the live coloring stage must produce
        // identical colors under every scheduler.
        let mut colorings = Vec::new();
        for adv in AdversaryKind::ALL {
            let mut c = case("tc1:family=wheel,n=7,seed=5,color=pipeline,lift=1,adv=fair");
            c.adversary = adv;
            colorings.push(build_instance(&c).unwrap().colors);
        }
        assert!(colorings.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn cycle_lifts_preserve_the_projection() {
        let c = case("tc1:family=cycle,n=4,seed=3,color=greedy,lift=3,adv=fair");
        let inst = build_instance(&c).unwrap();
        assert_eq!(inst.colors.node_count(), 12);
        assert!(inst.projection.is_some());
    }

    #[test]
    fn flavored_graphs_cover_the_legacy_regression_seed() {
        // tests/properties.proptest-regressions recorded (seed=0, n=2,
        // flavor=2) — the minimal cycle.
        let g = flavored_graph(0, 2, 2).unwrap();
        assert_eq!(g.node_count(), 3);
    }
}
