//! Regression: the Section-4 fibration predicates are stable across
//! repeated runs (companion to `anonet-views`'s encoding regression).
//!
//! `is_symmetric`/`is_deterministic`/`respects_symmetries` build fresh
//! membership sets per call; if those sets leaked iteration order into
//! the verdict, `RandomState`'s per-construction reseeding would make
//! repeated calls diverge. 100 fresh constructions must agree.

use anonet_factor::fibration::DirectedRepresentation;
use anonet_factor::FactorizingMap;
use anonet_graph::{generators, LabeledGraph};

const RUNS: usize = 100;

fn colored_cycle(n: usize) -> LabeledGraph<u32> {
    let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
    generators::cycle(n).unwrap().with_labels(labels).unwrap()
}

#[test]
fn fibration_checks_are_stable_across_runs() {
    let c6 = colored_cycle(6);
    let c3 = colored_cycle(3);
    let map = FactorizingMap::new(&c6, &c3, vec![0, 1, 2, 0, 1, 2]).unwrap();
    for run in 0..RUNS {
        let h6 = DirectedRepresentation::of(&c6);
        let h3 = DirectedRepresentation::of(&c3);
        assert!(h6.is_symmetric(), "run {run}");
        assert!(h6.is_deterministic(), "run {run}");
        assert!(h6.respects_symmetries(), "run {run}");
        assert!(h6.is_fibration_into(&h3, &map), "run {run}");
    }
}
