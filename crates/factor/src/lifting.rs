//! Fact 1 and the lifting lemma, executable.
//!
//! If `G' ⪯_f G`, then (Fact 1) every node `v` of `G` has the same local
//! views as `f(v)`, and — the lifting lemma — every execution of an
//! anonymous algorithm on `G'` *lifts* to an execution on `G`: give each
//! product node the random bits of its image and the two executions agree
//! node-by-node, round-by-round.
//!
//! Two flavours are provided, matching the two soundness regimes:
//!
//! * [`run_lifted_oblivious`] — any factorizing map, but the algorithm
//!   must be port-oblivious ([`ObliviousAlgorithm`]);
//! * [`run_lifted_port_preserving`] — arbitrary port-sensitive
//!   [`Algorithm`]s, but the map must preserve port numbers (graph lifts
//!   built by `anonet-graph` do).
//!
//! Both functions *verify* the agreement as they go and report the first
//! divergence as an error, so they double as executable proofs of the
//! lemma on concrete instances.

use anonet_graph::{Label, LabeledGraph, NodeId};
use anonet_runtime::{
    run, Algorithm, BitAssignment, ExecConfig, Execution, Oblivious, ObliviousAlgorithm, TapeSource,
};
use anonet_views::ViewTree;

use crate::error::FactorError;
use crate::map::FactorizingMap;
use crate::Result;

/// Pulls a bit assignment on the factor back along `f`: product node `v`
/// receives the tape of `f(v)`.
pub fn pull_back_assignment(map: &FactorizingMap, b: &BitAssignment) -> BitAssignment {
    let tapes = map.images().iter().map(|&c| b.tape(c).cloned().unwrap_or_default()).collect();
    BitAssignment::new(tapes)
}

/// The two executions produced by a verified lift.
#[derive(Debug)]
pub struct LiftedPair<A: Algorithm> {
    /// The execution on the product graph (lifted bits).
    pub product: Execution<A>,
    /// The execution on the factor graph (original bits).
    pub factor: Execution<A>,
}

/// Runs `alg` on the factor under `assignment` and on the product under
/// the pulled-back assignment, verifying node-by-node agreement of states
/// (every round) and outputs.
///
/// # Errors
///
/// [`FactorError::LiftDiverged`] with the first diverging node/round;
/// runtime errors from either execution.
pub fn run_lifted_oblivious<A>(
    alg: &A,
    product: &LabeledGraph<A::Input>,
    factor: &LabeledGraph<A::Input>,
    map: &FactorizingMap,
    assignment: &BitAssignment,
    config: &ExecConfig,
) -> Result<LiftedPair<Oblivious<A>>>
where
    A: ObliviousAlgorithm + Clone,
    A::Input: Label,
{
    let wrapped = Oblivious(alg.clone());
    run_and_compare(&wrapped, product, factor, map, assignment, config)
}

/// Like [`run_lifted_oblivious`] but for arbitrary port-sensitive
/// algorithms; requires (and checks) that `map` preserves port numbers.
///
/// # Errors
///
/// [`FactorError::NotPortPreserving`] if the map does not qualify;
/// otherwise as [`run_lifted_oblivious`].
pub fn run_lifted_port_preserving<A>(
    alg: &A,
    product: &LabeledGraph<A::Input>,
    factor: &LabeledGraph<A::Input>,
    map: &FactorizingMap,
    assignment: &BitAssignment,
    config: &ExecConfig,
) -> Result<LiftedPair<A>>
where
    A: Algorithm + Clone,
    A::Input: Label,
{
    map.require_port_preserving(product, factor)?;
    run_and_compare(alg, product, factor, map, assignment, config)
}

fn run_and_compare<A>(
    alg: &A,
    product: &LabeledGraph<A::Input>,
    factor: &LabeledGraph<A::Input>,
    map: &FactorizingMap,
    assignment: &BitAssignment,
    config: &ExecConfig,
) -> Result<LiftedPair<A>>
where
    A: Algorithm,
    A::Input: Label,
{
    let recording = ExecConfig { record_states: true, ..*config };
    let mut factor_src = TapeSource::new(assignment.clone());
    let factor_exec = run(alg, factor, &mut factor_src, &recording)?;
    let mut product_src = TapeSource::new(pull_back_assignment(map, assignment));
    let product_exec = run(alg, product, &mut product_src, &recording)?;

    // Round-by-round state agreement.
    let rounds = product_exec.rounds().max(factor_exec.rounds());
    for r in 0..=rounds {
        let (Some(ps), Some(fs)) = (product_exec.states_at(r), factor_exec.states_at(r)) else {
            continue;
        };
        for v in product.graph().nodes() {
            if ps[v.index()] != fs[map.image(v).index()] {
                return Err(FactorError::LiftDiverged { node: v, round: r });
            }
        }
    }
    // Output agreement.
    for v in product.graph().nodes() {
        if product_exec.output(v) != factor_exec.output(map.image(v)) {
            return Err(FactorError::LiftDiverged { node: v, round: rounds + 1 });
        }
    }
    Ok(LiftedPair { product: product_exec, factor: factor_exec })
}

/// Verifies the paper's Fact 1 on a concrete instance: for every product
/// node `v`, the explicit depth-`d` views of `v` and `f(v)` are equal.
///
/// # Errors
///
/// Returns [`FactorError::LiftDiverged`] naming the first node whose view
/// differs (round = the depth), or a views error if the trees are too big.
pub fn verify_fact1<L: Label>(
    product: &LabeledGraph<L>,
    factor: &LabeledGraph<L>,
    map: &FactorizingMap,
    depth: usize,
) -> Result<()> {
    for v in product.graph().nodes() {
        let tv = ViewTree::build(product, v, depth)?.canonicalize();
        let tf = ViewTree::build(factor, map.image(v), depth)?.canonicalize();
        if tv.encoded() != tf.encoded() {
            return Err(FactorError::LiftDiverged { node: v, round: depth });
        }
    }
    Ok(())
}

/// Lifts factor outputs to the product: `o(v) = o'(f(v))`. This is how the
/// derandomizer turns a quotient simulation into real outputs.
pub fn lift_outputs<O: Clone>(map: &FactorizingMap, factor_outputs: &[O]) -> Vec<O> {
    map.images().iter().map(|&c| factor_outputs[c.index()].clone()).collect()
}

/// Nodes of the product grouped by image — the fibers, in factor-node
/// order. Useful for experiments asserting "equal-view nodes got equal
/// outputs".
pub fn fibers(map: &FactorizingMap) -> Vec<Vec<NodeId>> {
    (0..map.factor_nodes()).map(|c| map.fiber(NodeId::new(c))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{generators, BitString};
    use anonet_runtime::Actions;

    fn c3() -> LabeledGraph<u32> {
        generators::cycle(3).unwrap().with_labels(vec![1, 2, 3]).unwrap()
    }

    fn lifted(m: usize) -> (LabeledGraph<u32>, FactorizingMap) {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, m).unwrap();
        let product = l.lift_labels(&[1, 2, 3]).unwrap();
        let images: Vec<usize> = l.projection().iter().map(|v| v.index()).collect();
        let map = FactorizingMap::new(&product, &c3(), images).unwrap();
        (product, map)
    }

    /// Tracks the multiset of (color, bit) pairs seen; outputs after 3 rounds.
    #[derive(Clone, Debug)]
    struct Gossip;

    impl ObliviousAlgorithm for Gossip {
        type Input = u32;
        type Message = (u32, bool);
        type Output = Vec<(u32, bool)>;
        type State = (u32, bool, Vec<(u32, bool)>);

        fn init(&self, input: &u32, _degree: usize) -> Self::State {
            (*input, false, Vec::new())
        }
        fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
            Some((state.0, state.1))
        }
        fn step(
            &self,
            mut state: Self::State,
            round: usize,
            received: &[Self::Message],
            bit: bool,
            actions: &mut Actions<Self::Output>,
        ) -> Self::State {
            state.1 = bit;
            state.2.extend_from_slice(received);
            state.2.sort();
            if round == 3 {
                actions.output(state.2.clone());
                actions.halt();
            }
            state
        }
    }

    #[test]
    fn fact1_holds_on_lifts() {
        let (product, map) = lifted(4);
        verify_fact1(&product, &c3(), &map, 5).unwrap();
    }

    #[test]
    fn oblivious_lift_agrees() {
        let (product, map) = lifted(3);
        let b = BitAssignment::new(vec![
            "1010".parse::<BitString>().unwrap(),
            "0110".parse().unwrap(),
            "1100".parse().unwrap(),
        ]);
        let pair = run_lifted_oblivious(&Gossip, &product, &c3(), &map, &b, &ExecConfig::default())
            .unwrap();
        assert!(pair.product.is_successful());
        assert!(pair.factor.is_successful());
        // Outputs constant on fibers.
        for fiber in fibers(&map) {
            let first = pair.product.output(fiber[0]);
            assert!(fiber.iter().all(|&v| pair.product.output(v) == first));
        }
    }

    #[test]
    fn port_preserving_lift_agrees_for_port_sensitive_algorithms() {
        /// A deliberately port-sensitive algorithm: forwards the message
        /// received on port 0 only.
        #[derive(Clone, Debug)]
        struct PortZeroChain;

        impl Algorithm for PortZeroChain {
            type Input = u32;
            type Message = u32;
            type Output = u32;
            type State = (u32, usize);

            fn init(&self, input: &u32, _degree: usize) -> Self::State {
                (*input, 0)
            }
            fn compose(&self, state: &Self::State, port: anonet_graph::Port) -> Option<u32> {
                (port.index() == 0).then_some(state.0)
            }
            fn step(
                &self,
                state: Self::State,
                round: usize,
                inbox: &anonet_runtime::Inbox<u32>,
                _bit: bool,
                actions: &mut Actions<u32>,
            ) -> Self::State {
                let carried = inbox.get(anonet_graph::Port::new(0)).copied().unwrap_or(state.0);
                if round == 4 {
                    actions.output(carried);
                    actions.halt();
                }
                (carried, round)
            }
        }

        let (product, map) = lifted(4);
        let b = BitAssignment::uniform(3, &"00000".parse::<BitString>().unwrap());
        let pair = run_lifted_port_preserving(
            &PortZeroChain,
            &product,
            &c3(),
            &map,
            &b,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(pair.product.is_successful());
    }

    #[test]
    fn non_port_preserving_map_is_rejected_for_port_sensitive_lifts() {
        #[derive(Clone, Debug)]
        struct Quiet;
        impl Algorithm for Quiet {
            type Input = u32;
            type Message = ();
            type Output = ();
            type State = ();
            fn init(&self, _: &u32, _: usize) {}
            fn compose(&self, _: &(), _: anonet_graph::Port) -> Option<()> {
                None
            }
            fn step(
                &self,
                _: (),
                _: usize,
                _: &anonet_runtime::Inbox<()>,
                _: bool,
                a: &mut Actions<()>,
            ) {
                a.output(());
                a.halt();
            }
        }
        // The hand-written C6 → C3 map is not port-preserving.
        let c6 = generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap();
        let map = FactorizingMap::new(&c6, &c3(), vec![0, 1, 2, 0, 1, 2]).unwrap();
        let b = BitAssignment::uniform(3, &"0".parse::<BitString>().unwrap());
        let err = run_lifted_port_preserving(&Quiet, &c6, &c3(), &map, &b, &ExecConfig::default())
            .unwrap_err();
        assert!(matches!(err, FactorError::NotPortPreserving { .. }));
    }

    #[test]
    fn pull_back_respects_fibers() {
        let (_, map) = lifted(2);
        let b = BitAssignment::new(vec![
            "1".parse::<BitString>().unwrap(),
            "0".parse().unwrap(),
            "11".parse().unwrap(),
        ]);
        let lifted_b = pull_back_assignment(&map, &b);
        assert_eq!(lifted_b.len(), 6);
        for v in 0..6 {
            let v = NodeId::new(v);
            assert_eq!(lifted_b.tape(v), b.tape(map.image(v)));
        }
    }

    #[test]
    fn lift_outputs_follows_map() {
        let (_, map) = lifted(2);
        let outs = lift_outputs(&map, &[10u8, 20, 30]);
        for (v, o) in outs.iter().enumerate() {
            assert_eq!(*o, [10u8, 20, 30][map.image(NodeId::new(v)).index()]);
        }
    }
}
