//! # anonet-factor
//!
//! Factor/product graph machinery (paper, Section 2.3.1) and the lifting
//! lemma, plus the fibration connection of Section 4.
//!
//! A labeled graph `G'` is a **factor** of `G` (and `G` a **product** of
//! `G'`), written `G' ⪯_f G`, when the *factorizing map* `f : V → V'` is
//! (1) surjective, (2) label-preserving, and (3) a local isomorphism. The
//! paper's derandomization rests on three facts this crate makes
//! executable:
//!
//! * the view quotient `G_*` of a 2-hop colored graph is a factor
//!   ([`prime::prime_factor`], Lemma 2) and is its **unique prime factor**
//!   (Lemma 3);
//! * nodes related by a factorizing map have equal views
//!   ([`lifting`], Fact 1) and, consequently, executions on the factor
//!   **lift** to executions on the product (the lifting lemma of
//!   Angluin / Boldi–Vigna);
//! * 2-hop colored graphs translate to deterministically edge-colored
//!   symmetric digraphs whose fibrations are exactly the factorizing maps
//!   ([`fibration`], Section 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fibration;
pub mod lifting;
mod map;
pub mod prime;

pub use error::FactorError;
pub use map::FactorizingMap;

/// Convenient alias for results with [`FactorError`].
pub type Result<T> = std::result::Result<T, FactorError>;
