//! Factorizing maps `f : V → V'` and their validation.

use anonet_graph::{Label, LabeledGraph, NodeId, Port};

use crate::error::FactorError;
use crate::Result;

/// A validated factorizing map witnessing `factor ⪯_f product`
/// (paper, Section 2.3.1).
///
/// Construction checks the three defining properties — surjectivity,
/// label preservation, and local isomorphism — and returns a descriptive
/// error naming a witness node when one fails.
///
/// # Example
///
/// ```
/// use anonet_graph::{generators, lift};
/// use anonet_factor::FactorizingMap;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // C6 (colored 1,2,3,1,2,3) is a product of C3 (colored 1,2,3):
/// // exactly the paper's Figure 2.
/// let c3 = generators::cycle(3)?.with_labels(vec![1u32, 2, 3])?;
/// let c6 = generators::cycle(6)?.with_labels(vec![1u32, 2, 3, 1, 2, 3])?;
/// let f = FactorizingMap::new(&c6, &c3, vec![0, 1, 2, 0, 1, 2])?;
/// assert_eq!(f.multiplicity(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FactorizingMap {
    images: Vec<NodeId>,
    factor_nodes: usize,
}

impl FactorizingMap {
    /// Validates `images` (indexed by product node, values = factor node
    /// indices) as a factorizing map from `product` onto `factor`.
    ///
    /// # Errors
    ///
    /// Returns the first violated property as a [`FactorError`].
    pub fn new<L: Label>(
        product: &LabeledGraph<L>,
        factor: &LabeledGraph<L>,
        images: Vec<usize>,
    ) -> Result<Self> {
        let n = product.node_count();
        let k = factor.node_count();
        if images.len() != n {
            return Err(FactorError::WrongDomain { map_len: images.len(), nodes: n });
        }
        for (v, &img) in images.iter().enumerate() {
            if img >= k {
                return Err(FactorError::ImageOutOfRange { node: NodeId::new(v), image: img });
            }
        }
        let images: Vec<NodeId> = images.into_iter().map(NodeId::new).collect();

        // (1) surjective
        let mut covered = vec![false; k];
        for &img in &images {
            covered[img.index()] = true;
        }
        if let Some(c) = covered.iter().position(|&c| !c) {
            return Err(FactorError::NotSurjective { uncovered: NodeId::new(c) });
        }

        // (2) label-preserving
        for v in product.graph().nodes() {
            if product.label(v) != factor.label(images[v.index()]) {
                return Err(FactorError::LabelMismatch { node: v });
            }
        }

        // (3) local isomorphism: f|Γ(v) is a bijection onto Γ(f(v)).
        for v in product.graph().nodes() {
            let mut image_nbrs: Vec<NodeId> =
                product.graph().neighbors(v).iter().map(|&u| images[u.index()]).collect();
            image_nbrs.sort();
            let has_dup = image_nbrs.windows(2).any(|w| w[0] == w[1]);
            let mut expect: Vec<NodeId> = factor.graph().neighbors(images[v.index()]).to_vec();
            expect.sort();
            if has_dup || image_nbrs != expect {
                return Err(FactorError::NotLocalIsomorphism { node: v });
            }
        }

        Ok(FactorizingMap { images, factor_nodes: k })
    }

    /// The identity map on a graph (every graph is a factor of itself).
    pub fn identity(n: usize) -> Self {
        FactorizingMap { images: (0..n).map(NodeId::new).collect(), factor_nodes: n }
    }

    /// The image `f(v)`.
    pub fn image(&self, v: NodeId) -> NodeId {
        self.images[v.index()]
    }

    /// All images, indexed by product node.
    pub fn images(&self) -> &[NodeId] {
        &self.images
    }

    /// Number of nodes in the product (the domain).
    pub fn product_nodes(&self) -> usize {
        self.images.len()
    }

    /// Number of nodes in the factor (the codomain).
    pub fn factor_nodes(&self) -> usize {
        self.factor_nodes
    }

    /// The fiber `f⁻¹(c)`.
    pub fn fiber(&self, c: NodeId) -> Vec<NodeId> {
        self.images
            .iter()
            .enumerate()
            .filter(|(_, &img)| img == c)
            .map(|(v, _)| NodeId::new(v))
            .collect()
    }

    /// `|V| / |V'|` — well-defined for connected products (paper:
    /// `|V| = m·|V'|`).
    pub fn multiplicity(&self) -> usize {
        self.images.len() / self.factor_nodes
    }

    /// `true` iff the map is a bijection, i.e. the two graphs are
    /// isomorphic via `f`.
    pub fn is_bijective(&self) -> bool {
        self.images.len() == self.factor_nodes
    }

    /// Composition `other ∘ self` (first `self`, then `other`):
    /// factors compose.
    ///
    /// # Panics
    ///
    /// Panics if `other`'s domain does not match `self`'s codomain.
    pub fn then(&self, other: &FactorizingMap) -> FactorizingMap {
        assert_eq!(
            self.factor_nodes,
            other.images.len(),
            "composition requires matching intermediate graphs"
        );
        FactorizingMap {
            images: self.images.iter().map(|&v| other.image(v)).collect(),
            factor_nodes: other.factor_nodes,
        }
    }

    /// Checks whether the map additionally preserves port numbers between
    /// `product` and `factor`: port `p` of `v` must lead to the node whose
    /// image is reached through port `p` of `f(v)`, with matching reverse
    /// ports. Graph lifts built by `anonet-graph` satisfy this; arbitrary
    /// factorizing maps need not.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::NotPortPreserving`] with a witness node.
    pub fn require_port_preserving<L: Label>(
        &self,
        product: &LabeledGraph<L>,
        factor: &LabeledGraph<L>,
    ) -> Result<()> {
        let pg = product.graph();
        let fg = factor.graph();
        for v in pg.nodes() {
            let c = self.image(v);
            if pg.degree(v) != fg.degree(c) {
                return Err(FactorError::NotPortPreserving { node: v });
            }
            for p in 0..pg.degree(v) {
                let port = Port::new(p);
                let port_ok = self.image(pg.endpoint(v, port)) == fg.endpoint(c, port);
                let rev_ok = pg.reverse_port(v, port) == fg.reverse_port(c, port);
                if !port_ok || !rev_ok {
                    return Err(FactorError::NotPortPreserving { node: v });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn c3() -> LabeledGraph<u32> {
        generators::cycle(3).unwrap().with_labels(vec![1, 2, 3]).unwrap()
    }

    fn c6() -> LabeledGraph<u32> {
        generators::cycle(6).unwrap().with_labels(vec![1, 2, 3, 1, 2, 3]).unwrap()
    }

    #[test]
    fn figure2_map_validates() {
        let f = FactorizingMap::new(&c6(), &c3(), vec![0, 1, 2, 0, 1, 2]).unwrap();
        assert_eq!(f.multiplicity(), 2);
        assert!(!f.is_bijective());
        assert_eq!(f.fiber(NodeId::new(1)), vec![NodeId::new(1), NodeId::new(4)]);
    }

    #[test]
    fn figure2_full_chain_composes() {
        // C12 → C6 → C3, composed = C12 → C3.
        let c12 = generators::cycle(12)
            .unwrap()
            .with_labels(vec![1u32, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3])
            .unwrap();
        let f = FactorizingMap::new(&c12, &c6(), (0..12).map(|i| i % 6).collect()).unwrap();
        let g = FactorizingMap::new(&c6(), &c3(), vec![0, 1, 2, 0, 1, 2]).unwrap();
        let h = f.then(&g);
        assert_eq!(h.multiplicity(), 4);
        // The composite is itself a valid factorizing map.
        let images: Vec<usize> = h.images().iter().map(|v| v.index()).collect();
        assert!(FactorizingMap::new(&c12, &c3(), images).is_ok());
    }

    #[test]
    fn wrong_length_rejected() {
        let err = FactorizingMap::new(&c6(), &c3(), vec![0, 1, 2]).unwrap_err();
        assert!(matches!(err, FactorError::WrongDomain { map_len: 3, nodes: 6 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = FactorizingMap::new(&c6(), &c3(), vec![0, 1, 2, 0, 1, 5]).unwrap_err();
        assert!(matches!(err, FactorError::ImageOutOfRange { image: 5, .. }));
    }

    #[test]
    fn non_surjective_rejected() {
        // Map everything to node 0: labels break first? Node 1 has label 2
        // but image 0 has label 1 — label check fires. Use a label-true but
        // non-surjective situation instead: C6 -> C6 constant-shift by 3 is
        // fine; constant map to {0,1,2} misses 3,4,5.
        let g = c6();
        let err = FactorizingMap::new(&g, &g, vec![0, 1, 2, 0, 1, 2]).unwrap_err();
        assert!(matches!(err, FactorError::NotSurjective { .. }));
    }

    #[test]
    fn label_mismatch_rejected() {
        let err = FactorizingMap::new(&c6(), &c3(), vec![1, 2, 0, 1, 2, 0]).unwrap_err();
        assert!(matches!(err, FactorError::LabelMismatch { .. }));
    }

    #[test]
    fn local_isomorphism_enforced() {
        // Identity labels but a map that merges non-equivalent nodes: take
        // P4 with symmetric labels and map it onto P2... local iso fails.
        let p4 = generators::path(4).unwrap().with_labels(vec![1u32, 2, 2, 1]).unwrap();
        let p2 = generators::path(2).unwrap().with_labels(vec![1u32, 2]).unwrap();
        let err = FactorizingMap::new(&p4, &p2, vec![0, 1, 1, 0]).unwrap_err();
        assert!(matches!(err, FactorError::NotLocalIsomorphism { .. }));
    }

    #[test]
    fn identity_is_bijective() {
        let f = FactorizingMap::identity(5);
        assert!(f.is_bijective());
        assert_eq!(f.image(NodeId::new(3)), NodeId::new(3));
        assert_eq!(f.multiplicity(), 1);
    }

    #[test]
    fn lifts_are_port_preserving() {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, 2).unwrap();
        let base = c3();
        let product = l.lift_labels(base.labels()).unwrap();
        let images: Vec<usize> = l.projection().iter().map(|v| v.index()).collect();
        let f = FactorizingMap::new(&product, &base, images).unwrap();
        f.require_port_preserving(&product, &base).unwrap();
    }

    #[test]
    fn figure2_hand_map_need_not_preserve_ports() {
        // The hand-written C6 → C3 map is a perfectly good factorizing
        // map, but the cycle generator's port numbering is asymmetric, so
        // port preservation fails somewhere.
        let f = FactorizingMap::new(&c6(), &c3(), vec![0, 1, 2, 0, 1, 2]).unwrap();
        assert!(f.require_port_preserving(&c6(), &c3()).is_err());
    }
}
