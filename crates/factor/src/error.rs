//! Error type for the factor machinery.

use std::error::Error;
use std::fmt;

use anonet_graph::NodeId;

/// Errors produced when validating factorizing maps and lifting executions.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FactorError {
    /// The map's length does not match the product's node count.
    WrongDomain {
        /// Map length.
        map_len: usize,
        /// Product node count.
        nodes: usize,
    },
    /// Some image node index is out of range for the factor graph.
    ImageOutOfRange {
        /// The offending product node.
        node: NodeId,
        /// Its (invalid) image index.
        image: usize,
    },
    /// The map is not surjective: some factor node has an empty fiber.
    NotSurjective {
        /// A factor node with no preimage.
        uncovered: NodeId,
    },
    /// The map does not preserve labels at some node.
    LabelMismatch {
        /// A product node whose label differs from its image's label.
        node: NodeId,
    },
    /// The restriction of the map to some node's neighborhood is not a
    /// bijection onto the image's neighborhood.
    NotLocalIsomorphism {
        /// A product node at which locality fails.
        node: NodeId,
    },
    /// A port-preserving lift was requested but the map does not respect
    /// port numbers at some node.
    NotPortPreserving {
        /// A product node at which port structure differs from its image.
        node: NodeId,
    },
    /// Lifted execution states diverged — would falsify the lifting lemma
    /// (indicates a non-oblivious algorithm was lifted through a
    /// non-port-preserving map, or an impure algorithm).
    LiftDiverged {
        /// The product node that diverged from its image.
        node: NodeId,
        /// The first round of divergence.
        round: usize,
    },
    /// The underlying runtime rejected an execution.
    Runtime(anonet_runtime::RuntimeError),
    /// The underlying views machinery rejected a quotient.
    Views(anonet_views::ViewError),
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::WrongDomain { map_len, nodes } => {
                write!(f, "factorizing map covers {map_len} nodes but the product has {nodes}")
            }
            FactorError::ImageOutOfRange { node, image } => {
                write!(f, "image {image} of node {node} is out of range for the factor")
            }
            FactorError::NotSurjective { uncovered } => {
                write!(f, "map is not surjective: factor node {uncovered} has no preimage")
            }
            FactorError::LabelMismatch { node } => {
                write!(f, "map does not preserve the label of node {node}")
            }
            FactorError::NotLocalIsomorphism { node } => {
                write!(f, "map is not a local isomorphism at node {node}")
            }
            FactorError::NotPortPreserving { node } => {
                write!(f, "map does not preserve port numbers at node {node}")
            }
            FactorError::LiftDiverged { node, round } => {
                write!(f, "lifted execution diverged at node {node} in round {round}")
            }
            FactorError::Runtime(e) => write!(f, "runtime error: {e}"),
            FactorError::Views(e) => write!(f, "views error: {e}"),
        }
    }
}

impl Error for FactorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FactorError::Runtime(e) => Some(e),
            FactorError::Views(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anonet_runtime::RuntimeError> for FactorError {
    fn from(e: anonet_runtime::RuntimeError) -> Self {
        FactorError::Runtime(e)
    }
}

impl From<anonet_views::ViewError> for FactorError {
    fn from(e: anonet_views::ViewError) -> Self {
        FactorError::Views(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FactorError::NotSurjective { uncovered: NodeId::new(2) };
        assert!(e.to_string().contains("v2"));
        let e = FactorError::LiftDiverged { node: NodeId::new(1), round: 4 };
        assert!(e.to_string().contains("round 4"));
    }

    #[test]
    fn sources_chain() {
        let e = FactorError::Views(anonet_views::ViewError::QuotientSelfLoop { node: 0 });
        assert!(Error::source(&e).is_some());
        let e = FactorError::NotSurjective { uncovered: NodeId::new(0) };
        assert!(Error::source(&e).is_none());
    }
}
