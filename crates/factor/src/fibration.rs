//! The fibration connection (paper, Section 4).
//!
//! A 2-hop colored undirected graph `G = (V, E, c)` has a *directed
//! (edge-colored) representation* `H`: both directions of every edge
//! become arcs, and arc `(u, v)` is colored `⟨c(u), c(v)⟩`. The paper
//! observes that `H` is symmetric, its edge coloring is *deterministic*
//! (all out-arcs of a node have distinct colors — exactly because `c` is a
//! 2-hop coloring), the coloring respects edge symmetries, and fibrations
//! between such representations correspond to factorizing maps between the
//! underlying 2-hop colored graphs.

use std::collections::BTreeSet;

use anonet_graph::{Label, LabeledGraph, NodeId};

use crate::map::FactorizingMap;

/// A directed arc with its color `⟨c(tail), c(head)⟩`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Arc<L> {
    /// Tail (source) node.
    pub tail: NodeId,
    /// Head (target) node.
    pub head: NodeId,
    /// The arc color `⟨c(tail), c(head)⟩`.
    pub color: (L, L),
}

/// The directed edge-colored representation of a node-colored graph.
#[derive(Clone, Debug)]
pub struct DirectedRepresentation<L> {
    node_count: usize,
    arcs: Vec<Arc<L>>,
}

impl<L: Label> DirectedRepresentation<L> {
    /// Builds the representation of `g` per Section 4: two opposite arcs
    /// per undirected edge, colored by the ordered endpoint-color pair.
    pub fn of(g: &LabeledGraph<L>) -> Self {
        let mut arcs = Vec::with_capacity(2 * g.graph().edge_count());
        for e in g.graph().edges() {
            arcs.push(Arc {
                tail: e.u,
                head: e.v,
                color: (g.label(e.u).clone(), g.label(e.v).clone()),
            });
            arcs.push(Arc {
                tail: e.v,
                head: e.u,
                color: (g.label(e.v).clone(), g.label(e.u).clone()),
            });
        }
        DirectedRepresentation { node_count: g.node_count(), arcs }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc<L>] {
        &self.arcs
    }

    /// `true` iff for every arc the opposite arc is present — the paper's
    /// *symmetric* property (holds by construction; exposed for tests and
    /// for representations built by other means).
    pub fn is_symmetric(&self) -> bool {
        let set: BTreeSet<(NodeId, NodeId)> = self.arcs.iter().map(|a| (a.tail, a.head)).collect();
        set.iter().all(|&(t, h)| set.contains(&(h, t)))
    }

    /// `true` iff the edge coloring is *deterministic*: all out-arcs of
    /// every node carry distinct colors.
    ///
    /// For representations built by [`DirectedRepresentation::of`], this
    /// holds **iff** the node coloring is a 2-hop coloring: out-arcs of
    /// `u` are colored `⟨c(u), c(v)⟩` over neighbors `v`, which are
    /// distinct iff the neighbors' colors are.
    pub fn is_deterministic(&self) -> bool {
        for v in 0..self.node_count {
            let v = NodeId::new(v);
            let mut seen = BTreeSet::new();
            for a in self.arcs.iter().filter(|a| a.tail == v) {
                if !seen.insert((a.color.0.encoded(), a.color.1.encoded())) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` iff the coloring respects edge symmetries: the opposite of
    /// an arc colored `⟨c₁, c₂⟩` is colored `⟨c₂, c₁⟩`.
    pub fn respects_symmetries(&self) -> bool {
        let colored: BTreeSet<(NodeId, NodeId, Vec<u8>, Vec<u8>)> = self
            .arcs
            .iter()
            .map(|a| (a.tail, a.head, a.color.0.encoded(), a.color.1.encoded()))
            .collect();
        colored.iter().all(|(t, h, c1, c2)| colored.contains(&(*h, *t, c2.clone(), c1.clone())))
    }

    /// Checks that `map` (a candidate fibration) preserves arcs and arc
    /// colors into `other` — the Section-4 translation: a factorizing map
    /// between 2-hop colored graphs is exactly an arc-color-preserving
    /// node map between their directed representations (plus the local
    /// lifting property, which [`FactorizingMap`] has already validated).
    pub fn is_fibration_into(&self, other: &Self, map: &FactorizingMap) -> bool {
        let target: BTreeSet<(NodeId, NodeId, Vec<u8>, Vec<u8>)> = other
            .arcs
            .iter()
            .map(|a| (a.tail, a.head, a.color.0.encoded(), a.color.1.encoded()))
            .collect();
        self.arcs.iter().all(|a| {
            target.contains(&(
                map.image(a.tail),
                map.image(a.head),
                a.color.0.encoded(),
                a.color.1.encoded(),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn colored_cycle(n: usize) -> LabeledGraph<u32> {
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    #[test]
    fn representation_is_symmetric_and_respects_symmetries() {
        let h = DirectedRepresentation::of(&colored_cycle(6));
        assert!(h.is_symmetric());
        assert!(h.respects_symmetries());
        assert_eq!(h.arcs().len(), 12);
    }

    #[test]
    fn deterministic_iff_two_hop_colored() {
        // 2-hop colored: deterministic.
        assert!(DirectedRepresentation::of(&colored_cycle(6)).is_deterministic());
        // Proper 1-hop but not 2-hop: node 0 of C4 colored 1,2,1,2 has two
        // out-arcs colored (1,2).
        let c4 = generators::cycle(4).unwrap().with_labels(vec![1u32, 2, 1, 2]).unwrap();
        assert!(!DirectedRepresentation::of(&c4).is_deterministic());
    }

    #[test]
    fn factorizing_maps_are_fibrations() {
        let c6 = colored_cycle(6);
        let c3 = colored_cycle(3);
        let map = FactorizingMap::new(&c6, &c3, vec![0, 1, 2, 0, 1, 2]).unwrap();
        let h6 = DirectedRepresentation::of(&c6);
        let h3 = DirectedRepresentation::of(&c3);
        assert!(h6.is_fibration_into(&h3, &map));
    }

    #[test]
    fn non_factor_maps_are_not_fibrations() {
        // A label-preserving map that scrambles adjacency: swap images of
        // two nodes with equal colors but different neighborhoods... on C6
        // every same-colored pair is view-equivalent, so instead break it
        // by mapping C6 onto C3 with a *rotated* assignment that violates
        // arcs: map 0,1,2,3,4,5 ↦ 0,1,2,0,2,1 is not even label-preserving;
        // use the identity-coloring trick on a path instead.
        let p3 = generators::path(3).unwrap().with_labels(vec![1u32, 2, 1]).unwrap();
        let h = DirectedRepresentation::of(&p3);
        // "Map" collapsing the two endpoints onto node 0 and the middle to
        // itself is a fine node map but P3/{0,2} would need a loop-free
        // 2-node target; test the arc check directly with an identity map
        // into a *different* graph.
        let p3b = generators::path(3).unwrap().with_labels(vec![2u32, 1, 2]).unwrap();
        let hb = DirectedRepresentation::of(&p3b);
        let id = FactorizingMap::identity(3);
        assert!(!h.is_fibration_into(&hb, &id));
    }
}
