//! Prime graphs and the unique prime factor (paper, Lemmas 2–4).

use anonet_graph::{iso, Label, LabeledGraph};
use anonet_views::{quotient, ViewMode, ViewQuotient};

use crate::map::FactorizingMap;
use crate::Result;

/// The prime factor of a labeled graph together with the (validated)
/// factorizing map onto it.
#[derive(Clone, Debug)]
pub struct PrimeFactor<L> {
    quotient: ViewQuotient<L>,
    map: FactorizingMap,
}

impl<L: Label> PrimeFactor<L> {
    /// The prime factor graph (`G_∞ ≅ G_*`).
    pub fn graph(&self) -> &LabeledGraph<L> {
        self.quotient.graph()
    }

    /// The factorizing map `f_∞ : V → V_∞`.
    pub fn map(&self) -> &FactorizingMap {
        &self.map
    }

    /// The underlying view quotient (projection, representatives, fibers).
    pub fn view_quotient(&self) -> &ViewQuotient<L> {
        &self.quotient
    }
}

/// Computes the prime factor of `g` — its view quotient — and **validates**
/// that the projection is a factorizing map, i.e. executes the proof
/// obligation of the paper's Lemma 2.
///
/// # Errors
///
/// Propagates quotient errors (the graph is not 2-hop colored in the
/// relevant sense) and any factor-property violation (which would indicate
/// an internal bug; Lemma 2 says it cannot happen).
pub fn prime_factor<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> Result<PrimeFactor<L>> {
    let q = quotient(g, mode)?;
    let images: Vec<usize> = q.class_of().iter().map(|c| c.index()).collect();
    let map = FactorizingMap::new(g, q.graph(), images)?;
    Ok(PrimeFactor { quotient: q, map })
}

/// `true` iff `g` is prime: every factor of `g` is isomorphic to `g`
/// itself — equivalently (Lemma 4), all depth-∞ views are distinct.
pub fn is_prime<L: Label>(g: &LabeledGraph<L>, mode: ViewMode) -> bool {
    quotient(g, mode).map(|q| q.is_trivial()).unwrap_or(false)
}

/// Verifies the paper's Lemma 3 on a concrete instance: given any factor
/// `g'` of `g` (with its factorizing map already validated), the prime
/// factors of `g` and `g'` must be isomorphic.
///
/// Returns the isomorphism witness between the two prime factors.
///
/// # Errors
///
/// Propagates quotient/factor errors from either graph.
pub fn verify_unique_prime_factor<L: Label>(
    g: &LabeledGraph<L>,
    g_prime: &LabeledGraph<L>,
    mode: ViewMode,
) -> Result<Vec<anonet_graph::NodeId>> {
    let p1 = prime_factor(g, mode)?;
    let p2 = prime_factor(g_prime, mode)?;
    iso::find_isomorphism(p1.graph(), p2.graph()).ok_or_else(|| {
        // Lemma 3 says this cannot happen for 2-hop colored graphs related
        // by a factorizing map; reaching here means the caller's graphs
        // are not actually factor-related (or not 2-hop colored).
        crate::FactorError::NotLocalIsomorphism { node: anonet_graph::NodeId::new(0) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    fn colored_cycle(n: usize) -> LabeledGraph<u32> {
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
        generators::cycle(n).unwrap().with_labels(labels).unwrap()
    }

    #[test]
    fn lemma2_quotient_is_a_factor() {
        // prime_factor validates all three factor properties internally.
        for n in [3usize, 6, 9, 12, 15] {
            let g = colored_cycle(n);
            let p = prime_factor(&g, ViewMode::Portless).unwrap();
            assert_eq!(p.graph().node_count(), 3);
            assert_eq!(p.map().multiplicity(), n / 3);
        }
    }

    #[test]
    fn lemma3_unique_prime_factor_on_figure2() {
        // C12 and C6 are factor-related; their prime factors must agree.
        let c12 = colored_cycle(12);
        let c6 = colored_cycle(6);
        let witness = verify_unique_prime_factor(&c12, &c6, ViewMode::Portless).unwrap();
        assert_eq!(witness.len(), 3);
    }

    #[test]
    fn lemma3_fails_without_two_hop_coloring() {
        // The paper notes the uncolored C12 has two distinct prime
        // factors (C3 and C4) — i.e. Lemma 3 genuinely needs the coloring.
        // Our quotient construction reports the failure as a non-simple
        // quotient.
        let c12 = generators::cycle(12).unwrap().with_uniform_label(0u8);
        assert!(prime_factor(&c12, ViewMode::Portless).is_err());
        assert!(!is_prime(&c12, ViewMode::Portless));
    }

    #[test]
    fn lemma4_prime_iff_views_distinct() {
        let prime = colored_cycle(3);
        assert!(is_prime(&prime, ViewMode::Portless));
        let product = colored_cycle(6);
        assert!(!is_prime(&product, ViewMode::Portless));
        // Unique IDs make any graph prime.
        let ids = generators::petersen().with_labels((0..10u32).collect()).unwrap();
        assert!(is_prime(&ids, ViewMode::Portless));
    }

    #[test]
    fn prime_factor_of_prime_graph_is_itself() {
        let g = colored_cycle(3);
        let p = prime_factor(&g, ViewMode::Portless).unwrap();
        assert!(p.map().is_bijective());
        assert!(iso::are_isomorphic(p.graph(), &g));
    }

    #[test]
    fn random_lift_has_base_as_prime_factor() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        let base = generators::cycle(5).unwrap();
        let colored = anonet_graph::coloring::greedy_two_hop_coloring(&base);
        let lift = anonet_graph::lift::random_connected_lift(&base, 3, 100, &mut rng).unwrap();
        let product = lift.lift_labels(colored.labels()).unwrap();
        let witness = verify_unique_prime_factor(&product, &colored, ViewMode::Portless).unwrap();
        assert!(!witness.is_empty());
        let p = prime_factor(&product, ViewMode::Portless).unwrap();
        assert_eq!(p.map().multiplicity(), 3);
    }
}
