//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * exhaustive-minimal vs seeded-replay canonical-simulation search;
//! * portless vs port-aware refinement;
//! * explicit vs folded view construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonet_algorithms::mis::RandomizedMis;
use anonet_core::{Derandomizer, SearchStrategy};
use anonet_graph::{generators, NodeId};
use anonet_views::{FoldedView, Refinement, ViewMode, ViewTree};

fn colored_lift_instance(m: usize) -> anonet_graph::LabeledGraph<((), u32)> {
    let l = anonet_graph::lift::cyclic_cycle_lift(3, m).expect("valid");
    l.lift_labels(&[((), 1u32), ((), 2), ((), 3)]).expect("labels fit")
}

fn bench_search_strategies(c: &mut Criterion) {
    let inst = colored_lift_instance(4);
    let mut group = c.benchmark_group("ablation/search_strategy");
    for (name, strategy) in [
        ("exhaustive", SearchStrategy::Exhaustive { max_total_bits: 24 }),
        ("seeded", SearchStrategy::Seeded { max_attempts: 64 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            let d = Derandomizer::new(RandomizedMis::new()).with_strategy(s);
            b.iter(|| d.run(&inst).expect("derandomization completes"));
        });
    }
    group.finish();
}

fn bench_refinement_modes(c: &mut Criterion) {
    let g = generators::grid(8, 8, false).expect("valid").with_uniform_label(0u32);
    let mut group = c.benchmark_group("ablation/refinement_mode");
    for (name, mode) in [("portless", ViewMode::Portless), ("port_aware", ViewMode::PortAware)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &m| {
            b.iter(|| Refinement::compute(&g, m));
        });
    }
    group.finish();
}

fn bench_view_representations(c: &mut Criterion) {
    let g = generators::cycle(12)
        .expect("valid")
        .with_labels((0..12).map(|i| (i % 3) as u32).collect())
        .expect("valid");
    let mut group = c.benchmark_group("ablation/view_representation");
    for depth in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("explicit", depth), &depth, |b, &d| {
            b.iter(|| ViewTree::build(&g, NodeId::new(0), d).expect("fits"));
        });
        group.bench_with_input(BenchmarkId::new("folded", depth), &depth, |b, &d| {
            b.iter(|| FoldedView::build(&g, NodeId::new(0), d).expect("valid"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_strategies,
    bench_refinement_modes,
    bench_view_representations
);
criterion_main!(benches);
