//! Benchmarks for the GRAN member algorithms (E11's timing side):
//! randomized MIS / coloring and their deterministic-given-coloring
//! counterparts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonet_algorithms::coloring::RandomizedColoring;
use anonet_algorithms::det_mis::DeterministicMis;
use anonet_algorithms::mis::RandomizedMis;
use anonet_graph::{coloring, generators};
use anonet_runtime::{run, ExecConfig, Oblivious, RngSource, ZeroSource};

fn bench_randomized_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis/randomized_cycle");
    for n in [16usize, 64, 256] {
        let net = generators::cycle(n).expect("valid").with_uniform_label(());
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    &Oblivious(RandomizedMis::new()),
                    net,
                    &mut RngSource::seeded(seed),
                    &ExecConfig::default(),
                )
                .expect("MIS completes")
            });
        });
    }
    group.finish();
}

fn bench_deterministic_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis/deterministic_given_coloring");
    for n in [16usize, 64, 256] {
        let g = generators::cycle(n).expect("valid");
        let colored = coloring::greedy_two_hop_coloring(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &colored, |b, net| {
            b.iter(|| {
                run(
                    &Oblivious(DeterministicMis::<u32>::new()),
                    net,
                    &mut ZeroSource,
                    &ExecConfig::default(),
                )
                .expect("deterministic MIS completes")
            });
        });
    }
    group.finish();
}

fn bench_randomized_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/randomized");
    for (name, g) in [
        ("cycle-32", generators::cycle(32).expect("valid")),
        ("grid-5x5", generators::grid(5, 5, false).expect("valid")),
    ] {
        let net = g.with_uniform_label(());
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    &Oblivious(RandomizedColoring::new()),
                    net,
                    &mut RngSource::seeded(seed),
                    &ExecConfig::default(),
                )
                .expect("coloring completes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_randomized_mis, bench_deterministic_mis, bench_randomized_coloring);
criterion_main!(benches);
