//! Benchmarks for the Las-Vegas 2-hop coloring stage (E10's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonet_algorithms::two_hop_coloring::TwoHopColoring;
use anonet_graph::generators;
use anonet_runtime::{run, ExecConfig, Oblivious, RngSource};

fn bench_two_hop_on_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_hop_coloring/cycle");
    for n in [8usize, 32, 128] {
        let net = generators::cycle(n).expect("valid").with_uniform_label(());
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    &Oblivious(TwoHopColoring::new()),
                    net,
                    &mut RngSource::seeded(seed),
                    &ExecConfig::default(),
                )
                .expect("coloring completes")
            });
        });
    }
    group.finish();
}

fn bench_two_hop_on_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_hop_coloring/dense");
    for (name, g) in [
        ("petersen", generators::petersen()),
        ("torus4x4", generators::grid(4, 4, true).expect("valid")),
        ("hypercube4", generators::hypercube(4).expect("valid")),
    ] {
        let net = g.with_uniform_label(());
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(
                    &Oblivious(TwoHopColoring::new()),
                    net,
                    &mut RngSource::seeded(seed),
                    &ExecConfig::default(),
                )
                .expect("coloring completes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_hop_on_cycles, bench_two_hop_on_dense);
criterion_main!(benches);
