//! Benchmarks for the Theorem-1 pipeline (E4's timing side): the full
//! two-stage run and the deterministic stage alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonet_algorithms::mis::RandomizedMis;
use anonet_core::pipeline::run_pipeline;
use anonet_core::{Derandomizer, SearchStrategy};
use anonet_graph::generators;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/mis_cycle");
    for n in [8usize, 16, 32] {
        let net = generators::cycle(n).expect("valid").with_uniform_label(());
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_pipeline(&RandomizedMis::new(), net, seed, SearchStrategy::default())
                    .expect("pipeline completes")
            });
        });
    }
    group.finish();
}

fn bench_deterministic_stage_on_lifts(c: &mut Criterion) {
    let mut group = c.benchmark_group("derandomizer/mis_c3_lift");
    for m in [2usize, 8, 32] {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, m).expect("valid");
        let inst = l.lift_labels(&[((), 1u32), ((), 2), ((), 3)]).expect("labels fit");
        group.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            let d = Derandomizer::new(RandomizedMis::new());
            b.iter(|| d.run(inst).expect("derandomization completes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_deterministic_stage_on_lifts);
criterion_main!(benches);
