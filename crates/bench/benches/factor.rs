//! Benchmarks for the factor machinery: prime-factor extraction and
//! factorizing-map validation (Figure 2 at scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use anonet_factor::prime::prime_factor;
use anonet_factor::FactorizingMap;
use anonet_graph::{coloring, generators, lift};
use anonet_views::ViewMode;

fn bench_prime_factor_of_lifts(c: &mut Criterion) {
    let base = generators::petersen();
    let colored = coloring::greedy_two_hop_coloring(&base);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut group = c.benchmark_group("prime_factor/petersen_lift");
    for m in [2usize, 4, 8] {
        let l = lift::random_connected_lift(&base, m, 300, &mut rng).expect("liftable");
        let product = l.lift_labels(colored.labels()).expect("labels fit");
        group.bench_with_input(BenchmarkId::from_parameter(m), &product, |b, p| {
            b.iter(|| prime_factor(p, ViewMode::Portless).expect("2-hop colored"));
        });
    }
    group.finish();
}

fn bench_map_validation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let base = generators::cycle(30).expect("valid");
    let colored = coloring::greedy_two_hop_coloring(&base);
    let l = lift::random_connected_lift(&base, 4, 300, &mut rng).expect("liftable");
    let product = l.lift_labels(colored.labels()).expect("labels fit");
    let images: Vec<usize> = l.projection().iter().map(|v| v.index()).collect();
    c.bench_function("factorizing_map/validate_c30x4", |b| {
        b.iter(|| FactorizingMap::new(&product, &colored, images.clone()).expect("valid map"));
    });
}

criterion_group!(benches, bench_prime_factor_of_lifts, bench_map_validation);
criterion_main!(benches);
