//! Benchmarks for the views machinery: explicit view trees (Figure 1) and
//! refinement / quotient computation (the Norris pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use anonet_graph::{generators, NodeId};
use anonet_views::{quotient, Refinement, ViewMode, ViewTree};

fn colored_cycle(n: usize) -> anonet_graph::LabeledGraph<u32> {
    let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
    generators::cycle(n).expect("valid").with_labels(labels).expect("valid")
}

fn bench_view_tree_depth(c: &mut Criterion) {
    let g = colored_cycle(6);
    let mut group = c.benchmark_group("view_tree/build_c6");
    for depth in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| ViewTree::build(&g, NodeId::new(0), d).expect("fits budget"));
        });
    }
    group.finish();
}

fn bench_refinement_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement/uniform_path");
    for n in [32usize, 128, 512] {
        let g = generators::path(n).expect("valid").with_uniform_label(0u32);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| Refinement::compute(g, ViewMode::Portless));
        });
    }
    group.finish();
}

fn bench_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("quotient/colored_cycle");
    for n in [12usize, 48, 192] {
        let g = colored_cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| quotient(g, ViewMode::Portless).expect("2-hop colored"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_view_tree_depth, bench_refinement_size, bench_quotient);
criterion_main!(benches);
