//! Benchmarks for execution lifting (E8's timing side): the cost of a
//! verified lift grows with the product size, not the factor size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use anonet_algorithms::mis::RandomizedMis;
use anonet_factor::lifting::run_lifted_oblivious;
use anonet_factor::FactorizingMap;
use anonet_graph::{generators, BitString};
use anonet_runtime::{BitAssignment, ExecConfig};

fn bench_verified_lift(c: &mut Criterion) {
    let base = generators::cycle(3).expect("valid").with_uniform_label(());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let tapes: Vec<BitString> =
        (0..3).map(|_| (0..30).map(|_| rng.gen::<bool>()).collect()).collect();
    let assignment = BitAssignment::new(tapes);

    let mut group = c.benchmark_group("lifting/verified_mis_c3_lift");
    for m in [2usize, 8, 32] {
        let l = anonet_graph::lift::cyclic_cycle_lift(3, m).expect("valid");
        let product = l.lift_labels(&[(), (), ()]).expect("labels fit");
        let images: Vec<usize> = l.projection().iter().map(|v| v.index()).collect();
        let map = FactorizingMap::new(&product, &base, images).expect("valid map");
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                run_lifted_oblivious(
                    &RandomizedMis::new(),
                    &product,
                    &base,
                    &map,
                    &assignment,
                    &ExecConfig::default(),
                )
                .expect("lift agrees")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verified_lift);
criterion_main!(benches);
