//! # anonet-bench
//!
//! Experiment harness regenerating every figure and theorem of
//! *"Anonymous Networks: Randomization = 2-Hop Coloring"* (PODC 2014).
//!
//! The paper is a theory paper: its artifacts are Figures 1–3 and the
//! theorem/lemma structure, not empirical tables. Each experiment module
//! regenerates one artifact programmatically and/or validates one claim
//! empirically, printing the tables recorded in `EXPERIMENTS.md`:
//!
//! | Id | Module | Paper artifact |
//! |----|--------|----------------|
//! | E1 | [`experiments::fig1`] | Figure 1 (depth-3 local view in colored C6) |
//! | E2 | [`experiments::fig2`] | Figure 2 (C12 ⪰ C6 ⪰ C3 factorization) |
//! | E3 | [`experiments::thm1_faithful`] | Figure 3 / Theorem 1 (`A_*`) |
//! | E4 | [`experiments::thm1_pipeline`] | Theorem 1 end-to-end pipeline |
//! | E5 | [`experiments::thm2`] | Theorem 2 (`A_∞`) |
//! | E6 | [`experiments::norris`] | Theorem 3 (Norris depth bound) |
//! | E7 | [`experiments::lemmas`] | Lemmas 2–4 (unique prime factor) |
//! | E8 | [`experiments::lifting`] | Fact 1 / lifting lemma |
//! | E9 | [`experiments::agreement`] | `A_*` ≡ practical derandomizer |
//! | E10 | [`experiments::twohop`] | The Las-Vegas 2-hop coloring stage |
//! | E11 | [`experiments::gran`] | GRAN members & the leader-election gap |
//! | E12 | [`experiments::khop`] | k-hop coloring for k > 2 ∉ GRAN |
//! | E13 | [`experiments::distributed`] | message-level derandomizer (extension) |
//! | E14 | [`experiments::montecarlo`] | the Monte-Carlo / Las-Vegas gap |
//! | E15 | [`experiments::batch`] | batch engine + s(G_*) cache (Lemma 3 operationalized) |
//! | E16 | [`experiments::obs`] | observability layer: phase breakdown, curves, noop cost |
//! | E17 | [`experiments::astar`] | fast Update-Graph engine: pool memo, interning, threads |
//! | E18 | [`experiments::store`] | persistent store: cold vs warm-start across processes |
//! | E19 | [`experiments::soak`] | seeded soak campaign + the `BENCH_soak.json` regression baseline |
//! | E20 | [`experiments::trace`] | causal tracing: noop/flight overhead + the anonet-trace round trip |
//! | E21 | [`experiments::scale`] | million-node core: arena encoding, incremental refinement, 1/2/8-thread byte-identity |
//!
//! Run them with `cargo run -p anonet-bench --bin report -- <id>|all`.
//! Timing benchmarks live in `benches/` (Criterion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod table;

pub use table::{secs, Json, Table};

/// All experiment ids, in presentation order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "fig1",
    "fig2",
    "thm1-faithful",
    "thm1-pipeline",
    "thm2",
    "norris",
    "lemmas",
    "lifting",
    "agreement",
    "twohop",
    "gran",
    "khop",
    "message-level",
    "montecarlo",
    "batch",
    "obs",
    "astar",
    "store",
    "soak",
    "trace",
    "scale",
];

/// Runs one experiment by id, returning its rendered report.
///
/// # Errors
///
/// Returns a boxed error if the experiment fails (they should not; every
/// failure is a reproduction regression) or the id is unknown.
pub fn run_experiment(id: &str) -> Result<String, Box<dyn std::error::Error>> {
    match id {
        "fig1" => experiments::fig1::report(),
        "fig2" => experiments::fig2::report(),
        "thm1-faithful" => experiments::thm1_faithful::report(),
        "thm1-pipeline" => experiments::thm1_pipeline::report(),
        "thm2" => experiments::thm2::report(),
        "norris" => experiments::norris::report(),
        "lemmas" => experiments::lemmas::report(),
        "lifting" => experiments::lifting::report(),
        "agreement" => experiments::agreement::report(),
        "twohop" => experiments::twohop::report(),
        "gran" => experiments::gran::report(),
        "khop" => experiments::khop::report(),
        "message-level" => experiments::distributed::report(),
        "montecarlo" => experiments::montecarlo::report(),
        "batch" => experiments::batch::report(),
        "obs" => experiments::obs::report(),
        "astar" => experiments::astar::report(),
        "store" => experiments::store::report(),
        "soak" => experiments::soak::report(),
        "trace" => experiments::trace::report(),
        "scale" => experiments::scale::report(),
        other => Err(format!("unknown experiment id {other:?}; known: {EXPERIMENT_IDS:?}").into()),
    }
}
