//! Minimal fixed-width table rendering for experiment reports, plus the
//! workspace's one shared JSON serializer (re-exported from
//! [`anonet_obs::json`]) that every `BENCH_*.json` artifact goes through.

use std::fmt;
use std::time::Duration;

pub use anonet_obs::json::Json;

/// A titled table with a header row and data rows, rendered with aligned
/// fixed-width columns (the format used throughout `EXPERIMENTS.md`).
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (table convenience).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// A [`Duration`] as fractional seconds, rounded to microsecond
/// resolution so the JSON artifacts stay stable and short.
pub fn secs(d: Duration) -> Json {
    Json::Num((d.as_secs_f64() * 1e6).round() / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("| 333 | 4           |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.2345), "1.23");
    }

    #[test]
    fn secs_round_trips_through_the_shared_serializer() {
        let v = secs(Duration::from_micros(1_234_567));
        assert_eq!(v.to_string(), "1.234567");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
