//! E15 — the batch engine and the content-addressed derandomization
//! cache, measured: sweep ≥ 8 lifts per base over two cyclic bases, run
//! the deterministic stage (a) sequentially with no cache and (b) on the
//! batch scheduler with a shared [`DerandCache`], and verify the outputs
//! are identical bit for bit while the cached batch collapses each lift
//! family's canonical search (paper, Lemma 3: one search per quotient
//! class) into a single miss plus replays.
//!
//! The rendered table reports per-instance wall times and hit/miss
//! status; the summary reports the headline speedup, jobs/sec, and cache
//! hit rate, and [`report`] additionally emits `BENCH_batch.json` with
//! the machine-readable numbers.

use std::sync::Arc;
use std::time::Duration;

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_batch::{BatchScheduler, CacheStats, DerandCache};
use anonet_core::batch::derandomize_batch;
use anonet_core::{DerandomizedRun, SearchStrategy};
use anonet_graph::lift::cyclic_cycle_lift;
use anonet_graph::LabeledGraph;
use anonet_runtime::{ExecConfig, Problem};

use crate::experiments::{common::tick, ExpResult};
use crate::table::{secs, Json};
use crate::Table;

/// Lift multiplicities swept per base (8 lifts each, m = 2..=9).
pub const MULTIPLICITIES: std::ops::RangeInclusive<usize> = 2..=9;

/// One instance of the sweep: a lift of one of the cyclic bases.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Base graph name (`C3` or `C4`).
    pub base: &'static str,
    /// Lift multiplicity.
    pub m: usize,
    /// Nodes of the lifted instance.
    pub n: usize,
    /// Quotient size seen by the derandomizer (must equal the base size).
    pub quotient: usize,
    /// Whether the cached run hit the assignment table.
    pub cache_hit: bool,
    /// Wall time of the uncached sequential run.
    pub uncached: Duration,
    /// Wall time of the cached batch run.
    pub cached: Duration,
    /// The two runs agree on every recorded field, byte for byte.
    pub identical: bool,
    /// The derandomized output is a valid MIS of the lift.
    pub valid: bool,
}

/// The headline numbers of the sweep.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Instances swept.
    pub jobs: usize,
    /// Worker threads of the batch scheduler.
    pub threads: usize,
    /// Wall time of the uncached sequential baseline.
    pub uncached_wall: Duration,
    /// Wall time of the cache-enabled batch.
    pub cached_wall: Duration,
    /// `uncached_wall / cached_wall`.
    pub speedup: f64,
    /// Throughput of the cache-enabled batch.
    pub jobs_per_sec: f64,
    /// Cache accounting for the batch window.
    pub cache: CacheStats,
    /// Every instance's cached run matched its uncached run byte for byte.
    pub all_identical: bool,
}

/// One batch instance: base-family name, multiplicity, colored lift.
type LiftInstance = (&'static str, usize, LabeledGraph<((), u32)>);

fn lift_families() -> ExpResult<Vec<LiftInstance>> {
    let mut instances = Vec::new();
    for (name, base_n) in [("C3", 3usize), ("C4", 4usize)] {
        let labels: Vec<((), u32)> = (0..base_n).map(|i| ((), i as u32 + 1)).collect();
        for m in MULTIPLICITIES {
            let lift = cyclic_cycle_lift(base_n, m)?;
            instances.push((name, m, lift.lift_labels(&labels)?));
        }
    }
    Ok(instances)
}

/// A canonical byte serialization of a run's observable fields, so
/// "identical outputs" is checked at the byte level rather than through
/// `PartialEq` shortcuts (E18 reuses this for its cold/warm differential).
pub(crate) fn run_bytes(run: &DerandomizedRun<bool>) -> Vec<u8> {
    let mut out = Vec::new();
    for &b in &run.outputs {
        out.push(b as u8);
    }
    out.extend_from_slice(&(run.quotient_nodes as u64).to_le_bytes());
    out.extend_from_slice(&(run.multiplicity as u64).to_le_bytes());
    out.extend_from_slice(&(run.simulation_rounds as u64).to_le_bytes());
    out.extend_from_slice(&(run.attempts as u64).to_le_bytes());
    for tape in run.assignment.tapes() {
        out.extend_from_slice(&(tape.len() as u64).to_le_bytes());
        for bit in tape.iter() {
            out.push(bit as u8);
        }
    }
    out
}

/// Runs the sweep: sequential-uncached baseline, then cache-enabled batch,
/// with the paper's exhaustive (minimal-assignment) search so the work a
/// hit saves is the full `2^(|V_*|·t)` enumeration.
///
/// # Errors
///
/// Propagates lift-construction and derandomization errors.
pub fn measure() -> ExpResult<(Vec<BatchRow>, BatchSummary)> {
    let instances = lift_families()?;
    let graphs: Vec<LabeledGraph<((), u32)>> =
        instances.iter().map(|(_, _, g)| g.clone()).collect();
    let alg = RandomizedMis::new();
    let strategy = SearchStrategy::Exhaustive { max_total_bits: 24 };
    let config = ExecConfig::default();

    // Baseline: every instance pays for its own exhaustive search.
    let baseline =
        derandomize_batch(&alg, &graphs, strategy, &config, &BatchScheduler::with_threads(1), None);

    // The engine under test: shared cache, machine-sized worker pool.
    let cache = Arc::new(DerandCache::new());
    let scheduler = BatchScheduler::new();
    let batch = derandomize_batch(&alg, &graphs, strategy, &config, &scheduler, Some(&cache));

    let mut rows = Vec::new();
    for (i, (name, m, g)) in instances.iter().enumerate() {
        let seq = baseline.results[i].ok().ok_or("baseline job failed")?;
        let par = batch.results[i].ok().ok_or("batch job failed")?;
        let plain = g.map_labels(|_| ());
        rows.push(BatchRow {
            base: name,
            m: *m,
            n: g.node_count(),
            quotient: par.quotient_nodes,
            cache_hit: par.cache_hit,
            uncached: baseline.stats.job_times[i],
            cached: batch.stats.job_times[i],
            identical: run_bytes(seq) == run_bytes(par),
            valid: MisProblem.is_valid_output(&plain, &par.outputs),
        });
    }

    let cache_stats = batch.stats.cache.ok_or("cache stats missing")?;
    let summary = BatchSummary {
        jobs: rows.len(),
        threads: batch.stats.threads,
        uncached_wall: baseline.stats.wall,
        cached_wall: batch.stats.wall,
        speedup: baseline.stats.wall.as_secs_f64()
            / batch.stats.wall.as_secs_f64().max(f64::EPSILON),
        jobs_per_sec: batch.stats.jobs_per_sec(),
        cache: cache_stats,
        all_identical: rows.iter().all(|r| r.identical),
    };
    Ok((rows, summary))
}

/// Builds the machine-readable summary through the workspace's shared
/// JSON serializer ([`crate::table::Json`] — the dependency policy keeps
/// serde out, and E15 and E16 share this one code path).
pub fn to_json(rows: &[BatchRow], s: &BatchSummary) -> String {
    let row_objs = rows.iter().map(|r| {
        Json::obj([
            ("base", Json::str(r.base)),
            ("m", Json::from(r.m)),
            ("n", Json::from(r.n)),
            ("quotient", Json::from(r.quotient)),
            ("cache_hit", Json::from(r.cache_hit)),
            ("uncached_secs", secs(r.uncached)),
            ("cached_secs", secs(r.cached)),
            ("identical", Json::from(r.identical)),
            ("valid", Json::from(r.valid)),
        ])
    });
    Json::obj([
        ("experiment", Json::str("batch")),
        ("jobs", Json::from(s.jobs)),
        ("threads", Json::from(s.threads)),
        ("sequential_uncached_secs", secs(s.uncached_wall)),
        ("batch_cached_secs", secs(s.cached_wall)),
        ("speedup", Json::Num((s.speedup * 1e3).round() / 1e3)),
        ("jobs_per_sec", Json::Num((s.jobs_per_sec * 1e3).round() / 1e3)),
        ("byte_identical", Json::from(s.all_identical)),
        (
            "cache",
            Json::obj([
                ("quotient_entries", Json::from(s.cache.quotient_entries)),
                ("assignment_entries", Json::from(s.cache.assignment_entries)),
                ("assignment_hits", Json::from(s.cache.assignment_hits)),
                ("assignment_misses", Json::from(s.cache.assignment_misses)),
                ("hit_rate", Json::Num((s.cache.hit_rate() * 1e4).round() / 1e4)),
                ("bytes", Json::from(s.cache.bytes)),
                // Persistence counters: all zero here (E15 runs
                // memory-only); E18 exercises the disk tier.
                ("disk_hits", Json::from(s.cache.disk_hits)),
                ("disk_misses", Json::from(s.cache.disk_misses)),
                ("disk_errors", Json::from(s.cache.disk_errors)),
            ]),
        ),
        ("rows", Json::arr(row_objs)),
    ])
    .pretty()
}

/// Renders the E15 report and writes `BENCH_batch.json` to the working
/// directory.
///
/// # Errors
///
/// Propagates measurement errors; the JSON write failing is an error too.
pub fn report() -> ExpResult<String> {
    let (rows, summary) = measure()?;
    let mut t = Table::new(
        "E15 / batch engine — sequential uncached vs concurrent batch with the s(G_*) cache \
         (MIS, exhaustive minimal-assignment search)",
        &["base", "m", "n", "|V*|", "cache", "uncached", "cached", "identical", "valid"],
    );
    for r in &rows {
        t.row(vec![
            r.base.to_string(),
            r.m.to_string(),
            r.n.to_string(),
            r.quotient.to_string(),
            if r.cache_hit { "hit".into() } else { "miss".into() },
            format!("{:.2?}", r.uncached),
            format!("{:.2?}", r.cached),
            tick(r.identical),
            tick(r.valid),
        ]);
    }
    let json = to_json(&rows, &summary);
    std::fs::write("BENCH_batch.json", &json)?;
    Ok(format!(
        "{t}\n{jobs} jobs on {threads} thread(s): uncached sequential {unc:.3?}, \
         cached batch {cac:.3?} — speedup {spd:.2}x at {jps:.1} jobs/sec\n{cache}\n\
         byte-identical outputs: {ident}\nwrote BENCH_batch.json\n",
        t = t,
        jobs = summary.jobs,
        threads = summary.threads,
        unc = summary.uncached_wall,
        cac = summary.cached_wall,
        spd = summary.speedup,
        jps = summary.jobs_per_sec,
        cache = summary.cache.render(),
        ident = tick(summary.all_identical),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_identical_and_cache_hits() {
        let (rows, summary) = measure().unwrap();
        // 8 lifts per base, two bases.
        assert_eq!(rows.len(), 16);
        assert!(summary.all_identical);
        assert!(rows.iter().all(|r| r.valid));
        // One miss per base family, hits everywhere else.
        assert_eq!(summary.cache.assignment_misses, 2);
        assert_eq!(summary.cache.assignment_hits, 14);
        assert!(summary.cache.hit_rate() > 0.8);
        // Quotients collapse to the bases.
        assert!(rows.iter().all(|r| r.quotient == if r.base == "C3" { 3 } else { 4 }));
    }

    #[test]
    fn json_parses_and_carries_the_schema() {
        let (rows, summary) = measure().unwrap();
        let json = to_json(&rows, &summary);
        // The artifact must re-parse through the shared serializer.
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("batch"));
        assert_eq!(v.get("jobs").unwrap().as_f64(), Some(16.0));
        assert_eq!(v.get("byte_identical").unwrap().as_bool(), Some(true));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("assignment_misses").unwrap().as_f64(), Some(2.0));
        let parsed_rows = v.get("rows").unwrap().items().unwrap();
        assert_eq!(parsed_rows.len(), 16);
        assert_eq!(parsed_rows[0].get("base").unwrap().as_str(), Some("C3"));
        assert!(parsed_rows[0].get("uncached_secs").unwrap().as_f64().unwrap() >= 0.0);
    }
}
