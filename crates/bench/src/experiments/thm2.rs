//! E5 — Theorem 2: `A_∞` (infinity model) on the Figure-2 products. The
//! table shows the minimal successful assignment is the *same* on every
//! product of the same base (Lemma 1's agreement, across graphs), and
//! outputs agree along fibers.

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_core::infinity::solve_infinity;
use anonet_runtime::{ExecConfig, Problem};

use crate::experiments::{common::tick, ExpResult, Family};
use crate::Table;

/// Row: `(n, |V*|, minimal tape length t, simulations tried, fibers agree,
/// MIS valid)`.
///
/// # Errors
///
/// Propagates derandomization errors.
#[allow(clippy::type_complexity)]
pub fn rows() -> ExpResult<Vec<(usize, usize, usize, usize, bool, bool)>> {
    let mut out = Vec::new();
    for (n, colored) in Family::figure2_tower() {
        let inst = colored.map_labels(|&c| ((), c));
        let run = solve_infinity(&RandomizedMis::new(), &inst, 24, &ExecConfig::default())?;
        let fibers_agree = (0..n).all(|v| run.outputs[v] == run.outputs[(v + 3) % n]);
        let plain = inst.map_labels(|_| ());
        let valid = MisProblem.is_valid_output(&plain, &run.outputs);
        out.push((
            n,
            run.quotient_nodes,
            run.assignment.simulation_length(),
            run.attempts,
            fibers_agree,
            valid,
        ));
    }
    Ok(out)
}

/// Renders the E5 report.
///
/// # Errors
///
/// Propagates derandomization errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E5 / Theorem 2 — A_∞ with the exhaustive minimal assignment (MIS on the Figure-2 tower)",
        &["graph", "|V*|", "minimal t", "sims tried", "fibers agree", "MIS valid"],
    );
    for (n, q, tlen, attempts, agree, valid) in rows()? {
        t.row(vec![
            format!("C{n} (colored)"),
            q.to_string(),
            tlen.to_string(),
            attempts.to_string(),
            tick(agree),
            tick(valid),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_assignment_is_shared_across_the_tower() {
        let rows = rows().unwrap();
        assert_eq!(rows.len(), 3);
        // Same quotient ⇒ same minimal tape length and same search effort.
        let (q0, t0, a0) = (rows[0].1, rows[0].2, rows[0].3);
        for r in &rows {
            assert_eq!(r.1, q0);
            assert_eq!(r.2, t0);
            assert_eq!(r.3, a0);
            assert!(r.4 && r.5);
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Theorem 2"));
        assert!(!r.contains("NO"));
    }
}
