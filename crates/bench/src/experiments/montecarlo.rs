//! E14 — the Monte-Carlo / Las-Vegas gap (paper, Sections 1 and 1.3):
//! leader election is impossible for Las-Vegas anonymous algorithms
//! (E11b) yet easy for Monte-Carlo ones — at the price of undetectable
//! failures. The table measures the empirical failure rate against the
//! `n²/2^{b+1}` union bound as the identifier width `b` varies.

use anonet_algorithms::monte_carlo::MonteCarloLeader;
use anonet_graph::generators;
use anonet_runtime::{run, ExecConfig, Oblivious, RngSource};

use crate::experiments::ExpResult;
use crate::table::f2;
use crate::Table;

/// One row: `(id_bits, trials, elections with exactly one leader,
/// failure rate %, union bound %)`.
#[allow(clippy::type_complexity)]
pub fn rows(trials: u64) -> ExpResult<Vec<(usize, u64, u64, f64, f64)>> {
    let g = generators::petersen();
    let n = g.node_count() as f64;
    let net = g.with_uniform_label(g.node_count());
    let mut out = Vec::new();
    for id_bits in [2usize, 4, 8, 16, 32] {
        let mut unique = 0u64;
        for seed in 0..trials {
            let exec = run(
                &Oblivious(MonteCarloLeader::new(id_bits)),
                &net,
                &mut RngSource::seeded(seed),
                &ExecConfig::default(),
            )?;
            let leaders = exec.outputs_unwrapped().iter().filter(|&&b| b).count();
            if leaders == 1 {
                unique += 1;
            }
        }
        let failure = 100.0 * (trials - unique) as f64 / trials as f64;
        let bound = 100.0 * (n * n / 2f64.powi(id_bits as i32 + 1)).min(1.0);
        out.push((id_bits, trials, unique, failure, bound));
    }
    Ok(out)
}

/// Renders the E14 report.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E14 — Monte-Carlo leader election on Petersen (n=10): failure rate vs id width",
        &["id bits", "trials", "unique leader", "failure %", "union bound %"],
    );
    for (bits, trials, unique, failure, bound) in rows(60)? {
        t.row(vec![
            bits.to_string(),
            trials.to_string(),
            unique.to_string(),
            f2(failure),
            f2(bound),
        ]);
    }
    let mut s = t.to_string();
    s.push_str(
        "\nfailures are undetectable by the nodes themselves — which is precisely why\n\
         Monte-Carlo solvability of leader election does not place it in GRAN (the paper\n\
         requires probability-1 validity), and why the Theorem-1 characterization is about\n\
         Las-Vegas algorithms only.\n",
    );
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rate_decreases_with_id_width() {
        let rows = rows(40).unwrap();
        // Wide ids never fail in 40 trials; narrow ids fail at least once.
        let narrow = rows.first().unwrap();
        let wide = rows.last().unwrap();
        assert!(narrow.3 > 0.0, "2-bit ids should fail somewhere in 40 trials");
        assert_eq!(wide.3, 0.0, "32-bit ids should never fail in 40 trials");
        // Rates are weakly decreasing in width.
        for w in rows.windows(2) {
            assert!(w[1].3 <= w[0].3 + 1e-9);
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Monte-Carlo"));
    }
}
