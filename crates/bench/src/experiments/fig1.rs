//! E1 — Figure 1: the depth-3 local view of `u₀` in the colored `C₆`,
//! plus a view-size sweep (the quantitative reason the paper needs the
//! refinement/Norris detour: explicit views grow exponentially).

use anonet_graph::{generators, LabeledGraph, NodeId};
use anonet_views::ViewTree;

use crate::experiments::ExpResult;
use crate::Table;

/// The paper's Figure-1 instance: C6 colored 1, 2, 3, 1, 2, 3.
pub fn figure1_instance() -> LabeledGraph<u32> {
    generators::cycle(6)
        .expect("C6 is valid")
        .with_labels(vec![1, 2, 3, 1, 2, 3])
        .expect("six labels")
}

/// The depth-3 view of node `u₀` — the tree drawn in Figure 1.
///
/// # Errors
///
/// Propagates view-construction errors (none at this size).
pub fn figure1_view() -> ExpResult<ViewTree<u32>> {
    Ok(ViewTree::build(&figure1_instance(), NodeId::new(0), 3)?)
}

/// View-size sweep rows: `(graph, depth, vertices)`.
///
/// # Errors
///
/// Propagates view-construction errors.
pub fn size_sweep() -> ExpResult<Vec<(String, usize, usize)>> {
    let mut rows = Vec::new();
    let c6 = figure1_instance();
    for d in 1..=10 {
        rows.push(("C6 (colored)".to_string(), d, ViewTree::build(&c6, NodeId::new(0), d)?.size()));
    }
    let pet = generators::petersen().with_degree_labels();
    for d in 1..=8 {
        rows.push(("Petersen".to_string(), d, ViewTree::build(&pet, NodeId::new(0), d)?.size()));
    }
    Ok(rows)
}

/// Renders the E1 report.
///
/// # Errors
///
/// Propagates view-construction errors.
pub fn report() -> ExpResult<String> {
    let view = figure1_view()?;
    let mut out = String::new();
    out.push_str("## E1 / Figure 1 — depth-3 local view of u0 in the colored C6\n\n");
    out.push_str(&view.render());
    out.push_str(&format!(
        "\nvertices: {}, depth: {} (paper draws the same 7-vertex tree)\n\n",
        view.size(),
        view.depth()
    ));

    let mut t = Table::new(
        "E1 — explicit view size vs depth (2^d growth)",
        &["graph", "depth", "vertices"],
    );
    for (g, d, s) in size_sweep()? {
        t.row(vec![g, d.to_string(), s.to_string()]);
    }
    out.push_str(&t.to_string());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_tree_matches_paper() {
        let v = figure1_view().unwrap();
        assert_eq!(v.size(), 7);
        assert_eq!(v.depth(), 3);
        assert_eq!(*v.mark(), 1);
    }

    #[test]
    fn sweep_grows_exponentially_on_cycles() {
        let rows = size_sweep().unwrap();
        let c6: Vec<usize> =
            rows.iter().filter(|(g, _, _)| g.starts_with("C6")).map(|&(_, _, s)| s).collect();
        // 2^d - 1 on a cycle.
        assert_eq!(c6[0], 1);
        assert_eq!(c6[3], 15);
        assert_eq!(c6[9], 1023);
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Figure 1"));
        assert!(r.contains("vertices"));
    }
}
