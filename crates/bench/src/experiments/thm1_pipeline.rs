//! E4 — the Theorem-1 decomposition end to end, compared against running
//! the randomized algorithm directly: per family, rounds and random bits
//! of (a) direct `A_R` versus (b) randomized 2-hop coloring + the
//! deterministic stage. The paper's claim is about computability, not
//! complexity — the point of the table is that the two-stage pipeline
//! *solves the same problems*, with all randomness confined to stage 1.

use anonet_algorithms::coloring::RandomizedColoring;
use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::{GreedyColoringProblem, MisProblem};
use anonet_core::pipeline::run_pipeline;
use anonet_core::SearchStrategy;
use anonet_graph::LabeledGraph;
use anonet_runtime::{run, ExecConfig, Oblivious, Problem, RngSource};

use crate::experiments::{common::tick, ExpResult, Family};
use crate::Table;

/// Measurements for one (family, problem) cell.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// Family name.
    pub family: String,
    /// Problem name.
    pub problem: &'static str,
    /// Nodes.
    pub n: usize,
    /// Rounds of the direct randomized run.
    pub direct_rounds: usize,
    /// Random bits of the direct randomized run.
    pub direct_bits: usize,
    /// Rounds of the pipeline's randomized coloring stage.
    pub stage1_rounds: usize,
    /// Random bits consumed by the pipeline (stage 1 only).
    pub pipeline_bits: usize,
    /// Quotient size seen by the deterministic stage.
    pub quotient: usize,
    /// Both runs produced valid outputs.
    pub valid: bool,
}

/// Runs the comparison across the standard families for MIS and coloring.
///
/// # Errors
///
/// Propagates pipeline/runtime errors.
pub fn rows(seed: u64) -> ExpResult<Vec<PipelineRow>> {
    let mut rows = Vec::new();
    for family in Family::standard(seed) {
        let net: LabeledGraph<()> = family.graph.with_uniform_label(());

        // MIS.
        let direct = run(
            &Oblivious(RandomizedMis::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )?;
        let pipe = run_pipeline(&RandomizedMis::new(), &net, seed, SearchStrategy::default())?;
        let valid = MisProblem.is_valid_output(&net, &direct.outputs_unwrapped())
            && MisProblem.is_valid_output(&net, &pipe.outputs);
        rows.push(PipelineRow {
            family: family.name.to_string(),
            problem: "MIS",
            n: net.node_count(),
            direct_rounds: direct.rounds(),
            direct_bits: direct.bits_consumed(),
            stage1_rounds: pipe.coloring_rounds,
            pipeline_bits: pipe.random_bits,
            quotient: pipe.deterministic.quotient_nodes,
            valid,
        });

        // Greedy coloring.
        let direct = run(
            &Oblivious(RandomizedColoring::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )?;
        let pipe = run_pipeline(&RandomizedColoring::new(), &net, seed, SearchStrategy::default())?;
        let valid = GreedyColoringProblem.is_valid_output(&net, &direct.outputs_unwrapped())
            && GreedyColoringProblem.is_valid_output(&net, &pipe.outputs);
        rows.push(PipelineRow {
            family: family.name.to_string(),
            problem: "coloring",
            n: net.node_count(),
            direct_rounds: direct.rounds(),
            direct_bits: direct.bits_consumed(),
            stage1_rounds: pipe.coloring_rounds,
            pipeline_bits: pipe.random_bits,
            quotient: pipe.deterministic.quotient_nodes,
            valid,
        });
    }
    Ok(rows)
}

/// Renders the E4 report.
///
/// # Errors
///
/// Propagates pipeline/runtime errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E4 / Theorem 1 — direct randomized A_R vs 2-hop-coloring + deterministic stage",
        &[
            "family",
            "problem",
            "n",
            "direct rounds",
            "direct bits",
            "stage1 rounds",
            "pipeline bits",
            "|V*| in stage2",
            "both valid",
        ],
    );
    for r in rows(42)? {
        t.row(vec![
            r.family,
            r.problem.to_string(),
            r.n.to_string(),
            r.direct_rounds.to_string(),
            r.direct_bits.to_string(),
            r.stage1_rounds.to_string(),
            r.pipeline_bits.to_string(),
            r.quotient.to_string(),
            tick(r.valid),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_matches_direct_solvability_everywhere() {
        for r in rows(5).unwrap() {
            assert!(r.valid, "{} / {} produced invalid output", r.family, r.problem);
            // All pipeline randomness sits in stage 1.
            assert!(r.pipeline_bits > 0);
            assert!(r.quotient >= 1 && r.quotient <= r.n);
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Theorem 1"));
        assert!(!r.contains("NO"));
    }
}
