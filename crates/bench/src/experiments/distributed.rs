//! E13 — the message-level derandomizer (extension beyond the paper):
//! Theorem 1's deterministic stage as a real protocol with
//! polynomial-size folded-view messages, given a known bound `N ≥ n`.
//! The table confirms byte-for-byte agreement with the white-box
//! derandomizer and quantifies the folded-view compression.

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_core::distributed::BoundedDerandomizer;
use anonet_core::{Derandomizer, SearchStrategy};
use anonet_graph::{generators, LabeledGraph, NodeId};
use anonet_runtime::{run, ExecConfig, Oblivious, Problem, ZeroSource};
use anonet_views::FoldedView;

use crate::experiments::{common::tick, ExpResult};
use crate::Table;

/// One instance: `(name, n, rounds, agrees with white-box, valid, folded
/// entries at final depth, unfolded tree size)`.
#[allow(clippy::type_complexity)]
pub fn rows() -> ExpResult<Vec<(String, usize, usize, bool, bool, usize, u128)>> {
    let mut cases: Vec<(String, LabeledGraph<((), u32)>)> = Vec::new();
    for n in [3usize, 6, 12] {
        let labels: Vec<((), u32)> = (0..n).map(|i| ((), (i % 3) as u32 + 1)).collect();
        cases.push((format!("C{n} colored"), generators::cycle(n)?.with_labels(labels)?));
    }
    let l = anonet_graph::lift::cyclic_cycle_lift(3, 5)?;
    cases.push(("C3 5-lift".into(), l.lift_labels(&[((), 1), ((), 2), ((), 3)])?));

    let mut out = Vec::new();
    for (name, inst) in cases {
        let n = inst.node_count();
        let strategy = SearchStrategy::Seeded { max_attempts: 64 };

        let with_bound = inst.map_labels(|l| (*l, n));
        let alg = BoundedDerandomizer::<RandomizedMis, u32>::new(RandomizedMis::new())
            .with_strategy(strategy);
        let exec = run(&Oblivious(alg), &with_bound, &mut ZeroSource, &ExecConfig::default())?;
        let white = Derandomizer::new(RandomizedMis::new()).with_strategy(strategy).run(&inst)?;

        let agrees = exec.is_successful() && exec.outputs_unwrapped() == white.outputs;
        let plain = inst.map_labels(|_| ());
        let valid =
            exec.is_successful() && MisProblem.is_valid_output(&plain, &exec.outputs_unwrapped());

        // Compression: the final gathered view, centrally recomputed.
        let folded = FoldedView::build_closed(&inst, NodeId::new(0), 2 * n + 2)?;
        out.push((
            name,
            n,
            exec.rounds(),
            agrees,
            valid,
            folded.entry_count(),
            folded.unfolded_size(),
        ));
    }
    Ok(out)
}

/// Renders the E13 report.
///
/// # Errors
///
/// Propagates protocol errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E13 — message-level derandomizer (folded views, bound N = n): MIS",
        &[
            "instance",
            "n",
            "rounds",
            "== white-box",
            "valid",
            "folded entries",
            "unfolded tree size",
        ],
    );
    for (name, n, rounds, agrees, valid, entries, unfolded) in rows()? {
        t.row(vec![
            name,
            n.to_string(),
            rounds.to_string(),
            tick(agrees),
            tick(valid),
            entries.to_string(),
            unfolded.to_string(),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_level_agrees_everywhere() {
        for (name, _, _, agrees, valid, entries, unfolded) in rows().unwrap() {
            assert!(agrees, "{name}: message-level output differs from white-box");
            assert!(valid, "{name}: invalid output");
            // The compression is real: folded entries ≪ unfolded size.
            assert!((entries as u128) < unfolded, "{name}: no compression?");
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("message-level"));
        assert!(!r.contains("NO"));
    }
}
