//! E10 — the Las-Vegas 2-hop coloring stage measured: rounds to global
//! completion, random bits consumed, and palette size, across families,
//! sizes, and seeds. This is the entire randomness budget of the
//! Theorem-1 pipeline.

use anonet_algorithms::two_hop_coloring::TwoHopColoring;
use anonet_graph::{coloring, generators, BitString, Graph};
use anonet_runtime::{run, ExecConfig, Oblivious, RngSource};

use crate::experiments::{common::tick, ExpResult, Family};
use crate::Table;

/// Aggregated measurements for one graph over several seeds.
#[derive(Clone, Debug)]
pub struct TwoHopRow {
    /// Family / instance name.
    pub name: String,
    /// Nodes.
    pub n: usize,
    /// Max degree.
    pub max_degree: usize,
    /// Mean rounds over seeds.
    pub mean_rounds: f64,
    /// Mean random bits consumed.
    pub mean_bits: f64,
    /// Mean number of distinct colors used.
    pub mean_colors: f64,
    /// All runs produced valid 2-hop colorings.
    pub all_valid: bool,
}

fn measure(name: &str, g: &Graph, seeds: u64) -> ExpResult<TwoHopRow> {
    let net = g.with_uniform_label(());
    let mut rounds = 0usize;
    let mut bits = 0usize;
    let mut colors = 0usize;
    let mut all_valid = true;
    for seed in 0..seeds {
        let exec = run(
            &Oblivious(TwoHopColoring::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )?;
        let outputs: Vec<BitString> = exec.outputs_unwrapped();
        let colored = g.with_labels(outputs)?;
        all_valid &= coloring::is_two_hop_coloring(&colored);
        rounds += exec.rounds();
        bits += exec.bits_consumed();
        colors += colored.distinct_label_count();
    }
    let k = seeds as f64;
    Ok(TwoHopRow {
        name: name.to_string(),
        n: g.node_count(),
        max_degree: g.max_degree(),
        mean_rounds: rounds as f64 / k,
        mean_bits: bits as f64 / k,
        mean_colors: colors as f64 / k,
        all_valid,
    })
}

/// Measurements over the standard families plus a cycle-size sweep.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn rows(seeds: u64) -> ExpResult<Vec<TwoHopRow>> {
    let mut out = Vec::new();
    for f in Family::standard(3) {
        out.push(measure(f.name, &f.graph, seeds)?);
    }
    for n in [8usize, 16, 32, 64] {
        out.push(measure(&format!("cycle-{n}"), &generators::cycle(n)?, seeds)?);
    }
    for d in [2usize, 3, 4] {
        out.push(measure(&format!("hypercube-{d}"), &generators::hypercube(d)?, seeds)?);
    }
    Ok(out)
}

/// Renders the E10 report.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E10 — Las-Vegas 2-hop coloring (5 seeds each)",
        &["graph", "n", "Δ", "mean rounds", "mean bits", "mean colors", "always valid"],
    );
    for r in rows(5)? {
        t.row(vec![
            r.name,
            r.n.to_string(),
            r.max_degree.to_string(),
            crate::table::f2(r.mean_rounds),
            crate::table::f2(r.mean_bits),
            crate::table::f2(r.mean_colors),
            tick(r.all_valid),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_valid_and_rounds_scale_gently() {
        for r in rows(3).unwrap() {
            assert!(r.all_valid, "{} produced an invalid coloring", r.name);
            assert!(r.mean_rounds < 120.0, "{} took {} mean rounds", r.name, r.mean_rounds);
            // The palette can't beat the 2-hop clique bound (Δ + 1 colors
            // are needed at minimum around a max-degree node).
            assert!(r.mean_colors >= (r.max_degree + 1) as f64);
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("2-hop"));
        assert!(!r.contains("NO"));
    }
}
