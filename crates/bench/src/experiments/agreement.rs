//! E9 — the faithful `A_*` versus the practical derandomizer on the
//! instances where both are feasible. Both are deterministic anonymous
//! solutions of `Π^c`; they need not pick byte-identical outputs (`A_*`
//! extends its tape prefix-by-prefix, `A_∞` minimizes globally), but both
//! must be **valid** and both must be **constant on view classes**.

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_core::astar::{run_astar, AStarConfig};
use anonet_core::{Derandomizer, SearchStrategy};
use anonet_runtime::Problem;
use anonet_views::{quotient, ViewMode};

use crate::experiments::{common::tick, thm1_faithful::tiny_instances, ExpResult};
use crate::Table;

/// Row: `(instance, A_* valid, exhaustive-derandomizer valid,
/// seeded-derandomizer valid, A_* == exhaustive, class-constant)`.
#[allow(clippy::type_complexity)]
pub fn rows() -> ExpResult<Vec<(String, bool, bool, bool, bool, bool)>> {
    let mut out = Vec::new();
    for (name, inst) in tiny_instances() {
        let plain = inst.map_labels(|_| ());

        let astar = run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default())?;
        let exhaustive = Derandomizer::new(RandomizedMis::new())
            .with_strategy(SearchStrategy::Exhaustive { max_total_bits: 24 })
            .run(&inst)?;
        let seeded = Derandomizer::new(RandomizedMis::new())
            .with_strategy(SearchStrategy::Seeded { max_attempts: 64 })
            .run(&inst)?;

        let v1 = MisProblem.is_valid_output(&plain, &astar.outputs);
        let v2 = MisProblem.is_valid_output(&plain, &exhaustive.outputs);
        let v3 = MisProblem.is_valid_output(&plain, &seeded.outputs);
        let equal = astar.outputs == exhaustive.outputs;

        // All three must be constant on view classes.
        let q = quotient(&inst, ViewMode::Portless)?;
        let class_constant =
            [&astar.outputs, &exhaustive.outputs, &seeded.outputs].iter().all(|outs| {
                inst.graph().nodes().all(|u| {
                    inst.graph()
                        .nodes()
                        .all(|v| q.project(u) != q.project(v) || outs[u.index()] == outs[v.index()])
                })
            });

        out.push((name, v1, v2, v3, equal, class_constant));
    }
    Ok(out)
}

/// Renders the E9 report.
///
/// # Errors
///
/// Propagates derandomization errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E9 — faithful A* vs practical derandomizer (MIS)",
        &[
            "instance",
            "A* valid",
            "exhaustive valid",
            "seeded valid",
            "A* == exhaustive",
            "class-constant",
        ],
    );
    for (name, v1, v2, v3, eq, cc) in rows()? {
        t.row(vec![name, tick(v1), tick(v2), tick(v3), tick(eq), tick(cc)]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_are_valid_and_class_constant() {
        for (name, v1, v2, v3, _eq, cc) in rows().unwrap() {
            assert!(v1 && v2 && v3, "{name}: some path invalid");
            assert!(cc, "{name}: outputs vary within a view class");
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("derandomizer"));
    }
}
