//! E20 — the trace toolchain measured: the cost of *causal* tracing and
//! the round trip through `anonet-trace`.
//!
//! Three overhead points on the Petersen pipeline (min of 5): the
//! un-instrumented entry point, the no-op recorder (acceptance bound
//! [`NOOP_BUDGET`] — causal ids must not make the disabled path
//! slower), and the always-on [`FlightRecorder`] ring (documented
//! budget [`FLIGHT_BUDGET`]: per event it pays one atomic claim, one
//! uncontended try-lock, and one small clone).
//!
//! Then the end-to-end toolchain gate: a smoke soak campaign streamed
//! through the JSONL recorder, parsed back by `anonet-trace`, and pushed
//! through all four analyses. The trace must be one causal tree —
//! exactly one root (`soak_campaign`), zero orphans — with every cell
//! span carrying its `tc1:` replay string, a Perfetto export that
//! re-parses, folded stacks, and a critical path rooted at the campaign
//! with scheduler queue wait attributed separately (p50/p90/p99 of the
//! queue-wait histogram are surfaced alongside).
//!
//! [`report`] writes `BENCH_trace.json` and the campaign's raw trace as
//! `BENCH_trace_campaign.jsonl` (CI feeds the latter to the
//! `anonet-trace` binary).

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonet_algorithms::mis::RandomizedMis;
use anonet_core::pipeline::{run_pipeline, run_pipeline_observed};
use anonet_core::SearchStrategy;
use anonet_graph::generators;
use anonet_obs::{names, FlightRecorder, Histogram, JsonlRecorder, SharedRecorder};
use anonet_runtime::ExecConfig;
use anonet_soak::{run_campaign_observed, CampaignConfig};
use anonet_trace::{critical, flame, perfetto, Trace};

use crate::experiments::{common::tick, ExpResult};
use crate::table::{secs, Json};
use crate::Table;

/// Seed shared with E16 so the overhead tower measures the same work.
pub const SEED: u64 = 7;

/// Acceptance bound for the no-op path: causal span ids must keep the
/// disabled recorder within 5% of the un-instrumented pipeline.
pub const NOOP_BUDGET: f64 = 1.05;

/// Documented budget for the always-on flight ring: at most 2x the
/// un-instrumented pipeline (one atomic claim + try-lock + clone per
/// event; see `anonet_obs::flight`).
pub const FLIGHT_BUDGET: f64 = 2.0;

/// The whole E20 measurement.
#[derive(Clone, Debug)]
pub struct TraceMeasurement {
    /// min-of-N wall of the un-instrumented Petersen pipeline.
    pub plain: Duration,
    /// Same path under the no-op recorder.
    pub noop: Duration,
    /// Same path under a live [`FlightRecorder`] ring.
    pub flight: Duration,
    /// Events the flight ring held after the run.
    pub flight_captured: u64,
    /// Events the ring discarded under its never-block rule.
    pub flight_dropped: u64,
    /// Spans in the campaign trace.
    pub spans: usize,
    /// Root spans (must be 1: `soak_campaign`).
    pub roots: usize,
    /// Orphaned spans (must be 0 in a live trace).
    pub orphans: usize,
    /// Attr lines without a span (must be 0 in a live trace).
    pub detached_attrs: usize,
    /// `soak_cell` spans found (smoke grid: 3).
    pub cells: usize,
    /// Every cell span carried a `tc1:` replay attribute.
    pub replay_on_cells: bool,
    /// Queue-wait histogram quantile bounds, µs (p50, p90, p99).
    pub queue_wait_quantiles: Option<(u64, u64, u64)>,
    /// `"X"` events in the Perfetto export (== spans).
    pub perfetto_events: usize,
    /// Distinct folded stacks.
    pub flame_stacks: usize,
    /// Critical-path chain length (root → leaf).
    pub critical_chain: usize,
    /// Critical-path wall, µs.
    pub critical_wall_us: u64,
    /// Queue wait attributed along the critical path, µs.
    pub critical_queue_us: u64,
    /// The campaign's raw JSONL trace (written out by [`report`]).
    pub campaign_jsonl: String,
}

impl TraceMeasurement {
    /// `noop / plain` — the cost of the disabled causal path.
    pub fn noop_overhead(&self) -> f64 {
        self.noop.as_secs_f64() / self.plain.as_secs_f64().max(f64::EPSILON)
    }

    /// `flight / plain` — the cost of the always-on ring.
    pub fn flight_overhead(&self) -> f64 {
        self.flight.as_secs_f64() / self.plain.as_secs_f64().max(f64::EPSILON)
    }
}

/// Runs the overhead tower and the traced campaign.
///
/// # Errors
///
/// Propagates pipeline/campaign/parse errors — any failure is a
/// regression.
pub fn measure() -> ExpResult<TraceMeasurement> {
    let alg = RandomizedMis::new();
    let strategy = SearchStrategy::default();
    let config = ExecConfig::default();
    let net = generators::petersen().with_uniform_label(());

    const REPS: usize = 5;
    let timed = |f: &mut dyn FnMut() -> ExpResult<()>| -> ExpResult<Duration> {
        let mut best = Duration::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            f()?;
            best = best.min(t.elapsed());
        }
        Ok(best)
    };
    let plain = timed(&mut || {
        run_pipeline(&alg, &net, SEED, strategy)?;
        Ok(())
    })?;
    let noop_rec = anonet_obs::noop();
    let noop = timed(&mut || {
        run_pipeline_observed(&alg, &net, SEED, strategy, &config, None, &noop_rec)?;
        Ok(())
    })?;
    let ring = Arc::new(FlightRecorder::new());
    let flight_rec: SharedRecorder = ring.clone();
    let flight = timed(&mut || {
        run_pipeline_observed(&alg, &net, SEED, strategy, &config, None, &flight_rec)?;
        Ok(())
    })?;

    // The traced campaign, streamed as JSONL and parsed back.
    let (jsonl, buf) = JsonlRecorder::buffered();
    let jsonl = Arc::new(jsonl);
    let shared: SharedRecorder = jsonl.clone();
    run_campaign_observed(&CampaignConfig::smoke(), &shared)?;
    drop(shared);
    drop(jsonl);
    let campaign_jsonl = buf.contents();
    let trace = Trace::parse(&campaign_jsonl).map_err(|e| e.to_string())?;

    let cells: Vec<_> = trace.spans.iter().filter(|s| s.name == names::SPAN_SOAK_CELL).collect();
    let replay_on_cells = !cells.is_empty()
        && cells.iter().all(|c| {
            c.attr("replay").and_then(Json::as_str).is_some_and(|r| r.starts_with("tc1:"))
        });

    let mut queue_wait = Histogram::new();
    for h in trace.hists.iter().filter(|h| h.name == names::BATCH_QUEUE_WAIT_US) {
        queue_wait.record(h.value);
    }

    let exported = perfetto::export(&trace);
    let reparsed = Json::parse(&exported.pretty()).map_err(|e| format!("perfetto export: {e}"))?;
    let perfetto_events = reparsed
        .get("traceEvents")
        .and_then(Json::items)
        .map(|events| {
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).count()
        })
        .unwrap_or(0);

    let report = critical::critical_path(&trace);

    Ok(TraceMeasurement {
        plain,
        noop,
        flight,
        flight_captured: ring.recorded(),
        flight_dropped: ring.dropped(),
        spans: trace.spans.len(),
        roots: trace.roots().len(),
        orphans: trace.orphans().len(),
        detached_attrs: trace.detached_attrs,
        cells: cells.len(),
        replay_on_cells,
        queue_wait_quantiles: queue_wait.quantiles(),
        perfetto_events,
        flame_stacks: flame::folded_stacks(&trace).len(),
        critical_chain: report.chain.len(),
        critical_wall_us: report.chain_wall_us,
        critical_queue_us: report.chain_queue_wait_us,
        campaign_jsonl,
    })
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Builds `BENCH_trace.json` through the shared serializer.
pub fn to_json(m: &TraceMeasurement) -> String {
    let (p50, p90, p99) = m.queue_wait_quantiles.unwrap_or((0, 0, 0));
    Json::obj([
        ("experiment", Json::str("trace")),
        ("seed", Json::from(SEED)),
        ("plain_secs", secs(m.plain)),
        ("noop_secs", secs(m.noop)),
        ("flight_secs", secs(m.flight)),
        ("noop_overhead", Json::Num(round3(m.noop_overhead()))),
        ("flight_overhead", Json::Num(round3(m.flight_overhead()))),
        ("noop_budget", Json::Num(NOOP_BUDGET)),
        ("flight_budget", Json::Num(FLIGHT_BUDGET)),
        ("noop_ok", Json::from(m.noop_overhead() < NOOP_BUDGET)),
        ("flight_ok", Json::from(m.flight_overhead() < FLIGHT_BUDGET)),
        ("flight_captured", Json::from(m.flight_captured)),
        ("flight_dropped", Json::from(m.flight_dropped)),
        ("spans", Json::from(m.spans)),
        ("roots", Json::from(m.roots)),
        ("orphans", Json::from(m.orphans)),
        ("detached_attrs", Json::from(m.detached_attrs)),
        ("cells", Json::from(m.cells)),
        ("replay_on_cells", Json::from(m.replay_on_cells)),
        (
            "queue_wait_us",
            Json::obj([
                ("p50", Json::from(p50)),
                ("p90", Json::from(p90)),
                ("p99", Json::from(p99)),
            ]),
        ),
        ("perfetto_events", Json::from(m.perfetto_events)),
        ("flame_stacks", Json::from(m.flame_stacks)),
        ("critical_chain", Json::from(m.critical_chain)),
        ("critical_wall_us", Json::from(m.critical_wall_us)),
        ("critical_queue_us", Json::from(m.critical_queue_us)),
    ])
    .pretty()
}

/// Renders the E20 report and writes `BENCH_trace.json` plus the raw
/// campaign trace `BENCH_trace_campaign.jsonl`.
///
/// # Errors
///
/// Propagates measurement errors; artifact I/O failing is an error too.
pub fn report() -> ExpResult<String> {
    let m = measure()?;

    let mut table = Table::new(
        "E20 / trace — campaign trace through the anonet-trace toolchain (smoke grid)",
        &["check", "value", "ok"],
    );
    table.row(vec!["one causal root".into(), m.roots.to_string(), tick(m.roots == 1)]);
    table.row(vec!["orphan spans".into(), m.orphans.to_string(), tick(m.orphans == 0)]);
    table.row(vec![
        "detached attrs".into(),
        m.detached_attrs.to_string(),
        tick(m.detached_attrs == 0),
    ]);
    table.row(vec!["cells w/ tc1: replay".into(), m.cells.to_string(), tick(m.replay_on_cells)]);
    table.row(vec![
        "perfetto X events".into(),
        m.perfetto_events.to_string(),
        tick(m.perfetto_events == m.spans),
    ]);
    table.row(vec![
        "critical chain".into(),
        format!("{} steps / {} us", m.critical_chain, m.critical_wall_us),
        tick(m.critical_chain >= 2),
    ]);

    std::fs::write("BENCH_trace_campaign.jsonl", &m.campaign_jsonl)?;
    std::fs::write("BENCH_trace.json", to_json(&m))?;

    let (p50, p90, p99) = m.queue_wait_quantiles.unwrap_or((0, 0, 0));
    Ok(format!(
        "{table}\n\
         petersen pipeline (min of 5): plain {plain:.3?}, noop {noop:.3?} ({noop_x:.3}x, \
         budget {noop_b}x {noop_ok}), flight-ring {flight:.3?} ({flight_x:.3}x, budget \
         {flight_b}x {flight_ok}, {cap} captured / {drop} dropped)\n\
         queue wait (us): p50 {p50}, p90 {p90}, p99 {p99}; critical-path queue share {cq} us\n\
         wrote BENCH_trace.json and BENCH_trace_campaign.jsonl ({spans} spans, {stacks} \
         folded stacks)\n",
        plain = m.plain,
        noop = m.noop,
        noop_x = m.noop_overhead(),
        noop_b = NOOP_BUDGET,
        noop_ok = tick(m.noop_overhead() < NOOP_BUDGET),
        flight = m.flight,
        flight_x = m.flight_overhead(),
        flight_b = FLIGHT_BUDGET,
        flight_ok = tick(m.flight_overhead() < FLIGHT_BUDGET),
        cap = m.flight_captured,
        drop = m.flight_dropped,
        cq = m.critical_queue_us,
        spans = m.spans,
        stacks = m.flame_stacks,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_trace_is_one_tree_and_survives_the_toolchain() {
        let m = measure().unwrap();
        assert_eq!(m.roots, 1, "exactly one causal root");
        assert_eq!(m.orphans, 0, "no spans lost their parent");
        assert_eq!(m.detached_attrs, 0);
        assert_eq!(m.cells, 3, "smoke grid is three cells");
        assert!(m.replay_on_cells, "every cell span carries its tc1: replay");
        assert_eq!(m.perfetto_events, m.spans, "export covers every span");
        assert!(m.flame_stacks >= 3);
        assert!(m.critical_chain >= 2, "chain descends below the campaign root");
        assert!(m.critical_wall_us > 0);
        let (p50, p90, p99) = m.queue_wait_quantiles.expect("jobs sampled queue wait");
        assert!(p50 <= p90 && p90 <= p99, "quantile bounds are ordered");
        assert!(m.flight_captured > 0, "the ring saw the pipeline events");
    }

    #[test]
    fn overheads_stay_bounded() {
        let m = measure().unwrap();
        // Acceptance bounds are 1.05x / 2x; min-of-N keeps scheduler
        // noise out, but leave headroom for a 1-core CI box.
        assert!(m.noop_overhead() < 1.25, "noop path {}x slower than plain", m.noop_overhead());
        assert!(
            m.flight_overhead() < 2.0 * FLIGHT_BUDGET,
            "flight ring {}x slower than plain",
            m.flight_overhead()
        );
    }

    #[test]
    fn json_parses_and_carries_the_gate_keys() {
        let m = measure().unwrap();
        let v = Json::parse(&to_json(&m)).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("trace"));
        for key in [
            "plain_secs",
            "noop_secs",
            "flight_secs",
            "noop_overhead",
            "flight_overhead",
            "noop_ok",
            "flight_ok",
            "roots",
            "orphans",
            "cells",
            "replay_on_cells",
            "perfetto_events",
            "critical_chain",
        ] {
            assert!(v.get(key).is_some(), "schema key `{key}` present");
        }
        assert!(v.get("queue_wait_us").unwrap().get("p99").unwrap().as_f64().is_some());
        assert_eq!(v.get("orphans").unwrap().as_f64(), Some(0.0));
    }
}
