//! E6 — Theorem 3 (Norris): view refinement stabilizes within `n - 1`
//! rounds, i.e. `L_n` determines `L_∞`. The table measures the actual
//! stabilization depth and the slack against the bound across families
//! and sizes — uniform paths being the classic near-tight case.

use anonet_graph::{generators, LabeledGraph};
use anonet_views::norris::norris_report;
use anonet_views::ViewMode;

use crate::experiments::{common::tick, ExpResult, Family};
use crate::Table;

/// Row: `(name, n, |V∞| classes, stabilization depth, bound n-1, holds)`.
pub fn rows() -> Vec<(String, usize, usize, usize, usize, bool)> {
    let mut out = Vec::new();
    let mut push = |name: String, g: LabeledGraph<u32>| {
        let r = norris_report(&g, ViewMode::Portless);
        out.push((name, r.nodes, r.classes, r.stabilization_depth, r.bound, r.holds()));
    };
    for f in Family::standard(11) {
        push(f.name.to_string(), f.graph.with_uniform_label(0u32));
    }
    // Size sweep on the near-tight family (uniform paths).
    for n in [4usize, 8, 16, 32, 64] {
        push(format!("path-{n}"), generators::path(n).expect("valid").with_uniform_label(0u32));
    }
    // Colored instances stabilize immediately.
    for (n, colored) in Family::figure2_tower() {
        push(format!("C{n}-colored"), colored);
    }
    out
}

/// Renders the E6 report.
///
/// # Errors
///
/// Infallible in practice; result type for harness uniformity.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E6 / Theorem 3 (Norris) — refinement stabilization depth vs the n-1 bound",
        &["graph", "n", "|V∞|", "stab. depth", "bound (n-1)", "holds"],
    );
    for (name, n, classes, depth, bound, holds) in rows() {
        t.row(vec![
            name,
            n.to_string(),
            classes.to_string(),
            depth.to_string(),
            bound.to_string(),
            tick(holds),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_always_holds() {
        for (name, _, _, depth, bound, holds) in rows() {
            assert!(holds, "{name}: depth {depth} > bound {bound}");
        }
    }

    #[test]
    fn paths_scale_linearly() {
        let rows = rows();
        let path64 = rows.iter().find(|r| r.0 == "path-64").unwrap();
        // Stabilization on a uniform path takes about n/2 rounds.
        assert!(path64.3 >= 16, "path-64 stabilized suspiciously fast: {}", path64.3);
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Norris"));
        assert!(!r.contains("NO"));
    }
}
