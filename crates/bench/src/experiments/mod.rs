//! One module per experiment; see the crate docs for the index.

pub mod agreement;
pub mod astar;
pub mod batch;
mod common;
pub mod distributed;
pub mod fig1;
pub mod fig2;
pub mod gran;
pub mod khop;
pub mod lemmas;
pub mod lifting;
pub mod montecarlo;
pub mod norris;
pub mod obs;
pub mod scale;
pub mod soak;
pub mod store;
pub mod thm1_faithful;
pub mod thm1_pipeline;
pub mod thm2;
pub mod trace;
pub mod twohop;

pub use common::Family;

/// Convenience alias: experiments bubble any failure up as a boxed error.
pub type ExpResult<T> = Result<T, Box<dyn std::error::Error>>;
