//! E7 — Lemmas 2–4 exercised adversarially on random 2-hop colored
//! products: the quotient projection validates as a factorizing map
//! (Lemma 2), the prime factor is unique across factor-related graphs
//! (Lemma 3), and views alias nodes exactly on prime graphs (Lemma 4).

use anonet_factor::prime::{is_prime, prime_factor, verify_unique_prime_factor};
use anonet_graph::{coloring, generators, lift, Graph};
use anonet_views::{Refinement, ViewMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::experiments::{common::tick, ExpResult};
use crate::Table;

/// One verified case.
#[derive(Clone, Debug)]
pub struct LemmaRow {
    /// Base graph name.
    pub base: String,
    /// Lift multiplicity.
    pub m: usize,
    /// Lemma 2: quotient projection validated as a factorizing map.
    pub lemma2: bool,
    /// Lemma 3: prime factors of product and base are isomorphic.
    pub lemma3: bool,
    /// Lemma 4 on the prime factor: views separate all nodes.
    pub lemma4: bool,
}

/// Runs the lemma checks over random lifts of several colored bases.
///
/// # Errors
///
/// Propagates lift/factor errors — a failed *check* is reported in the
/// row, not as an error.
pub fn rows(seed: u64) -> ExpResult<Vec<LemmaRow>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bases: Vec<(String, Graph)> = vec![
        ("C5".into(), generators::cycle(5)?),
        ("C7".into(), generators::cycle(7)?),
        ("Petersen".into(), generators::petersen()),
        ("torus-3x3".into(), generators::grid(3, 3, true)?),
        ("gnp-9".into(), generators::gnp_connected(9, 0.5, &mut rng)?),
    ];
    let mut out = Vec::new();
    for (name, base) in bases {
        let colored = coloring::greedy_two_hop_coloring(&base);
        for m in [2usize, 3] {
            let l = lift::random_connected_lift(&base, m, 300, &mut rng)?;
            let product = l.lift_labels(colored.labels())?;
            // Lemma 2: prime_factor internally validates all three factor
            // properties of the projection.
            let lemma2 = prime_factor(&product, ViewMode::Portless).is_ok();
            // Lemma 3: unique prime factor across the product/base pair.
            let lemma3 = verify_unique_prime_factor(&product, &colored, ViewMode::Portless).is_ok();
            // Lemma 4: on the prime factor itself, views are aliases.
            let p = prime_factor(&product, ViewMode::Portless)?;
            let r = Refinement::compute(p.graph(), ViewMode::Portless);
            let lemma4 = r.is_discrete() && is_prime(p.graph(), ViewMode::Portless);
            out.push(LemmaRow { base: name.clone(), m, lemma2, lemma3, lemma4 });
        }
    }
    Ok(out)
}

/// Renders the E7 report.
///
/// # Errors
///
/// Propagates lift/factor errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E7 / Lemmas 2–4 — random 2-hop colored lifts",
        &["base", "m", "Lemma 2 (factor map)", "Lemma 3 (unique prime)", "Lemma 4 (view alias)"],
    );
    for r in rows(23)? {
        t.row(vec![r.base, r.m.to_string(), tick(r.lemma2), tick(r.lemma3), tick(r.lemma4)]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lemmas_hold_on_random_lifts() {
        for r in rows(99).unwrap() {
            assert!(r.lemma2 && r.lemma3 && r.lemma4, "failure: {r:?}");
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Lemmas"));
        assert!(!r.contains("NO"));
    }
}
