//! E18 — the persistent derandomization store, measured: run the E15
//! lift-family workload twice against one on-disk store, as two cache
//! *lifecycles* standing in for two processes. The first ("cold") opens
//! a fresh store and pays one canonical search per base family, writing
//! through to disk; the second ("warm") reopens the store — replaying
//! the open-time segment scan a real restart would — preloads via
//! `warm()`, and must answer **every** lookup from cache, strictly
//! beating the cold hit rate while producing byte-identical outputs.
//!
//! [`report`] emits `BENCH_store.json` and, as the CI artifact, the
//! store's own accounting at `target/store-report.json` (both written
//! through the shared `anonet_obs::Json` serializer).

use std::sync::Arc;
use std::time::Duration;

use anonet_algorithms::mis::RandomizedMis;
use anonet_batch::{BatchScheduler, CacheStats, PersistentDerandCache};
use anonet_core::batch::derandomize_batch;
use anonet_core::SearchStrategy;
use anonet_graph::lift::cyclic_cycle_lift;
use anonet_graph::LabeledGraph;
use anonet_runtime::ExecConfig;

use crate::experiments::batch::MULTIPLICITIES;
use crate::experiments::{common::tick, ExpResult};
use crate::table::{secs, Json};
use crate::Table;

/// One cache lifecycle over the workload ("process" in the two-process
/// cold/warm protocol).
#[derive(Clone, Debug)]
pub struct StorePhase {
    /// `"cold"` or `"warm"`.
    pub name: &'static str,
    /// Entries preloaded by `warm()` before the run (0 for cold).
    pub warmed: usize,
    /// Wall time of the batch run.
    pub wall: Duration,
    /// Cache accounting for the run window.
    pub cache: CacheStats,
    /// Records the store recovered during this lifecycle's open.
    pub recovered_records: u64,
}

/// The E18 summary.
#[derive(Clone, Debug)]
pub struct StoreSummary {
    /// Jobs per phase.
    pub jobs: usize,
    /// The cold (first-process) phase.
    pub cold: StorePhase,
    /// The warm (second-process) phase.
    pub warm: StorePhase,
    /// Warm outputs are byte-identical to cold outputs, job by job.
    pub identical: bool,
    /// `warm.cache.hit_rate() > cold.cache.hit_rate()` — the acceptance
    /// gate.
    pub warm_strictly_better: bool,
    /// Disk-tier accounting after both phases.
    pub disk: anonet_store::StoreStats,
}

fn lift_families() -> ExpResult<Vec<LabeledGraph<((), u32)>>> {
    let mut instances = Vec::new();
    for base_n in [3usize, 4] {
        let labels: Vec<((), u32)> = (0..base_n).map(|i| ((), i as u32 + 1)).collect();
        for m in MULTIPLICITIES {
            let lift = cyclic_cycle_lift(base_n, m)?;
            instances.push(lift.lift_labels(&labels)?);
        }
    }
    Ok(instances)
}

/// One lifecycle: open the store at `dir`, optionally warm, run the
/// whole workload on the batch scheduler, flush, and report.
fn run_phase(
    dir: &std::path::Path,
    name: &'static str,
    do_warm: bool,
    graphs: &[LabeledGraph<((), u32)>],
) -> ExpResult<(StorePhase, Vec<Vec<u8>>, anonet_store::StoreStats)> {
    let pdc = PersistentDerandCache::open(dir)?;
    let opened = pdc.store_stats();
    let warmed = if do_warm { pdc.warm(usize::MAX)? } else { 0 };
    let before = pdc.cache_stats();
    let alg = RandomizedMis::new();
    let strategy = SearchStrategy::Exhaustive { max_total_bits: 24 };
    let config = ExecConfig::default();
    let scheduler = BatchScheduler::new();
    let cache = Arc::clone(pdc.cache());
    let outcome = derandomize_batch(&alg, graphs, strategy, &config, &scheduler, Some(&cache));
    let mut outputs = Vec::with_capacity(graphs.len());
    for result in &outcome.results {
        let run = result.ok().ok_or("store phase job failed")?;
        outputs.push(super::batch::run_bytes(run));
    }
    pdc.flush()?;
    let phase = StorePhase {
        name,
        warmed,
        wall: outcome.stats.wall,
        cache: pdc.cache_stats().delta_from(&before)?,
        recovered_records: opened.recovered_records,
    };
    let disk = pdc.store_stats();
    Ok((phase, outputs, disk))
}

/// Runs the two-process protocol against a throwaway store directory.
///
/// # Errors
///
/// Propagates store, lift-construction, and derandomization errors.
pub fn measure() -> ExpResult<StoreSummary> {
    let dir = std::env::temp_dir().join(format!("anonet-bench-store-{}", std::process::id()));
    // A stale directory would let the cold phase warm-start and skew the
    // measurement, so anything but "already absent" is a hard error.
    if let Err(e) = std::fs::remove_dir_all(&dir) {
        if e.kind() != std::io::ErrorKind::NotFound {
            return Err(format!("clearing scratch store {}: {e}", dir.display()).into());
        }
    }
    let graphs = lift_families()?;

    let (cold, cold_out, _) = run_phase(&dir, "cold", false, &graphs)?;
    // Second lifecycle: fresh memory, the disk tier carries everything.
    let (warm, warm_out, disk) = run_phase(&dir, "warm", true, &graphs)?;
    let summary = StoreSummary {
        jobs: graphs.len(),
        identical: cold_out == warm_out,
        warm_strictly_better: warm.cache.hit_rate() > cold.cache.hit_rate(),
        cold,
        warm,
        disk,
    };
    if let Err(e) = std::fs::remove_dir_all(&dir) {
        eprintln!("anonet-bench: could not remove scratch store {}: {e}", dir.display());
    }
    Ok(summary)
}

fn phase_json(p: &StorePhase) -> Json {
    Json::obj([
        ("name", Json::str(p.name)),
        ("warmed_entries", Json::from(p.warmed)),
        ("wall_secs", secs(p.wall)),
        ("recovered_records", Json::from(p.recovered_records)),
        ("assignment_hits", Json::from(p.cache.assignment_hits)),
        ("assignment_misses", Json::from(p.cache.assignment_misses)),
        ("disk_hits", Json::from(p.cache.disk_hits)),
        ("disk_misses", Json::from(p.cache.disk_misses)),
        ("disk_errors", Json::from(p.cache.disk_errors)),
        ("hit_rate", Json::Num((p.cache.hit_rate() * 1e4).round() / 1e4)),
    ])
}

/// Builds the `BENCH_store.json` payload.
pub fn to_json(s: &StoreSummary) -> String {
    Json::obj([
        ("experiment", Json::str("store")),
        ("jobs", Json::from(s.jobs)),
        ("cold", phase_json(&s.cold)),
        ("warm", phase_json(&s.warm)),
        ("byte_identical", Json::from(s.identical)),
        ("warm_strictly_better", Json::from(s.warm_strictly_better)),
        (
            "disk",
            Json::obj([
                ("live_records", Json::from(s.disk.live_records)),
                ("live_bytes", Json::from(s.disk.live_bytes as usize)),
                ("disk_bytes", Json::from(s.disk.disk_bytes as usize)),
                ("segments", Json::from(s.disk.segments)),
                ("appends", Json::from(s.disk.appends)),
                ("torn_truncations", Json::from(s.disk.torn_truncations)),
            ]),
        ),
    ])
    .pretty()
}

/// Renders the E18 report; writes `BENCH_store.json` and the store's
/// accounting artifact `target/store-report.json`.
///
/// # Errors
///
/// Propagates measurement errors; either JSON write failing is an error.
pub fn report() -> ExpResult<String> {
    let summary = measure()?;
    let mut t = Table::new(
        "E18 / persistent store — cold first process vs warm-started second process \
         (MIS over the C3/C4 lift families, one on-disk store)",
        &["phase", "warmed", "hits", "misses", "disk hits", "hit rate", "wall"],
    );
    for p in [&summary.cold, &summary.warm] {
        t.row(vec![
            p.name.to_string(),
            p.warmed.to_string(),
            p.cache.assignment_hits.to_string(),
            p.cache.assignment_misses.to_string(),
            p.cache.disk_hits.to_string(),
            format!("{:.1}%", 100.0 * p.cache.hit_rate()),
            format!("{:.2?}", p.wall),
        ]);
    }
    std::fs::write("BENCH_store.json", to_json(&summary))?;
    // The store's own accounting, re-measured against a fresh reopen of
    // nothing: report the final disk stats via the shared serializer.
    let disk_report = Json::obj([
        ("live_records", Json::from(summary.disk.live_records)),
        ("live_bytes", Json::from(summary.disk.live_bytes as usize)),
        ("dead_bytes", Json::from(summary.disk.dead_bytes as usize)),
        ("disk_bytes", Json::from(summary.disk.disk_bytes as usize)),
        ("segments", Json::from(summary.disk.segments)),
        ("shards", Json::from(summary.disk.shards)),
        ("appends", Json::from(summary.disk.appends)),
        ("recovered_records", Json::from(summary.disk.recovered_records)),
        ("torn_truncations", Json::from(summary.disk.torn_truncations)),
    ])
    .pretty();
    std::fs::create_dir_all("target")?;
    std::fs::write("target/store-report.json", disk_report)?;
    Ok(format!(
        "{t}\n{jobs} jobs per phase; cold {cold:.3?} at {ch:.1}% hits, \
         warm {warm:.3?} at {wh:.1}% hits (warmed {wn} entries from disk)\n\
         byte-identical outputs: {ident}; warm strictly better: {better}\n\
         wrote BENCH_store.json and target/store-report.json\n",
        t = t,
        jobs = summary.jobs,
        cold = summary.cold.wall,
        ch = 100.0 * summary.cold.cache.hit_rate(),
        warm = summary.warm.wall,
        wh = 100.0 * summary.warm.cache.hit_rate(),
        wn = summary.warm.warmed,
        ident = tick(summary.identical),
        better = tick(summary.warm_strictly_better),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_process_strictly_beats_cold() {
        let s = measure().unwrap();
        assert_eq!(s.jobs, 16);
        assert!(s.identical, "warm outputs must match cold outputs byte for byte");
        // Cold: one miss per base family (C3, C4), disk also cold.
        assert_eq!(s.cold.cache.assignment_misses, 2);
        assert_eq!(s.cold.cache.assignment_hits, 14);
        assert_eq!(s.cold.cache.disk_hits, 0);
        assert_eq!(s.cold.cache.disk_errors, 0);
        assert_eq!(s.cold.warmed, 0);
        // Warm: everything answered from the preloaded cache.
        assert!(s.warm.warmed >= 2, "warm() must preload both base families");
        assert_eq!(s.warm.cache.assignment_misses, 0);
        assert_eq!(s.warm.cache.assignment_hits, 16);
        assert_eq!(s.warm.cache.disk_errors, 0);
        // The second open replayed the first lifecycle's records.
        assert!(s.warm.recovered_records >= 4);
        assert!(s.warm_strictly_better);
        assert!(s.warm.cache.hit_rate() == 1.0);
        assert!((s.cold.cache.hit_rate() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn json_parses_and_gates_are_visible() {
        let s = measure().unwrap();
        let v = Json::parse(&to_json(&s)).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("store"));
        assert_eq!(v.get("warm_strictly_better").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("byte_identical").unwrap().as_bool(), Some(true));
        let warm = v.get("warm").unwrap();
        assert_eq!(warm.get("assignment_misses").unwrap().as_f64(), Some(0.0));
        assert!(
            warm.get("hit_rate").unwrap().as_f64().unwrap()
                > v.get("cold").unwrap().get("hit_rate").unwrap().as_f64().unwrap()
        );
    }
}
