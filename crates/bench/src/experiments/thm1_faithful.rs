//! E3 — Theorem 1 via the faithful `A_*` (the paper's Figure 3) on the
//! small instances where the doubly-exponential candidate enumeration is
//! feasible: phases to convergence versus the `2n` analysis bound.

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_core::astar::{run_astar, AStarConfig};
use anonet_graph::{generators, LabeledGraph};
use anonet_runtime::Problem;
use anonet_views::{quotient, ViewMode};

use crate::experiments::{common::tick, ExpResult};
use crate::Table;

/// The tiny 2-hop colored instances `A_*` is exercised on.
pub fn tiny_instances() -> Vec<(String, LabeledGraph<((), u32)>)> {
    vec![
        (
            "P2 colored 1,2".into(),
            generators::path(2)
                .expect("valid")
                .with_labels(vec![((), 1), ((), 2)])
                .expect("two labels"),
        ),
        (
            "P3 colored 1,2,3".into(),
            generators::path(3)
                .expect("valid")
                .with_labels(vec![((), 1), ((), 2), ((), 3)])
                .expect("three labels"),
        ),
        (
            "C3 colored 1,2,3".into(),
            generators::cycle(3)
                .expect("valid")
                .with_labels(vec![((), 1), ((), 2), ((), 3)])
                .expect("three labels"),
        ),
    ]
}

/// One row per instance: `(name, n, |V*|, phases z+1, 2·|V*| bound,
/// equivalent rounds, output valid)`.
///
/// # Errors
///
/// Propagates `A_*` errors — any failure is a reproduction regression.
#[allow(clippy::type_complexity)]
pub fn rows() -> ExpResult<Vec<(String, usize, usize, usize, usize, usize, bool)>> {
    let mut rows = Vec::new();
    for (name, inst) in tiny_instances() {
        let nq = quotient(&inst, ViewMode::Portless)?.graph().node_count();
        let run = run_astar(&RandomizedMis::new(), &MisProblem, &inst, &AStarConfig::default())?;
        let plain = inst.map_labels(|_| ());
        let valid = MisProblem.is_valid_output(&plain, &run.outputs);
        rows.push((
            name,
            inst.node_count(),
            nq,
            run.phases_used,
            2 * nq,
            run.equivalent_rounds,
            valid,
        ));
    }
    Ok(rows)
}

/// Renders the E3 report.
///
/// # Errors
///
/// Propagates `A_*` errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E3 / Theorem 1 — faithful A* (Figure 3) on tiny instances, randomized MIS as A_R",
        &["instance", "n", "|V*|", "phases (z+1)", "2n bound ref", "msg rounds", "MIS valid"],
    );
    for (name, n, q, phases, bound, rounds, valid) in rows()? {
        t.row(vec![
            name,
            n.to_string(),
            q.to_string(),
            phases.to_string(),
            bound.to_string(),
            rounds.to_string(),
            tick(valid),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astar_converges_and_is_valid_on_all_tiny_instances() {
        for (name, _, _, phases, _, _, valid) in rows().unwrap() {
            assert!(valid, "{name} produced an invalid MIS");
            assert!(phases <= 12, "{name} took {phases} phases");
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Figure 3"));
        assert!(!r.contains("NO"));
    }
}
