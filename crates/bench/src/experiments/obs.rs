//! E16 — the observability layer measured: per-phase wall-time breakdown
//! of the Theorem-1 pipeline (coloring / views / factor / search / lift
//! and the faithful `A_*`'s Update-Graph / Update-Output / Update-Bits),
//! per-round message and bit curves across graph families, and the cost
//! of observing at all — the no-op recorder must stay within 5% of the
//! un-instrumented entry point.
//!
//! [`report`] writes two artifacts: `BENCH_obs.json` (via the shared
//! [`Json`] serializer, like E15) and `BENCH_obs_trace.jsonl`, one
//! streamed JSON line per metric event of a representative run.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_algorithms::two_hop_coloring::TwoHopColoring;
use anonet_core::astar::{run_astar_observed, AStarConfig};
use anonet_core::pipeline::{run_pipeline, run_pipeline_observed};
use anonet_core::SearchStrategy;
use anonet_graph::generators;
use anonet_obs::{names, Histogram, JsonlRecorder, MemoryRecorder, MemorySnapshot, SharedRecorder};
use anonet_runtime::{run, ExecConfig, Oblivious, Problem, RngSource};

use crate::experiments::{common::tick, ExpResult, Family};
use crate::table::{secs, Json};
use crate::Table;

/// Seed shared by every run of the experiment (the curves are
/// deterministic given it).
pub const SEED: u64 = 7;

/// The families profiled (a subset of [`Family::standard`] — the issue
/// floor is three; we run four shapes: cycle, path, torus, Petersen).
pub const FAMILY_NAMES: &[&str] = &["cycle-12", "path-12", "torus-3x4", "petersen"];

/// Pipeline span leaves reported in the phase breakdown.
const PIPELINE_PHASES: &[&str] = &[
    names::SPAN_COLORING,
    names::SPAN_VIEWS,
    names::SPAN_FACTOR,
    names::SPAN_SEARCH,
    names::SPAN_LIFT,
];

/// `A_*` span leaves reported in the phase breakdown.
const ASTAR_PHASES: &[&str] =
    &[names::SPAN_UPDATE_GRAPH, names::SPAN_UPDATE_OUTPUT, names::SPAN_UPDATE_BITS];

/// One profiled family: bridged engine metrics plus per-round curves.
#[derive(Clone, Debug)]
pub struct ObsRow {
    /// Family name.
    pub family: String,
    /// Nodes.
    pub n: usize,
    /// Rounds of the randomized coloring stage.
    pub rounds: u64,
    /// Messages delivered in stage 1.
    pub messages: u64,
    /// Message payload bytes delivered in stage 1.
    pub message_bytes: u64,
    /// Random bits drawn (all of them in stage 1).
    pub bits_drawn: u64,
    /// Quotient size seen by the deterministic stage.
    pub quotient: usize,
    /// View-refinement stabilization depth.
    pub view_depth: u64,
    /// Messages delivered in each round of stage 1.
    pub messages_per_round: Vec<usize>,
    /// Active nodes per round of stage 1 — each draws one bit per round,
    /// so this *is* the bits-drawn curve.
    pub bits_per_round: Vec<usize>,
    /// The full recorder snapshot of the observed pipeline run.
    pub snapshot: MemorySnapshot,
}

/// The whole E16 measurement.
#[derive(Clone, Debug)]
pub struct ObsMeasurement {
    /// Per-family profiles.
    pub rows: Vec<ObsRow>,
    /// Phase → total wall time, aggregated across all observed runs.
    pub phases: Vec<(&'static str, Duration)>,
    /// min-of-N wall time of the un-instrumented entry point.
    pub plain: Duration,
    /// min-of-N wall time under the no-op recorder (must be ≈ `plain`).
    pub noop: Duration,
    /// min-of-N wall time under a live [`MemoryRecorder`] (informational).
    pub memory: Duration,
}

impl ObsMeasurement {
    /// `noop / plain` — the cost of threading a disabled recorder through.
    pub fn noop_overhead(&self) -> f64 {
        self.noop.as_secs_f64() / self.plain.as_secs_f64().max(f64::EPSILON)
    }

    /// `memory / plain` — the cost of actually aggregating.
    pub fn memory_overhead(&self) -> f64 {
        self.memory.as_secs_f64() / self.plain.as_secs_f64().max(f64::EPSILON)
    }
}

fn families() -> Vec<Family> {
    Family::standard(SEED).into_iter().filter(|f| FAMILY_NAMES.contains(&f.name)).collect()
}

/// Profiles the pipeline on every family, the faithful `A_*` on the
/// colored triangle, and the recorder overheads.
///
/// # Errors
///
/// Propagates pipeline/`A_*` errors — any failure is a regression.
pub fn measure() -> ExpResult<ObsMeasurement> {
    let alg = RandomizedMis::new();
    let config = ExecConfig::default();
    let strategy = SearchStrategy::default();

    // Per-family observed pipeline runs + standalone stage-1 curves.
    let mut rows = Vec::new();
    for family in families() {
        let net = family.graph.with_uniform_label(());
        let rec = Arc::new(MemoryRecorder::new());
        let shared: SharedRecorder = rec.clone();
        let pipe = run_pipeline_observed(&alg, &net, SEED, strategy, &config, None, &shared)?;
        let snapshot = rec.snapshot();

        // The curves come from re-running stage 1 alone with the same
        // seed — deterministic, so the totals match the bridged counters
        // (the test pins this down).
        let stage1 =
            run(&Oblivious(TwoHopColoring::new()), &net, &mut RngSource::seeded(SEED), &config)?;

        rows.push(ObsRow {
            family: family.name.to_string(),
            n: net.node_count(),
            rounds: snapshot.counter(names::ENGINE_ROUNDS),
            messages: snapshot.counter(names::ENGINE_MESSAGES),
            message_bytes: snapshot.counter(names::ENGINE_MESSAGE_BYTES),
            bits_drawn: snapshot.counter(names::ENGINE_BITS_DRAWN),
            quotient: pipe.deterministic.quotient_nodes,
            view_depth: snapshot
                .histogram(names::DERAND_VIEW_DEPTH)
                .and_then(|h| h.max())
                .unwrap_or(0),
            messages_per_round: stage1.messages_per_round().to_vec(),
            bits_per_round: stage1.active_per_round().to_vec(),
            snapshot,
        });
    }

    // The faithful A_* on the colored triangle, for the Update-* phases.
    let triangle = generators::cycle(3)?.with_labels(vec![((), 1u32), ((), 2), ((), 3)])?;
    let astar_rec = MemoryRecorder::new();
    let astar =
        run_astar_observed(&alg, &MisProblem, &triangle, &AStarConfig::default(), &astar_rec)?;
    let plain_triangle = triangle.map_labels(|_| ());
    if !MisProblem.is_valid_output(&plain_triangle, &astar.outputs) {
        return Err("A_* produced an invalid MIS on the triangle".into());
    }
    let astar_snap = astar_rec.snapshot();

    // Phase breakdown: pipeline leaves summed across families, plus the
    // A_* phases from the triangle run.
    let mut phases: Vec<(&'static str, Duration)> = Vec::new();
    for &leaf in PIPELINE_PHASES {
        let total = rows.iter().map(|r| r.snapshot.span_total(leaf).total).sum();
        phases.push((leaf, total));
    }
    for &leaf in ASTAR_PHASES {
        phases.push((leaf, astar_snap.span_total(leaf).total));
    }

    // Overhead: min-of-N end-to-end pipeline wall time on the Petersen
    // graph — (a) the un-instrumented entry point, (b) the same path with
    // an explicit no-op recorder, (c) a live memory recorder.
    let net = generators::petersen().with_uniform_label(());
    const REPS: usize = 5;
    let timed = |f: &mut dyn FnMut() -> ExpResult<()>| -> ExpResult<Duration> {
        let mut best = Duration::MAX;
        for _ in 0..REPS {
            let t = Instant::now();
            f()?;
            best = best.min(t.elapsed());
        }
        Ok(best)
    };
    let plain = timed(&mut || {
        run_pipeline(&alg, &net, SEED, strategy)?;
        Ok(())
    })?;
    let noop_rec = anonet_obs::noop();
    let noop = timed(&mut || {
        run_pipeline_observed(&alg, &net, SEED, strategy, &config, None, &noop_rec)?;
        Ok(())
    })?;
    let mem_rec: SharedRecorder = Arc::new(MemoryRecorder::new());
    let memory = timed(&mut || {
        run_pipeline_observed(&alg, &net, SEED, strategy, &config, None, &mem_rec)?;
        Ok(())
    })?;

    Ok(ObsMeasurement { rows, phases, plain, noop, memory })
}

/// Streams one representative observed run (Petersen) through `rec` and
/// returns the run's output count, so callers can point the JSONL stream
/// at a file or a buffer.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn trace_representative(rec: &SharedRecorder) -> ExpResult<usize> {
    let net = generators::petersen().with_uniform_label(());
    let pipe = run_pipeline_observed(
        &RandomizedMis::new(),
        &net,
        SEED,
        SearchStrategy::default(),
        &ExecConfig::default(),
        None,
        rec,
    )?;
    Ok(pipe.outputs.len())
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Histograms merged across the per-family snapshots — the quantile
/// surfacing both the JSON artifact and the report table draw from.
pub fn merged_histograms(m: &ObsMeasurement) -> BTreeMap<String, Histogram> {
    let mut merged: BTreeMap<String, Histogram> = BTreeMap::new();
    for r in &m.rows {
        for (name, h) in r.snapshot.histograms() {
            merged.entry(name.to_string()).or_default().merge(h);
        }
    }
    merged
}

/// Builds `BENCH_obs.json` through the shared serializer.
pub fn to_json(m: &ObsMeasurement, trace_lines: usize) -> String {
    let phase_breakdown = Json::obj(m.phases.iter().map(|&(name, total)| (name, secs(total))));
    let families = m.rows.iter().map(|r| {
        Json::obj([
            ("name", Json::str(&r.family)),
            ("n", Json::from(r.n)),
            ("rounds", Json::from(r.rounds)),
            ("messages", Json::from(r.messages)),
            ("message_bytes", Json::from(r.message_bytes)),
            ("bits_drawn", Json::from(r.bits_drawn)),
            ("quotient_nodes", Json::from(r.quotient)),
            ("view_depth", Json::from(r.view_depth)),
            ("messages_per_round", Json::arr(r.messages_per_round.iter().map(|&v| Json::from(v)))),
            ("bits_per_round", Json::arr(r.bits_per_round.iter().map(|&v| Json::from(v)))),
        ])
    });
    let histograms = Json::obj(merged_histograms(m).into_iter().map(|(name, h)| {
        let (p50, p90, p99) = h.quantiles().unwrap_or((0, 0, 0));
        (
            name,
            Json::obj([
                ("count", Json::from(h.count())),
                ("p50", Json::from(p50)),
                ("p90", Json::from(p90)),
                ("p99", Json::from(p99)),
                ("max", Json::from(h.max().unwrap_or(0))),
            ]),
        )
    }));
    Json::obj([
        ("experiment", Json::str("obs")),
        ("seed", Json::from(SEED)),
        ("phase_breakdown", phase_breakdown),
        ("histograms", histograms),
        ("plain_secs", secs(m.plain)),
        ("noop_secs", secs(m.noop)),
        ("memory_secs", secs(m.memory)),
        ("noop_overhead", Json::Num(round3(m.noop_overhead()))),
        ("memory_overhead", Json::Num(round3(m.memory_overhead()))),
        ("families", Json::arr(families)),
        ("trace_lines", Json::from(trace_lines)),
    ])
    .pretty()
}

/// Renders the E16 report and writes `BENCH_obs.json` plus
/// `BENCH_obs_trace.jsonl` to the working directory.
///
/// # Errors
///
/// Propagates measurement errors; artifact I/O failing is an error too.
pub fn report() -> ExpResult<String> {
    let m = measure()?;

    let mut fam_table = Table::new(
        "E16 / observability — stage-1 engine metrics per family (MIS pipeline, bridged \
         through anonet-obs)",
        &["family", "n", "rounds", "msgs", "bytes", "bits", "|V*|", "depth", "curves"],
    );
    for r in &m.rows {
        fam_table.row(vec![
            r.family.clone(),
            r.n.to_string(),
            r.rounds.to_string(),
            r.messages.to_string(),
            r.message_bytes.to_string(),
            r.bits_drawn.to_string(),
            r.quotient.to_string(),
            r.view_depth.to_string(),
            tick(
                r.messages_per_round.iter().sum::<usize>() as u64 == r.messages
                    && r.bits_per_round.iter().sum::<usize>() as u64 == r.bits_drawn,
            ),
        ]);
    }

    let mut phase_table = Table::new(
        "E16 / observability — per-phase wall-time breakdown (pipeline spans summed across \
         families; Update-* from A_* on the colored triangle)",
        &["phase", "total"],
    );
    for &(name, total) in &m.phases {
        phase_table.row(vec![name.to_string(), format!("{total:.2?}")]);
    }

    let mut hist_table = Table::new(
        "E16 / observability — histogram quantiles (bucket upper bounds, merged across \
         families)",
        &["histogram", "n", "p50", "p90", "p99", "max"],
    );
    for (name, h) in merged_histograms(&m) {
        let (p50, p90, p99) = h.quantiles().unwrap_or((0, 0, 0));
        hist_table.row(vec![
            name,
            h.count().to_string(),
            p50.to_string(),
            p90.to_string(),
            p99.to_string(),
            h.max().unwrap_or(0).to_string(),
        ]);
    }

    // Stream the representative run's metric events as JSONL.
    let jsonl = Arc::new(JsonlRecorder::create("BENCH_obs_trace.jsonl")?);
    let shared: SharedRecorder = jsonl.clone();
    trace_representative(&shared)?;
    jsonl.flush()?;
    let trace = std::fs::read_to_string("BENCH_obs_trace.jsonl")?;
    let mut trace_lines = 0usize;
    for line in trace.lines() {
        Json::parse(line).map_err(|e| format!("bad trace line: {e}"))?;
        trace_lines += 1;
    }

    let json = to_json(&m, trace_lines);
    std::fs::write("BENCH_obs.json", &json)?;

    Ok(format!(
        "{fam_table}\n{phase_table}\n{hist_table}\n\
         petersen pipeline (min of 5): plain {plain:.3?}, noop-observed {noop:.3?} \
         ({noop_x:.3}x), memory-observed {mem:.3?} ({mem_x:.3}x)\n\
         noop overhead under 5%: {ok}\n\
         wrote BENCH_obs.json and BENCH_obs_trace.jsonl ({trace_lines} trace lines)\n",
        plain = m.plain,
        noop = m.noop,
        noop_x = m.noop_overhead(),
        mem = m.memory,
        mem_x = m.memory_overhead(),
        ok = tick(m.noop_overhead() < 1.05),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_match_bridged_counters() {
        let m = measure().unwrap();
        assert_eq!(m.rows.len(), FAMILY_NAMES.len());
        for r in &m.rows {
            // The standalone stage-1 re-run is seed-deterministic, so its
            // per-round curves must sum to the bridged totals.
            assert_eq!(
                r.messages_per_round.iter().sum::<usize>() as u64,
                r.messages,
                "{}: message curve disagrees with engine.messages",
                r.family
            );
            assert_eq!(
                r.bits_per_round.iter().sum::<usize>() as u64,
                r.bits_drawn,
                "{}: bit curve disagrees with engine.bits_drawn",
                r.family
            );
            assert_eq!(r.messages_per_round.len() as u64, r.rounds);
            assert!(r.bits_drawn >= r.n as u64);
            // Depth can legitimately be 0 (colors already stable), but the
            // derandomizer must have sampled it exactly once.
            assert_eq!(
                r.snapshot.histogram(names::DERAND_VIEW_DEPTH).unwrap().count(),
                1,
                "{}: view depth not sampled",
                r.family
            );
            assert!(r.quotient >= 1 && r.quotient <= r.n);
        }
    }

    #[test]
    fn phase_breakdown_covers_all_phases() {
        let m = measure().unwrap();
        let names: Vec<&str> = m.phases.iter().map(|&(n, _)| n).collect();
        for required in
            ["coloring", "views", "factor", "update_graph", "update_output", "update_bits"]
        {
            assert!(names.contains(&required), "phase {required} missing from breakdown");
        }
        // Every observed run actually spent time coloring.
        let coloring = m.phases.iter().find(|&&(n, _)| n == "coloring").unwrap().1;
        assert!(coloring > Duration::ZERO);
    }

    #[test]
    fn noop_overhead_is_small() {
        let m = measure().unwrap();
        // The acceptance bound is 5%; min-of-N keeps scheduler noise out,
        // but leave headroom for a 1-core CI box.
        assert!(
            m.noop_overhead() < 1.25,
            "noop-observed pipeline {}x slower than plain",
            m.noop_overhead()
        );
    }

    #[test]
    fn json_parses_and_carries_the_schema() {
        let m = measure().unwrap();
        let json = to_json(&m, 123);
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("obs"));
        assert!(v.get("phase_breakdown").unwrap().get("coloring").unwrap().as_f64().is_some());
        let depth = v.get("histograms").unwrap().get("derand.view_depth").unwrap();
        assert!(depth.get("p99").unwrap().as_f64().is_some(), "quantiles surfaced");
        assert_eq!(depth.get("count").unwrap().as_f64(), Some(FAMILY_NAMES.len() as f64));
        assert!(v.get("noop_overhead").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(v.get("trace_lines").unwrap().as_f64(), Some(123.0));
        let fams = v.get("families").unwrap().items().unwrap();
        assert_eq!(fams.len(), FAMILY_NAMES.len());
        let first = &fams[0];
        assert!(first.get("messages_per_round").unwrap().items().unwrap().len() > 1);
        assert!(first.get("bits_per_round").unwrap().items().unwrap().len() > 1);
    }

    #[test]
    fn representative_trace_streams_parseable_lines() {
        let (rec, buf) = JsonlRecorder::buffered();
        let shared: SharedRecorder = Arc::new(rec);
        let outputs = trace_representative(&shared).unwrap();
        assert_eq!(outputs, 10); // Petersen
        let lines = buf.parsed_lines().unwrap();
        assert!(!lines.is_empty());
        // Span events carry paths; the pipeline root must be among them.
        assert!(lines.iter().any(|l| {
            l.get("ev").and_then(|e| e.as_str()) == Some("span")
                && l.get("path").and_then(|p| p.as_str()) == Some("pipeline")
        }));
        // Counter events carry the engine metrics.
        assert!(lines.iter().any(|l| {
            l.get("ev").and_then(|e| e.as_str()) == Some("counter")
                && l.get("name").and_then(|n| n.as_str()) == Some("engine.bits_drawn")
        }));
    }
}
