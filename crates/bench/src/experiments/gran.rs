//! E11 — GRAN membership in action (randomized MIS and coloring with
//! distributed verification) and the problem that is *not* in GRAN:
//! leader election, with the prime / non-prime dichotomy.

use anonet_algorithms::coloring::RandomizedColoring;
use anonet_algorithms::leader::{elect_leader, leader_election_solvable};
use anonet_algorithms::matching::{MatchingProblem, RandomizedMatching};
use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::verify::{accepted, MisVerifier};
use anonet_graph::generators;
use anonet_runtime::{run, ExecConfig, Oblivious, Problem, RngSource, ZeroSource};

use crate::experiments::{common::tick, ExpResult, Family};
use crate::Table;

/// GRAN-members table: `(family, n, MIS rounds, MIS verified, coloring
/// rounds, coloring palette)`.
#[allow(clippy::type_complexity)]
pub fn member_rows(seed: u64) -> ExpResult<Vec<(String, usize, usize, bool, usize, usize)>> {
    let mut out = Vec::new();
    for f in Family::standard(seed) {
        let net = f.graph.with_uniform_label(());

        let mis = run(
            &Oblivious(RandomizedMis::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )?;
        // Distributed verification — the decision side of GRAN.
        let membership = f.graph.with_labels(mis.outputs_unwrapped())?;
        let verdicts =
            run(&Oblivious(MisVerifier), &membership, &mut ZeroSource, &ExecConfig::default())?;
        let verified = accepted(&verdicts.outputs_unwrapped());

        let col = run(
            &Oblivious(RandomizedColoring::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )?;
        let palette = f.graph.with_labels(col.outputs_unwrapped())?.distinct_label_count();

        out.push((
            f.name.to_string(),
            net.node_count(),
            mis.rounds(),
            verified,
            col.rounds(),
            palette,
        ));
    }
    Ok(out)
}

/// Matching rows: `(family, n, rounds, matched nodes, valid)`.
#[allow(clippy::type_complexity)]
pub fn matching_rows(seed: u64) -> ExpResult<Vec<(String, usize, usize, usize, bool)>> {
    let mut out = Vec::new();
    for f in Family::standard(seed) {
        let colored = anonet_graph::coloring::greedy_two_hop_coloring(&f.graph);
        let exec = run(
            &Oblivious(RandomizedMatching::<u32>::new()),
            &colored,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )?;
        let outputs = exec.outputs_unwrapped();
        let valid = MatchingProblem.is_valid_output(&colored, &outputs);
        let matched = outputs.iter().filter(|o| o.is_some()).count();
        out.push((f.name.to_string(), colored.node_count(), exec.rounds(), matched, valid));
    }
    Ok(out)
}

/// Leader-election dichotomy table:
/// `(instance, prime?, election outcome)`.
pub fn leader_rows() -> ExpResult<Vec<(String, bool, String)>> {
    let mut out = Vec::new();
    let cases: Vec<(String, anonet_graph::LabeledGraph<u32>)> = vec![
        ("C5, all-distinct colors".into(), generators::cycle(5)?.with_labels((0..5).collect())?),
        ("P5 colored 1,2,3,1,2".into(), generators::path(5)?.with_labels(vec![1, 2, 3, 1, 2])?),
        (
            "C6 colored 1,2,3,1,2,3 (product!)".into(),
            generators::cycle(6)?.with_labels(vec![1, 2, 3, 1, 2, 3])?,
        ),
        ("C4 uniform".into(), generators::cycle(4)?.with_uniform_label(0u32)),
    ];
    for (name, g) in cases {
        let prime = leader_election_solvable(&g);
        let outcome = match elect_leader(&g) {
            Ok(o) => format!("leader = {}", o.leader),
            Err(e) => format!("impossible: {e}"),
        };
        out.push((name, prime, outcome));
    }
    Ok(out)
}

/// Renders the E11 report.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E11a — GRAN members: Las-Vegas MIS (distributively verified) and coloring",
        &["family", "n", "MIS rounds", "MIS verified", "coloring rounds", "palette"],
    );
    for (name, n, mr, ver, cr, pal) in member_rows(13)? {
        t.row(vec![
            name,
            n.to_string(),
            mr.to_string(),
            tick(ver),
            cr.to_string(),
            pal.to_string(),
        ]);
    }
    let mut t2 = Table::new(
        "E11b — leader election: possible iff the colored graph is prime",
        &["instance", "prime", "outcome"],
    );
    for (name, prime, outcome) in leader_rows()? {
        t2.row(vec![name, tick(prime), outcome]);
    }
    let mut t3 = Table::new(
        "E11c — Las-Vegas maximal matching (color-addressed proposals)",
        &["family", "n", "rounds", "matched", "valid"],
    );
    for (name, n, rounds, matched, valid) in matching_rows(13)? {
        t3.row(vec![name, n.to_string(), rounds.to_string(), matched.to_string(), tick(valid)]);
    }
    Ok(format!("{t}\n{t2}\n{t3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gran_members_verify() {
        for (name, _, _, verified, _, palette) in member_rows(21).unwrap() {
            assert!(verified, "{name}: MIS failed distributed verification");
            assert!(palette >= 2, "{name}: implausible palette");
        }
    }

    #[test]
    fn matching_rows_are_valid() {
        for (name, _, _, _, valid) in matching_rows(19).unwrap() {
            assert!(valid, "{name}: invalid matching");
        }
    }

    #[test]
    fn leader_dichotomy() {
        let rows = leader_rows().unwrap();
        assert!(rows[0].1 && rows[1].1, "prime cases must elect");
        assert!(!rows[2].1 && !rows[3].1, "products must fail");
        assert!(rows[2].2.contains("impossible"));
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("GRAN"));
        assert!(r.contains("leader"));
    }
}
