//! E17 — the `Update-Graph` engine measured: the memoized `A_*` fast path
//! (candidate-pool memo, interned view encodings, C2 selection indexes)
//! against the literal Figure-3 reference, on the E16/Figure-2 workload
//! (the colored C3 ⪯ C6 ⪯ C12 tower).
//!
//! E16's phase breakdown showed `update_graph` dominating the faithful
//! `A_*` by two orders of magnitude over `update_output`/`update_bits`:
//! the reference rebuilds the candidate pool and rescans C2/C3 per node
//! per phase although the pool depends only on `(p_capped, universe)` and
//! color classes share universes exactly. This experiment quantifies the
//! memo: per-instance wall times and `update_graph` span totals for both
//! engines, the pool-memo hit rate, the parallel fan-out at 2 and 8
//! threads, and — the part that matters — byte-identity of every run
//! against the reference.
//!
//! [`report`] writes `BENCH_astar.json` (shared [`Json`] serializer; the
//! `astar-perf` CI job asserts `byte_identical == true` and a nonzero
//! pool hit count from it).

use std::time::{Duration, Instant};

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_core::astar::{
    run_astar_observed, run_astar_reference_observed, run_astar_threaded, AStarConfig, AStarRun,
};
use anonet_obs::{names, MemoryRecorder};
use anonet_runtime::Problem;

use crate::experiments::{common::tick, ExpResult, Family};
use crate::table::{secs, Json};
use crate::Table;

/// Thread counts the parallel fan-out is swept over.
pub const THREAD_SWEEP: &[usize] = &[2, 8];

/// One tower instance, both engines measured.
#[derive(Clone, Debug)]
pub struct AstarRow {
    /// Cycle length.
    pub n: usize,
    /// Phases until convergence (identical for both engines).
    pub phases_used: usize,
    /// Reference engine wall time.
    pub reference_total: Duration,
    /// Fast engine wall time (sequential).
    pub fast_total: Duration,
    /// `(threads, wall time)` for the parallel fan-out.
    pub threaded: Vec<(usize, Duration)>,
    /// `update_graph` span total of the reference run.
    pub reference_update_graph: Duration,
    /// `update_graph` span total of the fast run.
    pub fast_update_graph: Duration,
    /// Pool-memo hits / misses of the fast run.
    pub pool_hits: u64,
    /// Pool-memo misses (pools actually built).
    pub pool_misses: u64,
    /// C2 index lookups / lookups that found a candidate.
    pub c2_lookups: u64,
    /// C2 lookups that selected a candidate.
    pub c2_hits: u64,
    /// Every fast/threaded run equals the reference on every field.
    pub byte_identical: bool,
}

/// The whole E17 measurement.
#[derive(Clone, Debug)]
pub struct AstarMeasurement {
    /// Per-instance rows (C3, C6, C12).
    pub rows: Vec<AstarRow>,
}

impl AstarMeasurement {
    /// Σ reference / Σ fast `update_graph` span time — the headline.
    pub fn update_graph_speedup(&self) -> f64 {
        let reference: f64 = self.rows.iter().map(|r| r.reference_update_graph.as_secs_f64()).sum();
        let fast: f64 = self.rows.iter().map(|r| r.fast_update_graph.as_secs_f64()).sum();
        reference / fast.max(f64::EPSILON)
    }

    /// Σ reference / Σ fast whole-run wall time.
    pub fn wall_speedup(&self) -> f64 {
        let reference: f64 = self.rows.iter().map(|r| r.reference_total.as_secs_f64()).sum();
        let fast: f64 = self.rows.iter().map(|r| r.fast_total.as_secs_f64()).sum();
        reference / fast.max(f64::EPSILON)
    }

    /// `true` iff every engine agreed with the reference on every field
    /// of every instance.
    pub fn byte_identical(&self) -> bool {
        self.rows.iter().all(|r| r.byte_identical)
    }

    /// Pool requests served from the memo, across all instances.
    pub fn pool_hits(&self) -> u64 {
        self.rows.iter().map(|r| r.pool_hits).sum()
    }

    /// Pools actually built, across all instances.
    pub fn pool_misses(&self) -> u64 {
        self.rows.iter().map(|r| r.pool_misses).sum()
    }

    /// `hits / (hits + misses)`.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = (self.pool_hits() + self.pool_misses()) as f64;
        self.pool_hits() as f64 / total.max(f64::EPSILON)
    }
}

/// Field-by-field equality of two runs (outputs, phases, rounds, output
/// phases, final bitstrings).
fn runs_equal<O: PartialEq>(a: &AStarRun<O>, b: &AStarRun<O>) -> bool {
    a.outputs == b.outputs
        && a.phases_used == b.phases_used
        && a.equivalent_rounds == b.equivalent_rounds
        && a.output_phase == b.output_phase
        && a.final_bits == b.final_bits
}

/// Runs both engines (and the thread sweep) over the Figure-2 tower.
///
/// # Errors
///
/// Propagates `A_*` errors and reports invalid MIS outputs — both are
/// regressions on this workload.
pub fn measure() -> ExpResult<AstarMeasurement> {
    let alg = RandomizedMis::new();
    let cfg = AStarConfig::default();
    let noop_shared = anonet_obs::noop();
    let mut rows = Vec::new();

    for (n, colored) in Family::figure2_tower() {
        let instance = colored.map_labels(|&c| ((), c));

        let reference_rec = MemoryRecorder::new();
        let start = Instant::now();
        let reference =
            run_astar_reference_observed(&alg, &MisProblem, &instance, &cfg, &reference_rec)?;
        let reference_total = start.elapsed();

        let fast_rec = MemoryRecorder::new();
        let start = Instant::now();
        let fast = run_astar_observed(&alg, &MisProblem, &instance, &cfg, &fast_rec)?;
        let fast_total = start.elapsed();

        let mut byte_identical = runs_equal(&fast, &reference);
        let mut threaded = Vec::new();
        for &threads in THREAD_SWEEP {
            let start = Instant::now();
            let par =
                run_astar_threaded(&alg, &MisProblem, &instance, &cfg, threads, &noop_shared)?;
            threaded.push((threads, start.elapsed()));
            byte_identical &= runs_equal(&par, &reference);
        }

        let plain = instance.map_labels(|_| ());
        if !MisProblem.is_valid_output(&plain, &fast.outputs) {
            return Err(format!("A_* produced an invalid MIS on C{n}").into());
        }

        let reference_snap = reference_rec.snapshot();
        let fast_snap = fast_rec.snapshot();
        rows.push(AstarRow {
            n,
            phases_used: reference.phases_used,
            reference_total,
            fast_total,
            threaded,
            reference_update_graph: reference_snap.span_total(names::SPAN_UPDATE_GRAPH).total,
            fast_update_graph: fast_snap.span_total(names::SPAN_UPDATE_GRAPH).total,
            pool_hits: fast_snap.counter(names::ASTAR_POOL_HIT),
            pool_misses: fast_snap.counter(names::ASTAR_POOL_MISS),
            c2_lookups: fast_snap.counter(names::ASTAR_C2_LOOKUPS),
            c2_hits: fast_snap.counter(names::ASTAR_C2_HITS),
            byte_identical,
        });
    }

    Ok(AstarMeasurement { rows })
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Builds `BENCH_astar.json` through the shared serializer.
pub fn to_json(m: &AstarMeasurement) -> String {
    let instances = m.rows.iter().map(|r| {
        let threaded =
            Json::obj(r.threaded.iter().map(|&(t, d)| (format!("threads_{t}_secs"), secs(d))));
        Json::obj([
            ("n", Json::from(r.n)),
            ("phases_used", Json::from(r.phases_used)),
            ("reference_secs", secs(r.reference_total)),
            ("fast_secs", secs(r.fast_total)),
            ("threaded", threaded),
            ("update_graph_reference_secs", secs(r.reference_update_graph)),
            ("update_graph_fast_secs", secs(r.fast_update_graph)),
            ("pool_hits", Json::from(r.pool_hits)),
            ("pool_misses", Json::from(r.pool_misses)),
            ("c2_lookups", Json::from(r.c2_lookups)),
            ("c2_hits", Json::from(r.c2_hits)),
            ("byte_identical", Json::from(r.byte_identical)),
        ])
    });
    Json::obj([
        ("experiment", Json::str("astar")),
        ("byte_identical", Json::from(m.byte_identical())),
        ("update_graph_speedup", Json::Num(round3(m.update_graph_speedup()))),
        ("wall_speedup", Json::Num(round3(m.wall_speedup()))),
        ("pool_hits", Json::from(m.pool_hits())),
        ("pool_misses", Json::from(m.pool_misses())),
        ("pool_hit_rate", Json::Num(round3(m.pool_hit_rate()))),
        ("instances", Json::arr(instances)),
    ])
    .pretty()
}

/// Renders the E17 report and writes `BENCH_astar.json` to the working
/// directory.
///
/// # Errors
///
/// Propagates measurement errors; artifact I/O failing is an error too.
pub fn report() -> ExpResult<String> {
    let m = measure()?;

    let mut table = Table::new(
        "E17 / Update-Graph engine — memoized A_* vs the literal Figure-3 reference \
         (MIS on the colored C3/C6/C12 tower)",
        &[
            "n",
            "phases",
            "reference",
            "fast",
            "2 threads",
            "8 threads",
            "UG ref",
            "UG fast",
            "pool h/m",
            "identical",
        ],
    );
    for r in &m.rows {
        let threaded: Vec<String> = r.threaded.iter().map(|&(_, d)| format!("{d:.2?}")).collect();
        table.row(vec![
            format!("C{}", r.n),
            r.phases_used.to_string(),
            format!("{:.2?}", r.reference_total),
            format!("{:.2?}", r.fast_total),
            threaded.first().cloned().unwrap_or_default(),
            threaded.get(1).cloned().unwrap_or_default(),
            format!("{:.2?}", r.reference_update_graph),
            format!("{:.2?}", r.fast_update_graph),
            format!("{}/{}", r.pool_hits, r.pool_misses),
            tick(r.byte_identical),
        ]);
    }

    let json = to_json(&m);
    std::fs::write("BENCH_astar.json", &json)?;

    Ok(format!(
        "{table}\n\
         update_graph speedup {ug:.2}x (wall {wall:.2}x), pool hit rate {rate:.0}% \
         ({hits} hits / {misses} builds)\n\
         update_graph speedup at least 5x: {fast_ok}\n\
         byte-identical across engines and thread counts: {ident_ok}\n\
         wrote BENCH_astar.json\n",
        ug = m.update_graph_speedup(),
        wall = m.wall_speedup(),
        rate = m.pool_hit_rate() * 100.0,
        hits = m.pool_hits(),
        misses = m.pool_misses(),
        fast_ok = tick(m.update_graph_speedup() >= 5.0),
        ident_ok = tick(m.byte_identical()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_the_memo_earns_its_keep() {
        let m = measure().unwrap();
        assert_eq!(m.rows.len(), 3);
        assert!(m.byte_identical(), "fast/threaded A_* diverged from the reference");
        assert!(m.pool_hits() > 0, "the pool memo never hit on the tower workload");
        for r in &m.rows {
            // Same-phase nodes share universes on colored cycles: at most
            // 3 color classes, so at least 3/4 of requests hit on C12.
            assert!(r.c2_lookups >= r.c2_hits);
            assert!(r.phases_used >= 1);
        }
        // C12 shares pools across its 12 nodes; the hit rate must clear
        // the 2-in-3 mark overall (C3 contributes the worst case).
        assert!(
            m.pool_hit_rate() > 0.5,
            "pool hit rate {:.2} too low for color-class workloads",
            m.pool_hit_rate()
        );
    }

    #[test]
    fn json_parses_and_carries_the_schema() {
        let m = measure().unwrap();
        let json = to_json(&m);
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("astar"));
        assert_eq!(v.get("byte_identical").unwrap().as_bool(), Some(true));
        assert!(v.get("update_graph_speedup").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("pool_hit_rate").unwrap().as_f64().unwrap() > 0.0);
        let instances = v.get("instances").unwrap().items().unwrap();
        assert_eq!(instances.len(), 3);
        let c12 = &instances[2];
        assert_eq!(c12.get("n").unwrap().as_f64(), Some(12.0));
        assert!(c12.get("threaded").unwrap().get("threads_2_secs").unwrap().as_f64().is_some());
        assert!(c12.get("pool_hits").unwrap().as_f64().unwrap() > 0.0);
    }
}
