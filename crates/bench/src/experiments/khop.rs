//! E12 — k-hop coloring for `k > 2` is **not** in GRAN (paper, Section
//! 1.2): the lifting certificate.
//!
//! The uniform `C6` is a product of `C3`. Any Las-Vegas anonymous
//! algorithm admits executions on `C6` obtained by lifting executions on
//! `C3` — in such executions, antipodal nodes (one fiber, distance 3)
//! behave identically and output **equal** colors. A 3-hop coloring of
//! `C6` requires antipodal nodes to *differ*, so the algorithm fails with
//! positive probability: not Las-Vegas. The experiment manufactures those
//! lifted executions explicitly with our own 2-hop coloring algorithm as
//! the test subject: every lifted run yields a valid **2-hop** coloring of
//! `C6` (the problem *in* GRAN survives lifting) that is **never** a
//! 3-hop coloring (the `k > 2` variant dies by this very argument).

use anonet_algorithms::two_hop_coloring::TwoHopColoring;
use anonet_factor::lifting::run_lifted_oblivious;
use anonet_factor::FactorizingMap;
use anonet_graph::{coloring, generators, BitString, LabeledGraph};
use anonet_runtime::{BitAssignment, ExecConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::experiments::{common::tick, ExpResult};
use crate::Table;

/// One lifted execution: `(seed, completed, valid 2-hop, valid 3-hop,
/// antipodal pairs equal)`.
#[allow(clippy::type_complexity)]
pub fn rows(trials: u64) -> ExpResult<Vec<(u64, bool, bool, bool, bool)>> {
    let c3: LabeledGraph<()> = generators::cycle(3)?.with_uniform_label(());
    let c6: LabeledGraph<()> = generators::cycle(6)?.with_uniform_label(());
    let map = FactorizingMap::new(&c6, &c3, vec![0, 1, 2, 0, 1, 2])?;

    let mut out = Vec::new();
    for seed in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Long random tapes for the C3 execution; lifted to C6.
        let tapes: Vec<BitString> =
            (0..3).map(|_| (0..64).map(|_| rng.gen::<bool>()).collect()).collect();
        let assignment = BitAssignment::new(tapes);
        let pair = run_lifted_oblivious(
            &TwoHopColoring::new(),
            &c6,
            &c3,
            &map,
            &assignment,
            &ExecConfig::default(),
        )?;
        let completed = pair.product.is_successful();
        let (two_hop, three_hop, antipodal_equal) = if completed {
            let colors = pair.product.outputs_unwrapped();
            let colored = c6.graph().with_labels(colors.clone())?;
            (
                coloring::is_two_hop_coloring(&colored),
                coloring::is_k_hop_coloring(&colored, 3),
                (0..3).all(|i| colors[i] == colors[i + 3]),
            )
        } else {
            (false, false, false)
        };
        out.push((seed, completed, two_hop, three_hop, antipodal_equal));
    }
    Ok(out)
}

/// Renders the E12 report.
///
/// # Errors
///
/// Propagates lifting errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E12 — k-hop coloring (k>2) ∉ GRAN: lifted executions on C6 (fiber = antipodal pairs)",
        &["seed", "completed", "valid 2-hop", "valid 3-hop", "antipodes equal"],
    );
    let rows = rows(10)?;
    for (seed, c, h2, h3, eq) in &rows {
        t.row(vec![seed.to_string(), tick(*c), tick(*h2), tick(*h3), tick(*eq)]);
    }
    let completed = rows.iter().filter(|r| r.1).count();
    let mut s = t.to_string();
    s.push_str(&format!(
        "\ncompleted lifted runs: {completed}/{}; every one is a valid 2-hop coloring and none is a 3-hop coloring — the lifting argument that excludes k-hop coloring (k > 2) from GRAN.\n",
        rows.len()
    ));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifted_runs_separate_two_hop_from_three_hop() {
        let rows = rows(8).unwrap();
        let completed: Vec<_> = rows.iter().filter(|r| r.1).collect();
        assert!(
            completed.len() >= 6,
            "too few completed lifted executions: {}/{}",
            completed.len(),
            rows.len()
        );
        for (seed, _, h2, h3, eq) in completed {
            assert!(h2, "seed {seed}: lifted output is not a 2-hop coloring");
            assert!(!h3, "seed {seed}: a lifted output was a 3-hop coloring (impossible)");
            assert!(eq, "seed {seed}: antipodal outputs differ in a lifted execution");
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("GRAN"));
    }
}
