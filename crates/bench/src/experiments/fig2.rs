//! E2 — Figure 2: the factorization tower `C12 ⪰ C6 ⪰ C3`, the quotient
//! construction recovering the prime factor, and a lift-multiplicity
//! sweep (`|V| / |V_*| = m`).

use anonet_factor::prime::prime_factor;
use anonet_factor::FactorizingMap;
use anonet_graph::{coloring, generators, iso, lift};
use anonet_views::ViewMode;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::experiments::{common::tick, ExpResult, Family};
use crate::Table;

/// Rows of the Figure-2 tower table:
/// `(n, quotient size, multiplicity, quotient ≅ C3, explicit map valid)`.
///
/// # Errors
///
/// Propagates factor/views errors (none expected — that is the theorem).
#[allow(clippy::type_complexity)]
pub fn tower_rows() -> ExpResult<Vec<(usize, usize, usize, bool, bool)>> {
    let tower = Family::figure2_tower();
    let (_, c3) = &tower[0];
    let mut rows = Vec::new();
    for (n, g) in &tower {
        let p = prime_factor(g, ViewMode::Portless)?;
        let is_c3 = iso::are_isomorphic(p.graph(), c3);
        // The hand-written factorizing map of Figure 2 must also validate.
        let images: Vec<usize> = (0..*n).map(|i| i % 3).collect();
        let explicit_ok = FactorizingMap::new(g, c3, images).is_ok();
        rows.push((*n, p.graph().node_count(), p.map().multiplicity(), is_c3, explicit_ok));
    }
    Ok(rows)
}

/// Lift-multiplicity sweep: random connected `m`-lifts of a 2-hop colored
/// base; rows `(base, m, lift nodes, quotient nodes, quotient ≅ base)`.
///
/// # Errors
///
/// Propagates lift/quotient errors.
#[allow(clippy::type_complexity)]
pub fn lift_sweep(seed: u64) -> ExpResult<Vec<(String, usize, usize, usize, bool)>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for (name, base) in [
        ("C5", generators::cycle(5)?),
        ("Petersen", generators::petersen()),
        ("K4", generators::complete(4)?),
    ] {
        let colored = coloring::greedy_two_hop_coloring(&base);
        for m in [2usize, 3, 4] {
            let l = lift::random_connected_lift(&base, m, 200, &mut rng)?;
            let product = l.lift_labels(colored.labels())?;
            let p = prime_factor(&product, ViewMode::Portless)?;
            let recovered = iso::are_isomorphic(p.graph(), &colored);
            rows.push((
                name.to_string(),
                m,
                product.node_count(),
                p.graph().node_count(),
                recovered,
            ));
        }
    }
    Ok(rows)
}

/// Renders the E2 report.
///
/// # Errors
///
/// Propagates factor/lift errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E2 / Figure 2 — the C12 ⪰ C6 ⪰ C3 tower",
        &["graph", "|V|", "|V*|", "multiplicity", "quotient ≅ C3", "explicit map valid"],
    );
    for (n, q, m, is_c3, ok) in tower_rows()? {
        t.row(vec![
            format!("C{n} (colored)"),
            n.to_string(),
            q.to_string(),
            m.to_string(),
            tick(is_c3),
            tick(ok),
        ]);
    }
    let mut t2 = Table::new(
        "E2 — random m-lifts: the quotient recovers the base (|V| = m·|V*|)",
        &["base", "m", "lift |V|", "|V*|", "quotient ≅ base"],
    );
    for (name, m, nv, q, rec) in lift_sweep(7)? {
        t2.row(vec![name, m.to_string(), nv.to_string(), q.to_string(), tick(rec)]);
    }
    Ok(format!("{t}\n{t2}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tower_collapses_to_c3() {
        for (n, q, m, is_c3, ok) in tower_rows().unwrap() {
            assert_eq!(q, 3);
            assert_eq!(m, n / 3);
            assert!(is_c3 && ok, "failure at n = {n}");
        }
    }

    #[test]
    fn lifts_recover_bases() {
        for (name, m, nv, q, rec) in lift_sweep(3).unwrap() {
            assert!(rec, "{name} m={m} not recovered");
            assert_eq!(nv, m * q);
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("Figure 2"));
        assert!(!r.contains("NO"));
    }
}
