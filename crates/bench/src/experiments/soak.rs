//! E19 — the seeded soak campaign: sweep the full (family × n × coloring
//! × lift × adversary × threads) grid through the conformance oracles
//! and the cached batch pipeline, and write the `BENCH_soak.json`
//! baseline the regression sentinel gates against.
//!
//! This entry runs exactly the `anonet-soak run` default configuration
//! (full grid, base seed `0xA11CE`, two cases per cell), so a baseline
//! committed from either path is reproducible by the other: same seeds
//! ⇒ identical report, modulo the timing fields. The sentinel half
//! lives in `anonet-soak` (`cargo run -p anonet-soak -- check`).

use anonet_soak::{baseline, report as soak_report, run_campaign, CampaignConfig};

use crate::experiments::{common::tick, ExpResult};
use crate::Table;

/// Runs the default full-grid campaign.
///
/// # Errors
///
/// Propagates campaign failures (generator, pipeline, store, batch).
pub fn measure() -> ExpResult<anonet_soak::SoakReport> {
    Ok(run_campaign(&CampaignConfig::full())?)
}

/// Renders the E19 report and writes `BENCH_soak.json`.
///
/// # Errors
///
/// Propagates measurement errors; a failed baseline write is an error.
pub fn report() -> ExpResult<String> {
    let run = measure()?;
    baseline::save(std::path::Path::new("BENCH_soak.json"), &run)?;
    let mut t = Table::new(
        "E19 / soak campaign — full grid, per-cell medians over the cached batch pipeline",
        &["cells", "cases", "oracle failures", "byte-identical", "warm hits = jobs", "wall"],
    );
    let all_identical = run.cells.iter().all(|c| c.byte_identical);
    let all_warm = run.cells.iter().all(|c| c.warm_hits == c.cases && c.warm_misses == 0);
    t.row(vec![
        run.cells.len().to_string(),
        run.cells.iter().map(|c| c.cases).sum::<u64>().to_string(),
        run.failures.len().to_string(),
        tick(all_identical),
        tick(all_warm),
        format!("{:.2?}", run.total_wall),
    ]);
    Ok(format!(
        "{t}\n{detail}wrote BENCH_soak.json (gate: cargo run -p anonet-soak -- check)\n",
        t = t,
        detail = soak_report::render_table(&run),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke-grid version of the E19 pipeline: campaign → serialize
    /// → parse → identity diff must gate clean.
    #[test]
    fn smoke_campaign_gates_clean_against_itself() {
        let run = run_campaign(&CampaignConfig::smoke()).expect("smoke campaign runs");
        assert!(run.failures.is_empty(), "oracles pass: {:?}", run.failures);
        let json = soak_report::to_json(&run);
        let parsed = baseline::from_json(std::path::Path::new("mem.json"), &json)
            .expect("own serialization parses");
        let outcome = anonet_soak::diff::diff(&parsed, &run, anonet_soak::DEFAULT_BAND);
        assert!(outcome.passed(), "identity gate: {:?}", outcome.regressions);
    }
}
