//! E21 — the million-node core measured: arena-backed view encoding
//! against the recursive [`ViewTree`] reference, the incremental
//! [`RefinementEngine`] against the retained from-scratch [`Refinement`],
//! and the node-order-commit parallel drivers at 1/2/8 threads — on
//! deterministic pseudo-randomly colored cycles from 10³ to 10⁶ nodes.
//!
//! The workload is a *beacon cycle*: every 40th node carries a beacon
//! label, the rest are blank. Refinement separates nodes by their offset
//! profile relative to the beacons, so stabilization takes ~`PERIOD / 2`
//! rounds while the stable partition never exceeds `PERIOD` classes —
//! independent of `n`. A from-scratch recomputation therefore pays the
//! full `rounds × n` cost on every relabeling, while the incremental
//! engine re-refines only the classes an update actually splits and
//! renumbers on the 40-class quotient: the regime it is built for. (A
//! *discrete* stable partition is the engine's worst case — renumbering
//! degenerates to a full trajectory replay — which is why the bounded
//! quotient matters here, not just asymptotics.) Each mutation phase
//! monotonically refines one beacon offset (all `n/40` nodes at that
//! offset get a fresh tag), mirroring a coloring stage handing refined
//! colors to the pipeline.
//!
//! Three gates, asserted by the `scale` CI job from `BENCH_scale.json`:
//!
//! * `byte_identical` — encodings and stable partitions at 1, 2, and 8
//!   threads are bit-for-bit equal (digests compared), and the arena
//!   byte-matches the recursive reference on sampled nodes.
//! * `incremental_matches` — the engine's canonical ids equal the
//!   from-scratch ids after every mutation phase.
//! * `speedup_ok` — incremental updates are ≥ 5× faster than retained
//!   from-scratch recomputation at the 10⁵ tier.
//!
//! Memory curves use retained bytes as the peak-RSS proxy (the
//! structures' own accounting; no platform RSS probing): full-history
//! [`Refinement`] vs the two-round [`BoundedRefinement`] vs the engine.
//!
//! `ANONET_SCALE_MAX_N` caps the size sweep (CI runs 10⁵; the 10⁶ tier is
//! the nightly default).

use std::time::{Duration, Instant};

use anonet_batch::{parallel_canonical_encodings, parallel_stable_partition, BatchScheduler};
use anonet_graph::{generators, Graph, LabeledGraph, NodeId};
use anonet_views::{
    canonical_view_encoding, BoundedRefinement, Refinement, RefinementEngine, ViewMode, ViewTree,
};

use crate::experiments::{common::tick, ExpResult};
use crate::table::{secs, Json};
use crate::Table;

/// Thread counts the parallel encoding/refinement sweep runs at.
pub const THREAD_SWEEP: &[usize] = &[1, 2, 8];

/// Depth of the sampled arena-vs-recursive encoding comparison.
const SAMPLE_DEPTH: usize = 3;
/// Depth of the all-nodes parallel encoding sweep (kept shallow so the
/// 10⁶ tier stays tractable).
const SWEEP_DEPTH: usize = 2;
/// Nodes sampled for the arena-vs-recursive comparison.
const SAMPLE_CAP: usize = 256;
/// Monotone relabeling phases per size.
const MUTATION_PHASES: usize = 6;
/// Beacon spacing; must divide every size tier so the coloring is
/// perfectly periodic (an uneven wrap seam would act as a unique defect
/// and blow the stable partition up to Θ(n) classes).
const PERIOD: usize = 40;

/// The default size sweep; `ANONET_SCALE_MAX_N` truncates it.
pub fn sizes() -> Vec<usize> {
    let cap = std::env::var("ANONET_SCALE_MAX_N")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1_000_000);
    [1_000usize, 10_000, 100_000, 1_000_000].into_iter().filter(|&n| n <= cap).collect()
}

/// The size-`n` workload: a cycle with a beacon label every [`PERIOD`]
/// nodes, `(beacon?, tag 0)` labels. `n` must be a multiple of the
/// period.
fn workload(n: usize) -> ExpResult<(Graph, Vec<(u32, u32)>)> {
    if n == 0 || !n.is_multiple_of(PERIOD) {
        return Err(
            format!("scale workload size {n} is not a positive multiple of {PERIOD}").into()
        );
    }
    let graph = generators::cycle(n)?;
    let labels: Vec<(u32, u32)> = (0..n).map(|i| (u32::from(i % PERIOD == 0), 0)).collect();
    Ok((graph, labels))
}

/// Applies phase `phase` (1-based): every node at beacon offset `phase`
/// gets that phase's fresh tag — a strict refinement of the previous
/// labeling (offsets `1..=phase` never re-merge), so the engine's
/// monotone fast path is what gets measured.
fn mutate(labels: &mut [(u32, u32)], phase: usize) {
    for (i, l) in labels.iter_mut().enumerate() {
        if i % PERIOD == phase {
            l.1 = phase as u32;
        }
    }
}

/// FNV-1a over a sequence of byte strings (length-prefixed, so the digest
/// commits to the per-node framing, not just the concatenation).
fn digest(encodings: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for e in encodings {
        for b in (e.len() as u64).to_be_bytes() {
            eat(b);
        }
        for &b in e {
            eat(b);
        }
    }
    h
}

/// One size tier, fully measured.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Node count.
    pub n: usize,
    /// Nodes in the arena-vs-recursive sample.
    pub sampled: usize,
    /// Arena time for the sampled depth-3 encodings.
    pub arena_encode: Duration,
    /// Recursive [`ViewTree`] time for the same sample.
    pub recursive_encode: Duration,
    /// Initial [`RefinementEngine::new`] (one full refinement).
    pub engine_build: Duration,
    /// Σ engine updates over the mutation phases.
    pub incremental_total: Duration,
    /// Σ retained from-scratch [`Refinement::compute`] over the phases.
    pub fromscratch_total: Duration,
    /// Refinement rounds the from-scratch path executed, all phases.
    pub rounds_total: usize,
    /// Stabilization depth after the final phase.
    pub stabilization_depth: usize,
    /// Stable classes after the final phase.
    pub class_count: usize,
    /// Engine retained bytes / node (peak-RSS proxy).
    pub engine_bytes_per_node: f64,
    /// Full-history retained bytes / node.
    pub full_bytes_per_node: f64,
    /// Bounded (two-round) retained bytes / node.
    pub bounded_bytes_per_node: f64,
    /// `(threads, wall)` of the all-nodes parallel encoding sweep.
    pub threaded_encode: Vec<(usize, Duration)>,
    /// Digest of the all-nodes encodings (equal at every thread count).
    pub encoding_digest: u64,
    /// Encodings and partitions identical at 1/2/8 threads, and the
    /// arena byte-matched the recursive reference on the sample.
    pub byte_identical: bool,
    /// Engine ids equaled from-scratch ids after every phase.
    pub incremental_matches: bool,
}

impl ScaleRow {
    /// From-scratch time / incremental time over the mutation phases.
    pub fn refine_speedup(&self) -> f64 {
        self.fromscratch_total.as_secs_f64()
            / self.incremental_total.as_secs_f64().max(f64::EPSILON)
    }

    /// Refinement rounds per second sustained by the from-scratch path.
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds_total as f64 / self.fromscratch_total.as_secs_f64().max(f64::EPSILON)
    }
}

/// The whole E21 measurement.
#[derive(Clone, Debug)]
pub struct ScaleMeasurement {
    /// One row per size tier, ascending.
    pub rows: Vec<ScaleRow>,
}

impl ScaleMeasurement {
    /// Every tier's identity gate held.
    pub fn byte_identical(&self) -> bool {
        self.rows.iter().all(|r| r.byte_identical)
    }

    /// Every tier's incremental ≡ from-scratch gate held.
    pub fn incremental_matches(&self) -> bool {
        self.rows.iter().all(|r| r.incremental_matches)
    }

    /// The gating tier: 10⁵ when present (the acceptance criterion),
    /// otherwise the largest measured.
    pub fn gate_row(&self) -> Option<&ScaleRow> {
        self.rows.iter().find(|r| r.n == 100_000).or_else(|| self.rows.last())
    }

    /// ≥ 5× incremental speedup at the gating tier.
    pub fn speedup_ok(&self) -> bool {
        self.gate_row().is_some_and(|r| r.refine_speedup() >= 5.0)
    }
}

/// Measures one size tier.
fn measure_size(n: usize) -> ExpResult<ScaleRow> {
    let (graph, mut labels) = workload(n)?;
    let g = LabeledGraph::new(graph.clone(), labels.clone())?;

    // Arena vs recursive reference on a deterministic node sample.
    let sampled = n.min(SAMPLE_CAP);
    let stride = (n / sampled).max(1);
    let sample: Vec<NodeId> = (0..sampled).map(|k| NodeId::new((k * stride) % n)).collect();
    let mut byte_identical = true;

    let t0 = Instant::now();
    let recursive: Vec<Vec<u8>> = sample
        .iter()
        .map(|&v| Ok(ViewTree::build(&g, v, SAMPLE_DEPTH)?.canonical_encoding()))
        .collect::<ExpResult<_>>()?;
    let recursive_encode = t0.elapsed();

    let t0 = Instant::now();
    let arena: Vec<Vec<u8>> = sample
        .iter()
        .map(|&v| Ok(canonical_view_encoding(&g, v, SAMPLE_DEPTH)?))
        .collect::<ExpResult<_>>()?;
    let arena_encode = t0.elapsed();
    byte_identical &= arena == recursive;

    // Incremental engine vs retained from-scratch over monotone phases.
    let t0 = Instant::now();
    let mut engine = RefinementEngine::new(&g, ViewMode::Portless);
    let engine_build = t0.elapsed();

    let mut incremental_total = Duration::ZERO;
    let mut fromscratch_total = Duration::ZERO;
    let mut rounds_total = 0usize;
    let mut incremental_matches = true;
    let mut full_bytes = 0usize;
    for phase in 1..=MUTATION_PHASES {
        mutate(&mut labels, phase);
        let g2 = LabeledGraph::new(graph.clone(), labels.clone())?;

        let t0 = Instant::now();
        engine.update(&g2);
        incremental_total += t0.elapsed();

        let t0 = Instant::now();
        let reference = Refinement::compute(&g2, ViewMode::Portless);
        fromscratch_total += t0.elapsed();
        // `depth + 1` key-construction passes ran: one per refining
        // round plus the pass that certified stability.
        rounds_total += reference.stabilization_depth() + 1;
        full_bytes = reference.retained_bytes();

        incremental_matches &= engine.classes() == reference.classes()
            && engine.stabilization_depth() == reference.stabilization_depth();
    }
    let g_final = LabeledGraph::new(graph.clone(), labels.clone())?;
    let bounded = BoundedRefinement::compute(&g_final, ViewMode::Portless);
    let stabilization_depth = bounded.stabilization_depth();
    let class_count = bounded.class_count();

    // Parallel sweeps: digests must agree at every thread count, and the
    // stable partition from the parallel driver must equal the bounded
    // reference.
    let mut threaded_encode = Vec::new();
    let mut encoding_digest = 0u64;
    for (i, &threads) in THREAD_SWEEP.iter().enumerate() {
        let sched = BatchScheduler::with_threads(threads);
        let t0 = Instant::now();
        let encs = parallel_canonical_encodings(&sched, &g_final, SWEEP_DEPTH)?;
        threaded_encode.push((threads, t0.elapsed()));
        let d = digest(&encs);
        drop(encs);
        if i == 0 {
            encoding_digest = d;
        } else {
            byte_identical &= d == encoding_digest;
        }
        let (classes, depth) = parallel_stable_partition(&sched, &g_final, ViewMode::Portless);
        byte_identical &= classes == bounded.classes() && depth == stabilization_depth;
    }

    Ok(ScaleRow {
        n,
        sampled,
        arena_encode,
        recursive_encode,
        engine_build,
        incremental_total,
        fromscratch_total,
        rounds_total,
        stabilization_depth,
        class_count,
        engine_bytes_per_node: engine.retained_bytes() as f64 / n as f64,
        full_bytes_per_node: full_bytes as f64 / n as f64,
        bounded_bytes_per_node: bounded.retained_bytes() as f64 / n as f64,
        threaded_encode,
        encoding_digest,
        byte_identical,
        incremental_matches,
    })
}

/// Measures the given size tiers (ascending order recommended).
///
/// # Errors
///
/// Propagates workload construction and view errors — all regressions on
/// this workload.
pub fn measure_sizes(tiers: &[usize]) -> ExpResult<ScaleMeasurement> {
    let rows = tiers.iter().map(|&n| measure_size(n)).collect::<ExpResult<_>>()?;
    Ok(ScaleMeasurement { rows })
}

/// Measures the default (env-capped) sweep.
///
/// # Errors
///
/// As [`measure_sizes`].
pub fn measure() -> ExpResult<ScaleMeasurement> {
    measure_sizes(&sizes())
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Builds `BENCH_scale.json` through the shared serializer.
pub fn to_json(m: &ScaleMeasurement) -> String {
    let tiers = m.rows.iter().map(|r| {
        let threaded = Json::obj(
            r.threaded_encode.iter().map(|&(t, d)| (format!("threads_{t}_secs"), secs(d))),
        );
        Json::obj([
            ("n", Json::from(r.n)),
            ("sampled", Json::from(r.sampled)),
            ("arena_encode_secs", secs(r.arena_encode)),
            ("recursive_encode_secs", secs(r.recursive_encode)),
            ("engine_build_secs", secs(r.engine_build)),
            ("incremental_secs", secs(r.incremental_total)),
            ("fromscratch_secs", secs(r.fromscratch_total)),
            ("refine_speedup", Json::Num(round3(r.refine_speedup()))),
            ("rounds_total", Json::from(r.rounds_total)),
            ("rounds_per_sec", Json::Num(round3(r.rounds_per_sec()))),
            ("stabilization_depth", Json::from(r.stabilization_depth)),
            ("class_count", Json::from(r.class_count)),
            ("engine_bytes_per_node", Json::Num(round3(r.engine_bytes_per_node))),
            ("full_bytes_per_node", Json::Num(round3(r.full_bytes_per_node))),
            ("bounded_bytes_per_node", Json::Num(round3(r.bounded_bytes_per_node))),
            ("threaded", threaded),
            ("encoding_digest", Json::str(format!("{:016x}", r.encoding_digest))),
            ("byte_identical", Json::from(r.byte_identical)),
            ("incremental_matches", Json::from(r.incremental_matches)),
        ])
    });
    Json::obj([
        ("experiment", Json::str("scale")),
        ("byte_identical", Json::from(m.byte_identical())),
        ("incremental_matches", Json::from(m.incremental_matches())),
        ("speedup_ok", Json::from(m.speedup_ok())),
        ("gate_speedup", Json::Num(round3(m.gate_row().map_or(0.0, ScaleRow::refine_speedup)))),
        ("tiers", Json::arr(tiers)),
    ])
    .pretty()
}

/// Renders the E21 report and writes `BENCH_scale.json` to the working
/// directory.
///
/// # Errors
///
/// Propagates measurement errors; artifact I/O failing is an error too.
pub fn report() -> ExpResult<String> {
    let m = measure()?;

    let mut table = Table::new(
        "E21 / million-node core — arena encoding, incremental refinement, and the \
         1/2/8-thread sweep on beacon cycles (period 40)",
        &[
            "n",
            "arena",
            "recursive",
            "incr (6ph)",
            "scratch (6ph)",
            "speedup",
            "rounds/s",
            "B/node eng",
            "B/node full",
            "identical",
        ],
    );
    for r in &m.rows {
        table.row(vec![
            r.n.to_string(),
            format!("{:.2?}", r.arena_encode),
            format!("{:.2?}", r.recursive_encode),
            format!("{:.2?}", r.incremental_total),
            format!("{:.2?}", r.fromscratch_total),
            format!("{:.1}x", r.refine_speedup()),
            format!("{:.0}", r.rounds_per_sec()),
            format!("{:.1}", r.engine_bytes_per_node),
            format!("{:.1}", r.full_bytes_per_node),
            tick(r.byte_identical && r.incremental_matches),
        ]);
    }

    let json = to_json(&m);
    std::fs::write("BENCH_scale.json", &json)?;

    let gate = m.gate_row().map_or(0.0, ScaleRow::refine_speedup);
    Ok(format!(
        "{table}\n\
         incremental speedup at the gating tier: {gate:.1}x (gate ≥ 5x: {fast_ok})\n\
         byte-identical encodings and partitions at 1/2/8 threads: {ident_ok}\n\
         incremental ≡ from-scratch after every phase: {incr_ok}\n\
         wrote BENCH_scale.json\n",
        fast_ok = tick(m.speedup_ok()),
        ident_ok = tick(m.byte_identical()),
        incr_ok = tick(m.incremental_matches()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tiers_pass_every_identity_gate() {
        let m = measure_sizes(&[80, 320]).unwrap();
        assert_eq!(m.rows.len(), 2);
        assert!(m.byte_identical(), "thread sweep or arena diverged");
        assert!(m.incremental_matches(), "engine diverged from from-scratch");
        for r in &m.rows {
            assert!(r.rounds_total >= MUTATION_PHASES, "each phase runs at least one pass");
            assert!(r.class_count >= PERIOD / 2, "the beacon offset structure must survive");
            assert!(r.engine_bytes_per_node > 0.0);
            // The whole point of the bounded mode: it retains less than
            // the full history on a multi-round workload.
            assert!(r.bounded_bytes_per_node <= r.full_bytes_per_node);
        }
    }

    #[test]
    fn mutations_are_monotone_for_the_engine() {
        // The engine must report zero rebuilds after the build: every
        // phase is a strict refinement on unchanged topology.
        let (graph, mut labels) = workload(200).unwrap();
        let g = LabeledGraph::new(graph.clone(), labels.clone()).unwrap();
        let mut engine = RefinementEngine::new(&g, ViewMode::Portless);
        for phase in 1..=MUTATION_PHASES {
            mutate(&mut labels, phase);
            let g2 = LabeledGraph::new(graph.clone(), labels.clone()).unwrap();
            engine.update(&g2);
        }
        assert_eq!(engine.stats().rebuilds, 1, "only the initial build");
        assert_eq!(engine.stats().incremental_updates, MUTATION_PHASES as u64);
    }

    #[test]
    fn json_parses_and_carries_the_schema() {
        let m = measure_sizes(&[80]).unwrap();
        let json = to_json(&m);
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("scale"));
        assert_eq!(v.get("byte_identical").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("incremental_matches").unwrap().as_bool(), Some(true));
        let tiers = v.get("tiers").unwrap().items().unwrap();
        assert_eq!(tiers.len(), 1);
        let t = &tiers[0];
        assert_eq!(t.get("n").unwrap().as_f64(), Some(80.0));
        assert_eq!(t.get("encoding_digest").unwrap().as_str().unwrap().len(), 16);
        assert!(t.get("threaded").unwrap().get("threads_8_secs").unwrap().as_f64().is_some());
    }

    #[test]
    fn size_sweep_respects_the_env_cap() {
        // Read-only check of the parsing contract on the default.
        let tiers = sizes();
        assert!(!tiers.is_empty());
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn digest_commits_to_framing() {
        let a = vec![vec![1u8, 2], vec![3u8]];
        let b = vec![vec![1u8], vec![2u8, 3]];
        assert_ne!(digest(&a), digest(&b));
    }
}
