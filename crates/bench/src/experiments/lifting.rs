//! E8 — Fact 1 and the lifting lemma, executed: random executions of a
//! Las-Vegas algorithm on a base graph, lifted bit-for-bit to random
//! products; states and outputs must agree node-by-node every round.

use anonet_algorithms::mis::RandomizedMis;
use anonet_factor::lifting::{run_lifted_oblivious, verify_fact1};
use anonet_factor::FactorizingMap;
use anonet_graph::{coloring, generators, lift, BitString};
use anonet_runtime::{BitAssignment, ExecConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::experiments::{common::tick, ExpResult};
use crate::Table;

/// One verified lift: `(base, m, fact1 ok, execution lift ok, rounds)`.
#[allow(clippy::type_complexity)]
pub fn rows(seed: u64) -> ExpResult<Vec<(String, usize, bool, bool, usize)>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (name, base) in [
        ("C5".to_string(), generators::cycle(5)?),
        ("Petersen".to_string(), generators::petersen()),
        ("C6".to_string(), generators::cycle(6)?),
    ] {
        let colored = coloring::greedy_two_hop_coloring(&base);
        for m in [2usize, 3] {
            let l = lift::random_connected_lift(&base, m, 300, &mut rng)?;
            let images: Vec<usize> = l.projection().iter().map(|v| v.index()).collect();

            // Fact 1 on the *colored* labeling (the interesting case).
            let colored_product = l.lift_labels(colored.labels())?;
            let colored_map = FactorizingMap::new(&colored_product, &colored, images.clone())?;
            let fact1 = verify_fact1(&colored_product, &colored, &colored_map, 4).is_ok();

            // Execution lift: the MIS algorithm takes unit inputs.
            let unit_base = colored.map_labels(|_| ());
            let unit_product = l.lift_labels(unit_base.labels())?;
            let map = FactorizingMap::new(&unit_product, &unit_base, images)?;

            // Random tapes on the base, pulled back to the product.
            let tapes: Vec<BitString> = (0..unit_base.node_count())
                .map(|_| (0..24).map(|_| rng.gen::<bool>()).collect())
                .collect();
            let assignment = BitAssignment::new(tapes);
            let pair = run_lifted_oblivious(
                &RandomizedMis::new(),
                &unit_product,
                &unit_base,
                &map,
                &assignment,
                &ExecConfig::default(),
            );
            let (ok, rounds) = match pair {
                Ok(p) => (true, p.factor.rounds()),
                Err(_) => (false, 0),
            };
            out.push((name.clone(), m, fact1, ok, rounds));
        }
    }
    Ok(out)
}

/// Renders the E8 report.
///
/// # Errors
///
/// Propagates lift construction errors.
pub fn report() -> ExpResult<String> {
    let mut t = Table::new(
        "E8 / Fact 1 + lifting lemma — executions lift along factorizing maps",
        &["base", "m", "Fact 1 (views equal)", "execution lift agrees", "rounds compared"],
    );
    for (name, m, f1, ok, rounds) in rows(31)? {
        t.row(vec![name, m.to_string(), tick(f1), tick(ok), rounds.to_string()]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifting_always_agrees() {
        for (name, m, f1, ok, _) in rows(77).unwrap() {
            assert!(f1, "Fact 1 failed on {name} m={m}");
            assert!(ok, "execution lift diverged on {name} m={m}");
        }
    }

    #[test]
    fn report_renders() {
        let r = report().unwrap();
        assert!(r.contains("lifting"));
        assert!(!r.contains("NO"));
    }
}
