//! Shared fixtures for the experiment suite.

use anonet_graph::{generators, Graph, LabeledGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A named graph family at a chosen size, used across experiment tables.
#[derive(Clone, Debug)]
pub struct Family {
    /// Display name.
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
}

impl Family {
    /// The standard experiment families, small enough to be fast and
    /// varied enough to exercise the machinery (cycle, path, torus,
    /// hypercube, Petersen, random tree, sparse G(n, p)).
    pub fn standard(seed: u64) -> Vec<Family> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        vec![
            Family { name: "cycle-12", graph: generators::cycle(12).expect("valid") },
            Family { name: "path-12", graph: generators::path(12).expect("valid") },
            Family { name: "torus-3x4", graph: generators::grid(3, 4, true).expect("valid") },
            Family { name: "hypercube-3", graph: generators::hypercube(3).expect("valid") },
            Family { name: "petersen", graph: generators::petersen() },
            Family { name: "wheel-8", graph: generators::wheel(8).expect("valid") },
            Family {
                name: "circulant-9",
                graph: generators::circulant(9, &[1, 2]).expect("valid"),
            },
            Family {
                name: "tree-12",
                graph: generators::random_tree(12, &mut rng).expect("valid"),
            },
            Family {
                name: "gnp-12",
                graph: generators::gnp_connected(12, 0.25, &mut rng).expect("valid"),
            },
        ]
    }

    /// The Figure-2 tower: colored C3, C6, C12 (labels 1, 2, 3 repeating).
    pub fn figure2_tower() -> Vec<(usize, LabeledGraph<u32>)> {
        [3usize, 6, 12]
            .into_iter()
            .map(|n| {
                let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + 1).collect();
                (n, generators::cycle(n).expect("valid").with_labels(labels).expect("valid"))
            })
            .collect()
    }
}

/// Marks a boolean as a table cell.
pub fn tick(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_families_are_connected() {
        for f in Family::standard(1) {
            assert!(f.graph.is_connected(), "{} disconnected", f.name);
        }
    }

    #[test]
    fn figure2_tower_shapes() {
        let tower = Family::figure2_tower();
        assert_eq!(tower.len(), 3);
        assert_eq!(tower[2].1.node_count(), 12);
    }
}
