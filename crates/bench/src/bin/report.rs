//! Experiment report runner: regenerates every figure/theorem artifact.
//!
//! ```text
//! cargo run -p anonet-bench --bin report            # all experiments
//! cargo run -p anonet-bench --bin report -- fig2    # one experiment
//! cargo run -p anonet-bench --bin report -- list    # list ids
//! ```

use std::process::ExitCode;

use anonet_bench::{run_experiment, EXPERIMENT_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = match args.first().map(String::as_str) {
        None | Some("all") => EXPERIMENT_IDS.to_vec(),
        Some("list") => {
            for id in EXPERIMENT_IDS {
                println!("{id}");
            }
            return ExitCode::SUCCESS;
        }
        Some(id) => vec![id],
    };

    let mut failures = 0usize;
    for id in ids {
        println!("=== experiment {id} ===\n");
        match run_experiment(id) {
            Ok(rendered) => println!("{rendered}"),
            Err(e) => {
                eprintln!("experiment {id} FAILED: {e}\n");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) failed");
        ExitCode::FAILURE
    }
}
