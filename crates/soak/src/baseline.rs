//! Reading and writing `BENCH_soak.json` baselines.
//!
//! A baseline is just a serialized [`SoakReport`] (see
//! [`report::to_json`](crate::report::to_json)); this module parses one
//! back into the in-memory form so the sentinel can diff two reports
//! with ordinary field access instead of poking at JSON trees. Schema
//! problems surface as typed [`SoakError::Baseline`] values naming the
//! offending file and key.

use std::path::Path;
use std::time::Duration;

use anonet_obs::Json;

use crate::campaign::{CellReport, OracleFailure, SoakReport};
use crate::report::{to_json, SCHEMA_VERSION};
use crate::{Result, SoakError};

fn bad(path: &Path, detail: impl Into<String>) -> SoakError {
    SoakError::Baseline { path: path.to_path_buf(), detail: detail.into() }
}

fn req<'a>(path: &Path, json: &'a Json, key: &str) -> Result<&'a Json> {
    json.get(key).ok_or_else(|| bad(path, format!("missing key `{key}`")))
}

fn num(path: &Path, json: &Json, key: &str) -> Result<f64> {
    req(path, json, key)?.as_f64().ok_or_else(|| bad(path, format!("key `{key}` is not a number")))
}

fn uint(path: &Path, json: &Json, key: &str) -> Result<u64> {
    let v = num(path, json, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(bad(path, format!("key `{key}` is not a non-negative integer ({v})")));
    }
    Ok(v as u64)
}

fn boolean(path: &Path, json: &Json, key: &str) -> Result<bool> {
    req(path, json, key)?
        .as_bool()
        .ok_or_else(|| bad(path, format!("key `{key}` is not a boolean")))
}

fn string(path: &Path, json: &Json, key: &str) -> Result<String> {
    Ok(req(path, json, key)?
        .as_str()
        .ok_or_else(|| bad(path, format!("key `{key}` is not a string")))?
        .to_string())
}

fn duration(path: &Path, json: &Json, key: &str) -> Result<Duration> {
    let v = num(path, json, key)?;
    Duration::try_from_secs_f64(v)
        .map_err(|e| bad(path, format!("key `{key}` is not a duration ({v}): {e}")))
}

fn cell(path: &Path, json: &Json) -> Result<CellReport> {
    Ok(CellReport {
        id: string(path, json, "id")?,
        replay: string(path, json, "replay")?,
        cases: uint(path, json, "cases")?,
        quotient_nodes: uint(path, json, "quotient_nodes")?,
        byte_identical: boolean(path, json, "byte_identical")?,
        cold_hits: uint(path, json, "cold_hits")?,
        cold_misses: uint(path, json, "cold_misses")?,
        warm_hits: uint(path, json, "warm_hits")?,
        warm_misses: uint(path, json, "warm_misses")?,
        disk_hits: uint(path, json, "disk_hits")?,
        messages: uint(path, json, "messages")?,
        message_bytes: uint(path, json, "message_bytes")?,
        wall: duration(path, json, "wall_secs")?,
        warm_wall: duration(path, json, "warm_wall_secs")?,
        job_wall_median: duration(path, json, "job_wall_median_secs")?,
        job_wall_p95: duration(path, json, "job_wall_p95_secs")?,
        update_graph: duration(path, json, "update_graph_secs")?,
    })
}

fn failure(path: &Path, json: &Json) -> Result<OracleFailure> {
    Ok(OracleFailure {
        cell: string(path, json, "cell")?,
        replay: string(path, json, "replay")?,
        oracle: string(path, json, "oracle")?,
        detail: string(path, json, "detail")?,
    })
}

/// Parses a `BENCH_soak.json` tree back into a [`SoakReport`].
///
/// # Errors
///
/// [`SoakError::Baseline`] naming the missing/mistyped key, or a schema
/// version this build does not understand.
pub fn from_json(path: &Path, json: &Json) -> Result<SoakReport> {
    let version = uint(path, json, "schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(bad(
            path,
            format!("schema version {version} (this build reads {SCHEMA_VERSION})"),
        ));
    }
    let cells = req(path, json, "cells")?
        .items()
        .ok_or_else(|| bad(path, "key `cells` is not an array"))?
        .iter()
        .map(|c| cell(path, c))
        .collect::<Result<Vec<_>>>()?;
    let skipped = req(path, json, "skipped_cells")?
        .items()
        .ok_or_else(|| bad(path, "key `skipped_cells` is not an array"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| bad(path, "`skipped_cells` entry is not a string"))
        })
        .collect::<Result<Vec<_>>>()?;
    let failures = req(path, json, "oracle_failures")?
        .items()
        .ok_or_else(|| bad(path, "key `oracle_failures` is not an array"))?
        .iter()
        .map(|f| failure(path, f))
        .collect::<Result<Vec<_>>>()?;
    let totals = req(path, json, "totals")?;
    let budget_secs = match req(path, json, "budget_secs")? {
        Json::Null => None,
        other => Some(
            other
                .as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .ok_or_else(|| bad(path, "key `budget_secs` is not null or an integer"))?
                as u64,
        ),
    };
    Ok(SoakReport {
        base_seed: uint(path, json, "base_seed")?,
        reps: uint(path, json, "reps_per_cell")?,
        budget_secs,
        truncated: boolean(path, json, "truncated")?,
        cells,
        skipped,
        failures,
        total_wall: duration(path, totals, "wall_secs")?,
    })
}

/// Loads and parses a baseline file.
///
/// # Errors
///
/// [`SoakError::Io`] if the file cannot be read, [`SoakError::Baseline`]
/// if it is not valid JSON or does not match the schema. Callers that
/// want "missing baseline is fine" check [`Path::exists`] first (the
/// CLI does).
pub fn load(path: &Path) -> Result<SoakReport> {
    let text = std::fs::read_to_string(path).map_err(|source| SoakError::Io {
        context: format!("reading baseline {}", path.display()),
        source,
    })?;
    let json = Json::parse(&text).map_err(|e| bad(path, format!("invalid JSON: {e}")))?;
    from_json(path, &json)
}

/// Serializes a report and writes it to `path`.
///
/// # Errors
///
/// [`SoakError::Io`] on write failure.
pub fn save(path: &Path, report: &SoakReport) -> Result<()> {
    let mut text = to_json(report).pretty();
    text.push('\n');
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|source| SoakError::Io {
                context: format!("creating {}", parent.display()),
                source,
            })?;
        }
    }
    std::fs::write(path, text).map_err(|source| SoakError::Io {
        context: format!("writing report {}", path.display()),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn report() -> SoakReport {
        SoakReport {
            base_seed: 0xA11CE,
            reps: 2,
            budget_secs: Some(120),
            truncated: true,
            cells: vec![CellReport {
                id: "family=cycle,n=3,color=greedy,lift=1,adv=fair,threads=1".into(),
                replay: "tc1:family=cycle,n=3,seed=9,color=greedy,lift=1,adv=fair".into(),
                cases: 2,
                quotient_nodes: 3,
                byte_identical: true,
                cold_hits: 1,
                cold_misses: 1,
                warm_hits: 2,
                warm_misses: 0,
                disk_hits: 1,
                messages: 18,
                message_bytes: 144,
                wall: Duration::from_micros(4200),
                warm_wall: Duration::from_micros(1100),
                job_wall_median: Duration::from_micros(400),
                job_wall_p95: Duration::from_micros(900),
                update_graph: Duration::from_micros(150),
            }],
            skipped: vec!["family=gnp,n=7,color=pipeline,lift=2,adv=shuffled,threads=2".into()],
            failures: vec![OracleFailure {
                cell: "family=cycle,n=3,color=greedy,lift=1,adv=fair,threads=1".into(),
                replay: "tc1:family=cycle,n=3,seed=9,color=greedy,lift=1,adv=fair".into(),
                oracle: "renumbering-invariance".into(),
                detail: "outputs differ at node 2".into(),
            }],
            total_wall: Duration::from_micros(9900),
        }
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let path =
            std::env::temp_dir().join(format!("anonet-soak-baseline-{}.json", std::process::id()));
        let original = report();
        save(&path, &original).expect("save succeeds");
        let loaded = load(&path).expect("load succeeds");
        assert_eq!(loaded, original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schema_violations_name_the_key() {
        let path = Path::new("x.json");
        let mut json = to_json(&report());
        // Drop `warm_hits` from the only cell.
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "cells" {
                    if let Json::Arr(cells) = v {
                        if let Some(Json::Obj(cell)) = cells.first_mut() {
                            cell.retain(|(k, _)| k != "warm_hits");
                        }
                    }
                }
            }
        }
        let err = from_json(path, &json).expect_err("missing key must fail");
        assert!(err.to_string().contains("warm_hits"), "got: {err}");

        let err = from_json(path, &Json::obj([("schema_version", Json::Num(99.0))]))
            .expect_err("future schema must fail");
        assert!(err.to_string().contains("schema version 99"), "got: {err}");
    }
}
