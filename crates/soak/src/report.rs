//! `BENCH_soak.json`: the machine-readable serialization of a
//! [`SoakReport`] through the workspace's shared [`Json`] tree.
//!
//! The schema is versioned ([`SCHEMA_VERSION`]) and split the same way
//! [`CellReport`](crate::CellReport) is: configuration-determined fields
//! (ids, replay strings, case counts, hit counts, byte-identity,
//! messages, bytes) that the sentinel exact-matches, and timing fields
//! (`*_secs`) that it noise-bands. Seconds are rounded to microseconds so
//! a report survives a serialize/parse round trip bit-for-bit.

use anonet_obs::Json;

use crate::campaign::{median, percentile, CellReport, OracleFailure, SoakReport};

/// Version stamp written to (and required of) every `BENCH_soak.json`.
pub const SCHEMA_VERSION: u64 = 1;

/// The experiment id stamped into the report, matching the bench
/// registry's `E19`.
pub const EXPERIMENT: &str = "E19-soak";

/// Seconds with microsecond resolution — stable under JSON round trips.
pub(crate) fn secs(d: std::time::Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e6
}

fn cell_json(c: &CellReport) -> Json {
    Json::obj([
        ("id", Json::str(&c.id)),
        ("replay", Json::str(&c.replay)),
        ("cases", Json::Num(c.cases as f64)),
        ("quotient_nodes", Json::Num(c.quotient_nodes as f64)),
        ("byte_identical", Json::Bool(c.byte_identical)),
        ("cold_hits", Json::Num(c.cold_hits as f64)),
        ("cold_misses", Json::Num(c.cold_misses as f64)),
        ("warm_hits", Json::Num(c.warm_hits as f64)),
        ("warm_misses", Json::Num(c.warm_misses as f64)),
        ("disk_hits", Json::Num(c.disk_hits as f64)),
        ("messages", Json::Num(c.messages as f64)),
        ("message_bytes", Json::Num(c.message_bytes as f64)),
        ("hit_rate_warm", Json::Num(hit_rate(c.warm_hits, c.warm_misses))),
        ("wall_secs", Json::Num(secs(c.wall))),
        ("warm_wall_secs", Json::Num(secs(c.warm_wall))),
        ("job_wall_median_secs", Json::Num(secs(c.job_wall_median))),
        ("job_wall_p95_secs", Json::Num(secs(c.job_wall_p95))),
        ("update_graph_secs", Json::Num(secs(c.update_graph))),
    ])
}

fn failure_json(f: &OracleFailure) -> Json {
    Json::obj([
        ("cell", Json::str(&f.cell)),
        ("replay", Json::str(&f.replay)),
        ("oracle", Json::str(&f.oracle)),
        ("detail", Json::str(&f.detail)),
    ])
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        return 0.0;
    }
    ((hits as f64 / total as f64) * 1e6).round() / 1e6
}

/// Serializes a report to the versioned `BENCH_soak.json` schema.
pub fn to_json(report: &SoakReport) -> Json {
    let walls: Vec<std::time::Duration> = report.cells.iter().map(|c| c.wall).collect();
    let totals = Json::obj([
        ("cells", Json::Num(report.cells.len() as f64)),
        ("cases", Json::Num(report.cells.iter().map(|c| c.cases).sum::<u64>() as f64)),
        ("wall_secs", Json::Num(secs(report.total_wall))),
        ("cell_wall_median_secs", Json::Num(secs(median(&walls)))),
        ("cell_wall_p95_secs", Json::Num(secs(percentile(&walls, 95)))),
    ]);
    Json::obj([
        ("experiment", Json::str(EXPERIMENT)),
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("base_seed", Json::Num(report.base_seed as f64)),
        ("reps_per_cell", Json::Num(report.reps as f64)),
        ("budget_secs", report.budget_secs.map_or(Json::Null, |b| Json::Num(b as f64))),
        ("truncated", Json::Bool(report.truncated)),
        ("totals", totals),
        ("cells", Json::arr(report.cells.iter().map(cell_json))),
        ("skipped_cells", Json::arr(report.skipped.iter().map(Json::str))),
        ("oracle_failures", Json::arr(report.failures.iter().map(failure_json))),
    ])
}

/// Renders the human-readable summary table printed after a run.
pub fn render_table(report: &SoakReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "soak campaign: {} cells, {} cases, {:.2}s wall{}\n",
        report.cells.len(),
        report.cells.iter().map(|c| c.cases).sum::<u64>(),
        report.total_wall.as_secs_f64(),
        if report.truncated {
            format!(" (budget hit; {} cells skipped)", report.skipped.len())
        } else {
            String::new()
        },
    ));
    out.push_str(
        "cell                                                         wall_ms  warm  byte  msgs\n",
    );
    for c in &report.cells {
        out.push_str(&format!(
            "{:<60} {:>7.2} {:>5} {:>5} {:>5}\n",
            c.id,
            c.wall.as_secs_f64() * 1e3,
            c.warm_hits,
            if c.byte_identical { "ok" } else { "DIFF" },
            c.messages,
        ));
    }
    if !report.failures.is_empty() {
        out.push_str(&format!("oracle FAILURES: {}\n", report.failures.len()));
        for f in &report.failures {
            out.push_str(&format!(
                "  {} [{}]: {} (replay: {})\n",
                f.cell, f.oracle, f.detail, f.replay
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cell(id: &str, wall_ms: u64) -> CellReport {
        CellReport {
            id: id.into(),
            replay: "tc1:family=cycle,n=3,seed=7,color=greedy,lift=1,adv=fair".into(),
            cases: 2,
            quotient_nodes: 3,
            byte_identical: true,
            cold_hits: 1,
            cold_misses: 1,
            warm_hits: 2,
            warm_misses: 0,
            disk_hits: 0,
            messages: 12,
            message_bytes: 96,
            wall: Duration::from_millis(wall_ms),
            warm_wall: Duration::from_millis(wall_ms),
            job_wall_median: Duration::from_micros(400),
            job_wall_p95: Duration::from_micros(900),
            update_graph: Duration::from_micros(150),
        }
    }

    fn report() -> SoakReport {
        SoakReport {
            base_seed: 0xA11CE,
            reps: 2,
            budget_secs: None,
            truncated: false,
            cells: vec![cell("a", 4), cell("b", 6)],
            skipped: vec![],
            failures: vec![],
            total_wall: Duration::from_millis(11),
        }
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let json = to_json(&report());
        let text = json.pretty();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back.get("schema_version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("experiment").and_then(Json::as_str), Some(EXPERIMENT));
        let cells = back.get("cells").and_then(Json::items).expect("cells array");
        let first = cells.first().expect("first cell");
        assert_eq!(first.get("warm_hits").and_then(Json::as_f64), Some(2.0));
        assert_eq!(first.get("byte_identical").and_then(Json::as_bool), Some(true));
        assert_eq!(first.get("wall_secs").and_then(Json::as_f64), Some(0.004));
        assert_eq!(back.get("budget_secs"), Some(&Json::Null));
    }

    #[test]
    fn seconds_are_microsecond_stable() {
        assert_eq!(secs(Duration::from_nanos(1_234_567_890)), 1.234568);
        assert_eq!(secs(Duration::ZERO), 0.0);
    }

    #[test]
    fn table_mentions_every_cell() {
        let table = render_table(&report());
        assert!(table.contains("2 cells"));
        assert!(table.contains('a'));
        assert!(table.contains('b'));
    }
}
