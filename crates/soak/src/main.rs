//! `anonet-soak` — run seeded soak campaigns and gate fresh runs against
//! the committed `BENCH_soak.json` baseline.
//!
//! ```text
//! anonet-soak run   [--grid full|smoke] [--seed N] [--reps N]
//!                   [--budget-secs N] [--out PATH] [--trace PATH]
//! anonet-soak check [--baseline PATH] [--current PATH] [--band-pct P]
//!                   [--bench-dir DIR] [run options for the fresh run]
//! ```
//!
//! `run` executes a campaign and writes the report. `check` loads (or
//! freshly runs) a current report, diffs it against the baseline, checks
//! the committed headline `BENCH_*.json` invariants, and exits 1 on any
//! regression — listing each regressed cell with its `tc1:…` replay
//! string. A missing baseline degrades to a note (exit 0) so the gate
//! can be adopted before a baseline is committed. Exit 2 is an
//! operational error (bad flags, unreadable files, campaign failure).

use std::path::PathBuf;
use std::process::ExitCode;

use anonet_soak::{baseline, diff, report, CampaignConfig, SoakError};
use anonet_testkit::CampaignGrid;

const DEFAULT_BASELINE: &str = "BENCH_soak.json";
const DEFAULT_CURRENT_OUT: &str = "target/BENCH_soak_current.json";

struct Options {
    grid: CampaignGrid,
    seed: u64,
    reps: usize,
    budget_secs: Option<u64>,
    out: PathBuf,
    baseline: PathBuf,
    current: Option<PathBuf>,
    band: f64,
    bench_dir: PathBuf,
    trace: Option<PathBuf>,
}

impl Options {
    fn defaults() -> Options {
        let full = CampaignConfig::full();
        Options {
            grid: full.grid,
            seed: full.base_seed,
            reps: full.reps,
            budget_secs: None,
            out: PathBuf::from(DEFAULT_BASELINE),
            baseline: PathBuf::from(DEFAULT_BASELINE),
            current: None,
            band: diff::DEFAULT_BAND,
            bench_dir: PathBuf::from("."),
            trace: None,
        }
    }

    fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            grid: self.grid.clone(),
            base_seed: self.seed,
            reps: self.reps,
            budget: self.budget_secs.map(std::time::Duration::from_secs),
        }
    }
}

fn usage() -> String {
    "usage: anonet-soak run   [--grid full|smoke] [--seed N] [--reps N] \
     [--budget-secs N] [--out PATH] [--trace PATH]\n       anonet-soak check [--baseline PATH] \
     [--current PATH] [--band-pct P] [--bench-dir DIR] [run options]"
        .to_string()
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse().map_err(|_| format!("{flag}: cannot parse `{raw}`"))
}

fn parse(args: &mut std::env::Args, opts: &mut Options) -> Result<(), String> {
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grid" => {
                let name: String = parse_value("--grid", args.next())?;
                opts.grid = match name.as_str() {
                    "full" => CampaignGrid::full(),
                    "smoke" => CampaignGrid::smoke(),
                    other => return Err(format!("--grid: unknown grid `{other}`")),
                };
            }
            "--seed" => opts.seed = parse_value("--seed", args.next())?,
            "--reps" => opts.reps = parse_value("--reps", args.next())?,
            "--budget-secs" => {
                opts.budget_secs = Some(parse_value("--budget-secs", args.next())?);
            }
            "--out" => opts.out = PathBuf::from(parse_value::<String>("--out", args.next())?),
            "--baseline" => {
                opts.baseline = PathBuf::from(parse_value::<String>("--baseline", args.next())?);
            }
            "--current" => {
                opts.current =
                    Some(PathBuf::from(parse_value::<String>("--current", args.next())?));
            }
            "--band-pct" => {
                let pct: f64 = parse_value("--band-pct", args.next())?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("--band-pct: {pct} is not in 0..=100"));
                }
                opts.band = pct / 100.0;
            }
            "--bench-dir" => {
                opts.bench_dir = PathBuf::from(parse_value::<String>("--bench-dir", args.next())?);
            }
            "--trace" => {
                opts.trace = Some(PathBuf::from(parse_value::<String>("--trace", args.next())?));
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<ExitCode, SoakError> {
    let run = match &opts.trace {
        Some(path) => {
            // Stream the campaign's causal trace as JSONL for the
            // `anonet-trace` toolchain; a panic mid-campaign still
            // flushes what was buffered.
            let io_err = |e| SoakError::Io {
                context: format!("writing trace {}", path.display()),
                source: e,
            };
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
            let jsonl =
                std::sync::Arc::new(anonet_obs::JsonlRecorder::create(path).map_err(io_err)?);
            jsonl.flush_on_panic();
            let shared: anonet_obs::SharedRecorder = jsonl.clone();
            let run = anonet_soak::run_campaign_observed(&opts.campaign_config(), &shared)?;
            jsonl.flush().map_err(io_err)?;
            println!("trace written to {}", path.display());
            run
        }
        None => anonet_soak::run_campaign(&opts.campaign_config())?,
    };
    baseline::save(&opts.out, &run)?;
    print!("{}", report::render_table(&run));
    println!("report written to {}", opts.out.display());
    if run.failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("{} oracle failure(s); see replay strings above", run.failures.len());
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_check(opts: &Options) -> Result<ExitCode, SoakError> {
    let current = match &opts.current {
        Some(path) => baseline::load(path)?,
        None => {
            let run = anonet_soak::run_campaign(&opts.campaign_config())?;
            baseline::save(PathBuf::from(DEFAULT_CURRENT_OUT).as_path(), &run)?;
            println!("fresh run written to {DEFAULT_CURRENT_OUT}");
            run
        }
    };

    let mut outcome = diff::DiffOutcome::default();
    if opts.baseline.exists() {
        let base = baseline::load(&opts.baseline)?;
        outcome = diff::diff(&current, &base, opts.band);
    } else {
        outcome.notes.push(format!(
            "baseline {} absent; soak diff skipped (commit one with `anonet-soak run`)",
            opts.baseline.display()
        ));
    }
    let headlines = diff::check_headlines(&opts.bench_dir);
    outcome.regressions.extend(headlines.regressions);
    outcome.notes.extend(headlines.notes);

    print!("{}", diff::render(&outcome));
    Ok(if outcome.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let command = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let mut opts = Options::defaults();
    if let Err(e) = parse(&mut args, &mut opts) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "run" => cmd_run(&opts),
        "check" => cmd_check(&opts),
        other => {
            eprintln!("error: unknown command `{other}`\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
