//! The perf-regression sentinel: diff a fresh [`SoakReport`] against the
//! committed baseline.
//!
//! Two kinds of comparison, matching the two kinds of cell field:
//!
//! * **Exact invariants** — `cases`, `quotient_nodes`, `byte_identical`,
//!   `warm_hits`, `warm_misses`, `messages`, `message_bytes`. These are
//!   pure functions of the campaign config (the warm pass answers every
//!   job from cache at any thread count), so any difference is a real
//!   behavior change, not noise, and fails the check outright. The cold
//!   hit/miss split is deliberately *not* gated: concurrent cold misses
//!   of one fresh quotient race benignly at `threads > 1`.
//! * **Timing** — absolute walls are machine-dependent, so the sentinel
//!   compares each cell's *share* of the campaign's total cell wall,
//!   which cancels machine speed. A cell whose share moved by more than
//!   the noise band (default ±15%, relative) **and** by more than an
//!   absolute slack ([`SHARE_SLACK`] points of the total) in either
//!   direction is flagged; cells below a floor share (0.5%) are skipped
//!   as pure noise. The two-sided test catches speedups too — a cell
//!   getting "faster" because it stopped doing its work is a bug.
//!
//! Every regression carries the cell's `tc1:…` replay string, so a
//! failing gate is one `cargo run -p anonet-testkit -- replay <tc1:…>`
//! away from a local reproduction. Structural drift (cells added or
//! removed by a grid change, a missing baseline) is reported as *notes*,
//! not failures — the gate degrades gracefully while the baseline is
//! regenerated.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use anonet_obs::Json;

use crate::campaign::{CellReport, SoakReport};

/// Default relative noise band for wall-share comparisons (±15%).
pub const DEFAULT_BAND: f64 = 0.15;

/// Cells whose baseline wall share is below this floor are too small to
/// measure reliably; their timing is not gated.
pub const MIN_SHARE: f64 = 0.005;

/// Absolute share slack: a cell's share must also move by at least this
/// many points of the total before it is flagged. Sub-millisecond cells
/// jitter by tens of percent *relative* from pure timer noise — and
/// cells near 1% of the total have been observed to double from a
/// single scheduler stall — so a real regression (one cell suddenly
/// dominating the campaign) must move absolute share far past this.
pub const SHARE_SLACK: f64 = 0.02;

/// One gated difference between the current report and the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Cell coordinate id (empty for campaign-level regressions such as
    /// oracle failures carry their cell instead).
    pub cell: String,
    /// `tc1:…` replay string reproducing the cell.
    pub replay: String,
    /// The field that regressed (e.g. `warm_hits`, `wall_share`).
    pub field: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} -> {} ({}) [replay: {}]",
            self.cell, self.field, self.baseline, self.current, self.detail, self.replay
        )
    }
}

/// The sentinel's verdict: regressions fail the gate, notes do not.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffOutcome {
    /// Gated differences; non-empty fails the check.
    pub regressions: Vec<Regression>,
    /// Structural observations that do not fail the gate (new cells,
    /// missing cells, absent headline files).
    pub notes: Vec<String>,
}

impl DiffOutcome {
    /// `true` when the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    fn push(
        &mut self,
        cell: &CellReport,
        field: &str,
        baseline: impl fmt::Display,
        current: impl fmt::Display,
        detail: impl Into<String>,
    ) {
        self.regressions.push(Regression {
            cell: cell.id.clone(),
            replay: cell.replay.clone(),
            field: field.into(),
            baseline: baseline.to_string(),
            current: current.to_string(),
            detail: detail.into(),
        });
    }
}

fn exact(
    out: &mut DiffOutcome,
    cur: &CellReport,
    field: &str,
    base_v: impl fmt::Display + PartialEq<u64> + Copy,
    cur_v: u64,
) {
    if base_v != cur_v {
        out.push(cur, field, base_v, cur_v, "exact-match invariant changed");
    }
}

/// Diffs `current` against `baseline` under the given relative noise
/// `band` for wall shares. Oracle failures in `current` always regress.
pub fn diff(current: &SoakReport, baseline: &SoakReport, band: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();

    if current.base_seed != baseline.base_seed || current.reps != baseline.reps {
        out.notes.push(format!(
            "config drift: baseline seed/reps = {:#x}/{}, current = {:#x}/{} — exact \
             invariants are only meaningful on matching configs",
            baseline.base_seed, baseline.reps, current.base_seed, current.reps
        ));
    }

    for f in &current.failures {
        out.regressions.push(Regression {
            cell: f.cell.clone(),
            replay: f.replay.clone(),
            field: format!("oracle:{}", f.oracle),
            baseline: "pass".into(),
            current: "fail".into(),
            detail: f.detail.clone(),
        });
    }

    let base_cells: BTreeMap<&str, &CellReport> =
        baseline.cells.iter().map(|c| (c.id.as_str(), c)).collect();
    let cur_cells: BTreeMap<&str, &CellReport> =
        current.cells.iter().map(|c| (c.id.as_str(), c)).collect();

    for id in base_cells.keys() {
        if !cur_cells.contains_key(*id) {
            out.notes.push(format!("cell `{id}` is in the baseline but not the current run"));
        }
    }
    for id in cur_cells.keys() {
        if !base_cells.contains_key(*id) {
            out.notes.push(format!("cell `{id}` is new (not in the baseline)"));
        }
    }

    // Wall shares over the *common* cells only, so a truncated or
    // re-gridded run compares apples to apples.
    let common: Vec<(&CellReport, &CellReport)> = baseline
        .cells
        .iter()
        .filter_map(|b| cur_cells.get(b.id.as_str()).map(|c| (b, *c)))
        .collect();
    let base_total: f64 = common.iter().map(|(b, _)| b.warm_wall.as_secs_f64()).sum();
    let cur_total: f64 = common.iter().map(|(_, c)| c.warm_wall.as_secs_f64()).sum();

    for (base, cur) in &common {
        exact(&mut out, cur, "cases", base.cases, cur.cases);
        exact(&mut out, cur, "quotient_nodes", base.quotient_nodes, cur.quotient_nodes);
        exact(&mut out, cur, "warm_hits", base.warm_hits, cur.warm_hits);
        exact(&mut out, cur, "warm_misses", base.warm_misses, cur.warm_misses);
        exact(&mut out, cur, "messages", base.messages, cur.messages);
        exact(&mut out, cur, "message_bytes", base.message_bytes, cur.message_bytes);
        if base.byte_identical != cur.byte_identical {
            out.push(
                cur,
                "byte_identical",
                base.byte_identical,
                cur.byte_identical,
                "warm replay no longer reproduces the cold pass byte for byte",
            );
        }

        if base_total <= 0.0 || cur_total <= 0.0 {
            continue;
        }
        let base_share = base.warm_wall.as_secs_f64() / base_total;
        let cur_share = cur.warm_wall.as_secs_f64() / cur_total;
        if base_share < MIN_SHARE {
            continue;
        }
        let deviation = (cur_share - base_share) / base_share;
        if deviation.abs() > band && (cur_share - base_share).abs() > SHARE_SLACK {
            out.push(
                cur,
                "wall_share",
                format!("{:.4}", base_share),
                format!("{:.4}", cur_share),
                format!(
                    "cell's share of campaign wall moved {:+.1}% (band ±{:.0}%)",
                    deviation * 100.0,
                    band * 100.0
                ),
            );
        }
    }

    out
}

/// Checks the committed headline `BENCH_*.json` invariants alongside the
/// soak diff: flags that must stay `true` forever regardless of machine
/// speed. Absent or unreadable files become notes (the repo may predate
/// an experiment), `false` flags become regressions.
pub fn check_headlines(bench_dir: &Path) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let headlines: [(&str, &[&str]); 4] = [
        ("BENCH_batch.json", &["byte_identical"]),
        ("BENCH_astar.json", &["byte_identical"]),
        ("BENCH_store.json", &["byte_identical", "warm_strictly_better"]),
        ("BENCH_scale.json", &["byte_identical", "incremental_matches", "speedup_ok"]),
    ];
    for (file, flags) in headlines {
        let path = bench_dir.join(file);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                out.notes.push(format!("headline {} absent; skipped", path.display()));
                continue;
            }
        };
        let json = match Json::parse(&text) {
            Ok(json) => json,
            Err(e) => {
                out.notes.push(format!("headline {} unreadable ({e}); skipped", path.display()));
                continue;
            }
        };
        for flag in flags {
            match json.get(flag).and_then(Json::as_bool) {
                Some(true) => {}
                Some(false) => out.regressions.push(Regression {
                    cell: file.into(),
                    replay: format!("cargo run -p anonet-bench -- {file}"),
                    field: (*flag).into(),
                    baseline: "true".into(),
                    current: "false".into(),
                    detail: "committed headline invariant is false".into(),
                }),
                None => out
                    .notes
                    .push(format!("headline {} has no boolean `{flag}`; skipped", path.display())),
            }
        }
    }
    out
}

/// Renders an outcome for terminal output.
pub fn render(outcome: &DiffOutcome) -> String {
    let mut out = String::new();
    for note in &outcome.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    if outcome.passed() {
        out.push_str("soak gate: PASS\n");
    } else {
        out.push_str(&format!("soak gate: FAIL ({} regressions)\n", outcome.regressions.len()));
        for r in &outcome.regressions {
            out.push_str(&format!("  {r}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::OracleFailure;
    use std::time::Duration;

    /// Four equal-wall cells: each holds a 25% share, so perturbing one
    /// by +30% moves shares well past the 15% band while the untouched
    /// cells stay inside it.
    fn fixture() -> SoakReport {
        let cell = |i: usize| CellReport {
            id: format!("family=cycle,n={},color=greedy,lift=1,adv=fair,threads=1", i + 3),
            replay: format!("tc1:family=cycle,n={},seed={},color=greedy,lift=1,adv=fair", i + 3, i),
            cases: 2,
            quotient_nodes: 3,
            byte_identical: true,
            cold_hits: 1,
            cold_misses: 1,
            warm_hits: 2,
            warm_misses: 0,
            disk_hits: 0,
            messages: 10 + i as u64,
            message_bytes: 80 + i as u64,
            wall: Duration::from_millis(10),
            warm_wall: Duration::from_millis(10),
            job_wall_median: Duration::from_millis(5),
            job_wall_p95: Duration::from_millis(9),
            update_graph: Duration::from_micros(100),
        };
        SoakReport {
            base_seed: 0xA11CE,
            reps: 2,
            budget_secs: None,
            truncated: false,
            cells: (0..4).map(cell).collect(),
            skipped: vec![],
            failures: vec![],
            total_wall: Duration::from_millis(40),
        }
    }

    #[test]
    fn identity_diff_passes_clean() {
        let report = fixture();
        let outcome = diff(&report, &report, DEFAULT_BAND);
        assert!(outcome.passed(), "identity diff must pass: {:?}", outcome.regressions);
        assert!(outcome.notes.is_empty(), "identity diff must be silent: {:?}", outcome.notes);
    }

    /// Satellite check: a +30% wall perturbation on one cell is flagged
    /// as exactly that cell, with its replay string, and nothing else.
    #[test]
    fn sentinel_flags_exactly_the_perturbed_cell() {
        let baseline = fixture();
        let mut current = fixture();
        current.cells[2].warm_wall = Duration::from_millis(13); // +30%
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.regressions.len(),
            1,
            "only the perturbed cell: {:?}",
            outcome.regressions
        );
        let r = &outcome.regressions[0];
        assert_eq!(r.cell, baseline.cells[2].id);
        assert_eq!(r.replay, baseline.cells[2].replay);
        assert_eq!(r.replay, "tc1:family=cycle,n=5,seed=2,color=greedy,lift=1,adv=fair");
        assert_eq!(r.field, "wall_share");
    }

    /// Satellite check: flipping `byte_identical` fails the gate even
    /// though no timing moved.
    #[test]
    fn sentinel_flags_byte_identity_flips() {
        let baseline = fixture();
        let mut current = fixture();
        current.cells[1].byte_identical = false;
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert_eq!(outcome.regressions.len(), 1);
        let r = &outcome.regressions[0];
        assert_eq!(r.field, "byte_identical");
        assert_eq!(r.cell, baseline.cells[1].id);
        assert_eq!(r.replay, baseline.cells[1].replay);
    }

    #[test]
    fn sentinel_flags_warm_hit_count_changes() {
        let baseline = fixture();
        let mut current = fixture();
        current.cells[0].warm_hits = 1;
        current.cells[0].warm_misses = 1;
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        let fields: Vec<&str> = outcome.regressions.iter().map(|r| r.field.as_str()).collect();
        assert!(fields.contains(&"warm_hits"));
        assert!(fields.contains(&"warm_misses"));
    }

    #[test]
    fn oracle_failures_always_regress() {
        let baseline = fixture();
        let mut current = fixture();
        current.failures.push(OracleFailure {
            cell: current.cells[0].id.clone(),
            replay: current.cells[0].replay.clone(),
            oracle: "renumbering-invariance".into(),
            detail: "outputs differ at node 1".into(),
        });
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].field, "oracle:renumbering-invariance");
        assert!(outcome.regressions[0].replay.starts_with("tc1:"));
    }

    /// Timer jitter on micro-cells: a share move that is large
    /// relatively but under the absolute slack is not flagged.
    #[test]
    fn micro_cell_jitter_stays_inside_the_slack() {
        let mut baseline = fixture();
        let mut current = fixture();
        // 100 equal micro-cells: each share ~1%; ±30% relative jitter on
        // one cell moves its share by ~0.3 points — inside the slack.
        for r in [&mut baseline, &mut current] {
            for (i, c) in r.cells.iter_mut().enumerate() {
                c.id = format!("cell-{i}");
                c.warm_wall = Duration::from_micros(100);
            }
            for i in 4..100 {
                let mut c = r.cells[0].clone();
                c.id = format!("cell-{i}");
                r.cells.push(c);
            }
        }
        current.cells[7].warm_wall = Duration::from_micros(130);
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert!(outcome.passed(), "micro jitter is not gated: {:?}", outcome.regressions);

        // A real blowup (50x) on the same micro-cell still fails.
        current.cells[7].warm_wall = Duration::from_micros(5000);
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].cell, "cell-7");
    }

    #[test]
    fn uniform_slowdown_cancels_out() {
        let baseline = fixture();
        let mut current = fixture();
        for c in &mut current.cells {
            c.warm_wall *= 3; // same machine-speed factor everywhere
        }
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert!(
            outcome.passed(),
            "uniform slowdown is not a regression: {:?}",
            outcome.regressions
        );
    }

    #[test]
    fn structural_drift_is_notes_not_failure() {
        let baseline = fixture();
        let mut current = fixture();
        let dropped = current.cells.pop().expect("fixture has cells");
        let outcome = diff(&current, &baseline, DEFAULT_BAND);
        assert!(outcome.passed());
        assert!(outcome.notes.iter().any(|n| n.contains(&dropped.id)));

        let outcome = diff(&baseline, &current, DEFAULT_BAND);
        assert!(outcome.passed());
        assert!(outcome.notes.iter().any(|n| n.contains("new")));
    }

    #[test]
    fn headline_check_degrades_gracefully_and_gates_flags() {
        let dir =
            std::env::temp_dir().join(format!("anonet-soak-headlines-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");

        // Nothing committed: all notes, no failures.
        let outcome = check_headlines(&dir);
        assert!(outcome.passed());
        assert_eq!(outcome.notes.len(), 4);

        // A false flag fails; a true one passes.
        std::fs::write(
            dir.join("BENCH_store.json"),
            "{\"byte_identical\": true, \"warm_strictly_better\": false}",
        )
        .expect("write headline");
        let outcome = check_headlines(&dir);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].field, "warm_strictly_better");

        // The scale headline gates all three of its flags.
        std::fs::write(
            dir.join("BENCH_scale.json"),
            "{\"byte_identical\": true, \"incremental_matches\": true, \"speedup_ok\": false}",
        )
        .expect("write headline");
        let outcome = check_headlines(&dir);
        assert!(!outcome.passed());
        assert!(outcome.regressions.iter().any(|r| r.field == "speedup_ok"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
