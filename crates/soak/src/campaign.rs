//! The campaign driver: sweep a [`CampaignGrid`], measure every cell.
//!
//! Each cell runs the conformance oracles over its seeded case stream,
//! then two batch passes against the campaign's one shared
//! [`PersistentDerandCache`] — a *cold* pass that does the work and a
//! *warm* pass that must answer every lookup from cache and reproduce
//! the cold outputs byte for byte. The warm pass is what makes the hit
//! counts exact-match material for the sentinel: with everything
//! resident, `warm_hits == jobs` and `warm_misses == 0` at any thread
//! count, while the cold split can race benignly when two workers miss
//! the same fresh quotient together.
//!
//! All seeds derive from [`CampaignCell::cases`]; wall-clock only ever
//! lands in the explicitly timing-typed fields of [`CellReport`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use anonet_algorithms::mis::RandomizedMis;
use anonet_algorithms::problems::MisProblem;
use anonet_batch::{BatchScheduler, CacheStats, PersistentDerandCache};
use anonet_core::astar::{run_astar_observed, AStarConfig};
use anonet_core::pipeline::run_pipeline_observed;
use anonet_core::{derandomize_batch, DerandomizedRun, SearchStrategy};
use anonet_graph::LabeledGraph;
use anonet_obs::{names, MemoryRecorder, Recorder, SharedRecorder, Span};
use anonet_runtime::ExecConfig;
use anonet_store::StoreConfig;
use anonet_testkit::{build_instance, CampaignCell, CampaignGrid, Suite, TestCase};

use crate::{Result, SoakError};

/// Everything that determines a campaign (and therefore its report,
/// modulo timings): the grid, the seed, the reps per cell, and the
/// optional wall-clock budget after which remaining cells are skipped.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The cell grid to sweep.
    pub grid: CampaignGrid,
    /// Base seed every cell's case stream derives from.
    pub base_seed: u64,
    /// Cases per cell.
    pub reps: usize,
    /// Stop *starting* cells once this much wall time has elapsed; the
    /// report marks itself truncated and lists the skipped cells.
    pub budget: Option<Duration>,
}

impl CampaignConfig {
    /// The default campaign: the full 96-cell grid, two cases per cell.
    /// This is what `anonet-soak run` executes and what the committed
    /// `BENCH_soak.json` baseline is generated from.
    pub fn full() -> CampaignConfig {
        CampaignConfig { grid: CampaignGrid::full(), base_seed: 0xA11CE, reps: 2, budget: None }
    }

    /// The three-cell mini-campaign used by the default test suite.
    pub fn smoke() -> CampaignConfig {
        CampaignConfig { grid: CampaignGrid::smoke(), base_seed: 0xA11CE, reps: 1, budget: None }
    }

    /// Sets the wall-clock budget from whole seconds.
    pub fn with_budget_secs(mut self, secs: u64) -> CampaignConfig {
        self.budget = Some(Duration::from_secs(secs));
        self
    }
}

/// Per-cell measurements. Every field except the four timing fields
/// (`wall`, `job_wall_median`, `job_wall_p95`, `update_graph`) is a pure
/// function of the campaign config — the sentinel exact-matches those
/// and noise-bands the timings.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// The cell's coordinate id (see [`CampaignCell::id`]).
    pub id: String,
    /// `tc1:…` replay string of the cell's first case.
    pub replay: String,
    /// Cases measured in the cell.
    pub cases: u64,
    /// Largest quotient `|V_*|` seen across the cell's runs.
    pub quotient_nodes: u64,
    /// Warm-pass outputs were byte-identical to cold-pass outputs.
    pub byte_identical: bool,
    /// Cold-pass assignment hits (informational: can race at `threads > 1`).
    pub cold_hits: u64,
    /// Cold-pass assignment misses (informational).
    pub cold_misses: u64,
    /// Warm-pass assignment hits — deterministic, exact-match material.
    pub warm_hits: u64,
    /// Warm-pass assignment misses — deterministic (always 0 when the
    /// cache is large enough to keep the campaign resident).
    pub warm_misses: u64,
    /// Disk-tier hits across both passes.
    pub disk_hits: u64,
    /// Engine messages of the cell's seeded pipeline probe.
    pub messages: u64,
    /// Engine message bytes of the probe.
    pub message_bytes: u64,
    /// Cold-pass wall time (informational: includes first-touch disk
    /// writes and pool spinup, so the sentinel does not gate it).
    pub wall: Duration,
    /// Steady-state replay wall: the minimum wall over the warm passes.
    /// Deterministic work answered entirely from cache, so the min is
    /// the stable timing signal the sentinel gates as a share of total.
    pub warm_wall: Duration,
    /// Median cold-pass job wall time.
    pub job_wall_median: Duration,
    /// 95th-percentile cold-pass job wall time.
    pub job_wall_p95: Duration,
    /// `update_graph` span time of the `A_*` probe (zero when the cell's
    /// quotients are too large to probe).
    pub update_graph: Duration,
}

/// One conformance-oracle failure observed during a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleFailure {
    /// The cell the failing case belongs to.
    pub cell: String,
    /// `tc1:…` replay string of the failing case.
    pub replay: String,
    /// Oracle name (e.g. `renumbering-invariance`).
    pub oracle: String,
    /// Failure detail.
    pub detail: String,
}

/// A whole campaign's results — the in-memory form of `BENCH_soak.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakReport {
    /// Base seed the campaign derived every case from.
    pub base_seed: u64,
    /// Cases per cell.
    pub reps: u64,
    /// The budget the run was given, if any.
    pub budget_secs: Option<u64>,
    /// `true` when the budget expired before the grid was exhausted.
    pub truncated: bool,
    /// Measured cells, in grid order.
    pub cells: Vec<CellReport>,
    /// Ids of cells skipped by the budget.
    pub skipped: Vec<String>,
    /// Every oracle failure, with its replay string.
    pub failures: Vec<OracleFailure>,
    /// Whole-campaign wall time.
    pub total_wall: Duration,
}

impl SoakReport {
    /// Sum of the measured cells' cold-pass walls (the denominator for
    /// the sentinel's share-of-total comparison).
    pub fn cell_wall_total(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }
}

/// FNV-1a over a run's outputs and replay-relevant metadata — the
/// byte-identity witness the warm pass is checked against.
fn run_fingerprint(run: &DerandomizedRun<bool>) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mix = |hash: &mut u64, v: u64| {
        *hash ^= v;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &out in &run.outputs {
        mix(&mut hash, u64::from(out) + 1);
    }
    mix(&mut hash, run.quotient_nodes as u64);
    mix(&mut hash, run.multiplicity as u64);
    mix(&mut hash, run.simulation_rounds as u64);
    mix(&mut hash, run.attempts as u64);
    hash
}

/// Median of `xs` (by sorted order); zero for an empty slice.
pub(crate) fn median(xs: &[Duration]) -> Duration {
    percentile(xs, 50)
}

/// The `p`-th percentile of `xs` (nearest-rank); zero for an empty slice.
pub(crate) fn percentile(xs: &[Duration], p: u32) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    let rank = (p as usize * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// The cold/warm batch window counters a cell reports, taken from the
/// batch driver's own per-window [`CacheStats`] delta.
fn window(stats: Option<&CacheStats>) -> (u64, u64, u64) {
    match stats {
        Some(s) => (s.assignment_hits, s.assignment_misses, s.disk_hits),
        None => (0, 0, 0),
    }
}

/// Runs one cell against the shared persistent cache.
fn run_cell(
    cell: &CampaignCell,
    cases: &[TestCase],
    pdc: &PersistentDerandCache,
    suite: &Suite<RandomizedMis, MisProblem, fn(u32)>,
    failures: &mut Vec<OracleFailure>,
    recorder: &SharedRecorder,
) -> Result<CellReport> {
    let rec: &dyn Recorder = &**recorder;
    let cell_span = Span::new(rec, names::SPAN_SOAK_CELL);
    let id = cell.id();
    let first = cases.first().ok_or_else(|| SoakError::Cell {
        cell: id.clone(),
        replay: String::new(),
        detail: "cell has no cases (reps = 0)".into(),
    })?;
    let replay = first.to_string();
    // The replay string on the root span is what lets a trace-analysis
    // pass name the exact failing case without the report JSON.
    cell_span.attr("cell", id.as_str());
    cell_span.attr("replay", replay.as_str());
    cell_span.attr("threads", cell.threads as u64);

    // 1. Conformance oracles over the whole case stream.
    for case in cases {
        if let Err(f) = suite.check(case) {
            failures.push(OracleFailure {
                cell: id.clone(),
                replay: case.to_string(),
                oracle: f.oracle,
                detail: f.detail,
            });
        }
    }

    // 2. Build the cell's instances: the colored graphs with `((), c)`
    // labels the MIS derandomizer consumes.
    let mut instances: Vec<LabeledGraph<((), u32)>> = Vec::with_capacity(cases.len());
    for case in cases {
        let inst = build_instance(case)?;
        let labels: Vec<((), u32)> = inst.colors.labels().iter().map(|&c| ((), c)).collect();
        instances.push(inst.colors.graph().with_labels(labels)?);
    }

    // 3. Cold pass, then warm pass, on the cell's thread count.
    let alg = RandomizedMis::new();
    let strategy = SearchStrategy::default();
    let config = ExecConfig::default();
    let scheduler = BatchScheduler::with_threads(cell.threads).with_recorder(Arc::clone(recorder));
    let cache = Arc::clone(pdc.cache());

    let cold = derandomize_batch(&alg, &instances, strategy, &config, &scheduler, Some(&cache));
    let mut cold_prints = Vec::with_capacity(instances.len());
    let mut quotient_nodes = 0u64;
    for result in &cold.results {
        let run = result.ok().ok_or_else(|| SoakError::Cell {
            cell: id.clone(),
            replay: replay.clone(),
            detail: "cold-pass batch job failed".into(),
        })?;
        quotient_nodes = quotient_nodes.max(run.quotient_nodes as u64);
        cold_prints.push(run_fingerprint(run));
    }
    let warm = derandomize_batch(&alg, &instances, strategy, &config, &scheduler, Some(&cache));
    let mut warm_prints = Vec::with_capacity(instances.len());
    for result in &warm.results {
        let run = result.ok().ok_or_else(|| SoakError::Cell {
            cell: id.clone(),
            replay: replay.clone(),
            detail: "warm-pass batch job failed".into(),
        })?;
        warm_prints.push(run_fingerprint(run));
    }
    let (cold_hits, cold_misses, cold_disk) = window(cold.stats.cache.as_ref());
    let (warm_hits, warm_misses, warm_disk) = window(warm.stats.cache.as_ref());

    // Steady-state replay wall: min over the first warm pass and two
    // more fully-cached repeats. The min discards scheduler stalls and
    // first-touch effects, which dominate sub-millisecond cells.
    let mut warm_wall = warm.stats.wall;
    for _ in 0..2 {
        let repeat =
            derandomize_batch(&alg, &instances, strategy, &config, &scheduler, Some(&cache));
        if repeat.results.iter().all(|r| r.ok().is_some()) {
            warm_wall = warm_wall.min(repeat.stats.wall);
        }
    }

    // 4. Bytes/messages probe: one seeded end-to-end pipeline run of the
    // first case, bridged through the obs engine counters.
    let mem = Arc::new(MemoryRecorder::new());
    let shared: SharedRecorder = Arc::<MemoryRecorder>::clone(&mem);
    let net = instances
        .first()
        .map(|g| g.graph().with_labels(vec![(); g.node_count()]))
        .transpose()?
        .ok_or_else(|| SoakError::Cell {
            cell: id.clone(),
            replay: replay.clone(),
            detail: "cell built no instances".into(),
        })?;
    run_pipeline_observed(&alg, &net, first.seed, strategy, &config, None, &shared)?;
    let probe = mem.snapshot();

    // 5. `A_*` update-graph probe, only where the engine is feasible
    // (tiny quotient, tiny instance — the same gate the suite uses).
    let mut update_graph = Duration::ZERO;
    let astar_target = cold.results.iter().enumerate().find_map(|(i, r)| {
        let run = r.ok()?;
        (run.quotient_nodes <= 3 && instances[i].node_count() <= 6).then_some(i)
    });
    if let Some(i) = astar_target {
        let astar_mem = MemoryRecorder::new();
        run_astar_observed(&alg, &MisProblem, &instances[i], &AStarConfig::default(), &astar_mem)?;
        update_graph = astar_mem.snapshot().span_total(names::SPAN_UPDATE_GRAPH).total;
    }

    rec.counter(names::SOAK_CASES, cases.len() as u64);
    rec.counter(names::SOAK_CELLS, 1);
    rec.histogram(names::SOAK_CELL_WALL_US, cold.stats.wall.as_micros() as u64);

    Ok(CellReport {
        id,
        replay,
        cases: cases.len() as u64,
        quotient_nodes,
        byte_identical: cold_prints == warm_prints,
        cold_hits,
        cold_misses,
        warm_hits,
        warm_misses,
        disk_hits: cold_disk + warm_disk,
        messages: probe.counter(names::ENGINE_MESSAGES),
        message_bytes: probe.counter(names::ENGINE_MESSAGE_BYTES),
        wall: cold.stats.wall,
        warm_wall,
        job_wall_median: median(&cold.stats.job_times),
        job_wall_p95: percentile(&cold.stats.job_times, 95),
        update_graph,
    })
}

/// Runs a whole campaign, emitting `soak.*` metrics and a causal span
/// tree to `recorder`.
///
/// The persistent cache lives in a throwaway directory for the duration
/// of the campaign, so disk-tier behavior is exercised without coupling
/// runs to each other. The recorder is shared with the cache's store and
/// every cell's batch scheduler, so one trace carries the whole chain:
/// `soak_campaign` → `soak_cell` (with its `tc1:` replay string as an
/// attribute) → `batch_run` → worker `job`s, plus `segment_*` spans from
/// the disk tier.
///
/// # Errors
///
/// Propagates generator, pipeline, store, and per-cell batch failures.
/// Oracle *violations* are not errors — they land in
/// [`SoakReport::failures`] with replay strings, and the sentinel turns
/// them into a failing check.
pub fn run_campaign_observed(
    cfg: &CampaignConfig,
    recorder: &SharedRecorder,
) -> Result<SoakReport> {
    let rec: &dyn Recorder = &**recorder;
    let _campaign_span = Span::new(rec, names::SPAN_SOAK_CAMPAIGN);
    let started = Instant::now();
    // Process id + in-process counter: campaigns never share (or clobber)
    // a cache directory, even when a test harness runs several at once.
    static CAMPAIGNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let stamp = CAMPAIGNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("anonet-soak-cache-{}-{stamp}", std::process::id()));
    // A stale cache directory would warm-start the campaign and
    // invalidate its cold-path numbers; only "already absent" is benign.
    if let Err(e) = std::fs::remove_dir_all(&dir) {
        if e.kind() != std::io::ErrorKind::NotFound {
            return Err(SoakError::Io {
                context: format!("clearing campaign cache dir {}", dir.display()),
                source: e,
            });
        }
    }
    let pdc = PersistentDerandCache::open_with(
        StoreConfig::new(&dir).with_recorder(Arc::clone(recorder)),
        None,
    )?;
    let suite: Suite<RandomizedMis, MisProblem, fn(u32)> =
        Suite::new("soak-mis", RandomizedMis::new(), MisProblem, (|_| ()) as fn(u32)).with_astar();

    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    let mut failures = Vec::new();
    let mut truncated = false;
    for cell in cfg.grid.cells() {
        if let Some(budget) = cfg.budget {
            if started.elapsed() > budget {
                truncated = true;
                skipped.push(cell.id());
                continue;
            }
        }
        let cases = cell.cases(cfg.base_seed, cfg.reps);
        cells.push(run_cell(&cell, &cases, &pdc, &suite, &mut failures, recorder)?);
    }
    pdc.flush()?;
    if let Err(e) = std::fs::remove_dir_all(&dir) {
        eprintln!("anonet-soak: could not remove campaign cache dir {}: {e}", dir.display());
    }

    rec.counter(names::SOAK_CELLS_SKIPPED, skipped.len() as u64);
    rec.counter(names::SOAK_ORACLE_FAILURES, failures.len() as u64);

    Ok(SoakReport {
        base_seed: cfg.base_seed,
        reps: cfg.reps as u64,
        budget_secs: cfg.budget.map(|b| b.as_secs()),
        truncated,
        cells,
        skipped,
        failures,
        total_wall: started.elapsed(),
    })
}

/// [`run_campaign_observed`] with metrics discarded.
///
/// # Errors
///
/// See [`run_campaign_observed`].
pub fn run_campaign(cfg: &CampaignConfig) -> Result<SoakReport> {
    run_campaign_observed(cfg, &anonet_obs::noop())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(median(&ms), Duration::from_millis(5));
        assert_eq!(percentile(&ms, 95), Duration::from_millis(10));
        assert_eq!(percentile(&ms, 100), Duration::from_millis(10));
        assert_eq!(percentile(&[], 50), Duration::ZERO);
        assert_eq!(median(&[Duration::from_millis(7)]), Duration::from_millis(7));
    }

    #[test]
    fn campaign_trace_is_one_causal_tree() {
        let mem = Arc::new(MemoryRecorder::new());
        let shared: SharedRecorder = Arc::<MemoryRecorder>::clone(&mem);
        run_campaign_observed(&CampaignConfig::smoke(), &shared).unwrap();
        let snap = mem.snapshot();
        assert_eq!(snap.span(names::SPAN_SOAK_CAMPAIGN).unwrap().count, 1);
        assert_eq!(snap.span("soak_campaign/soak_cell").unwrap().count, 3);
        assert!(
            snap.span("soak_campaign/soak_cell/batch_run/job").unwrap().count > 0,
            "worker jobs must stay parented under their cell"
        );
        assert!(snap.span("soak_campaign/store_open").is_some(), "store shares the trace");
        assert!(snap.span(names::SPAN_SOAK_CELL).is_none(), "cells must not be orphan roots");
        assert!(snap.span(names::SPAN_JOB).is_none(), "jobs must not be orphan roots");
    }

    #[test]
    fn smoke_campaign_is_deterministic_modulo_timings() {
        let cfg = CampaignConfig::smoke();
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.cells.len(), 3);
        assert!(a.failures.is_empty(), "oracles must pass: {:?}", a.failures);
        assert!(!a.truncated);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.replay, y.replay);
            assert_eq!(x.cases, y.cases);
            assert_eq!(x.quotient_nodes, y.quotient_nodes);
            assert_eq!(x.byte_identical, y.byte_identical);
            assert!(x.byte_identical);
            assert_eq!((x.warm_hits, x.warm_misses), (y.warm_hits, y.warm_misses));
            assert_eq!(x.warm_hits, x.cases, "warm pass answers every job from cache");
            assert_eq!(x.warm_misses, 0);
            assert_eq!((x.messages, x.message_bytes), (y.messages, y.message_bytes));
            assert!(x.messages > 0);
        }
    }
}
