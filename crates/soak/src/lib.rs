//! # anonet-soak
//!
//! Seeded soak campaigns plus the perf-regression sentinel that turns
//! the repo's `BENCH_*.json` trajectory into a gate.
//!
//! A **campaign** ([`run_campaign`]) sweeps the cells of a
//! [`CampaignGrid`](anonet_testkit::CampaignGrid) — the cross product
//! (family × n × coloring mode × lift voltage × adversary × thread
//! count) — and in every cell:
//!
//! 1. runs the full conformance [`Suite`](anonet_testkit::Suite) (the
//!    differential and metamorphic oracles) over the cell's seeded
//!    [`TestCase`](anonet_testkit::TestCase) stream;
//! 2. pushes the instances through the cached batch pipeline twice
//!    against one shared
//!    [`PersistentDerandCache`](anonet_batch::PersistentDerandCache)
//!    (a cold pass that populates and a warm pass that must replay
//!    byte-identically), collecting wall time, cache hit counts for the
//!    memory and disk tiers, and per-job medians/p95;
//! 3. probes bytes/messages through the `anonet-obs` engine bridge and,
//!    on cells with tiny quotients, the `A_*` engine's `update_graph`
//!    span time.
//!
//! The result is a [`SoakReport`] serialized to `BENCH_soak.json`
//! through the workspace's shared [`Json`](anonet_obs::json::Json)
//! serializer: same seeds ⇒ identical report, modulo the timing fields.
//!
//! The **sentinel** ([`diff::diff`]) compares a fresh report against the
//! checked-in baseline: byte-identity, hit counts, message counts, and
//! sizes must match *exactly*; wall time is compared as each cell's
//! *share* of the campaign's total (machine-speed invariant) under a
//! configurable noise band (default ±15%). Regressed cells are listed
//! with their `tc1:…` replay strings so any of them can be re-run in
//! isolation, and a missing baseline records instead of failing.
//!
//! The `anonet-soak` binary exposes both halves:
//!
//! ```text
//! cargo run -p anonet-soak -- run   [--budget-secs N] [--out PATH]
//! cargo run -p anonet-soak -- check [--baseline PATH] [--band-pct P]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;

pub mod baseline;
pub mod campaign;
pub mod diff;
pub mod report;

pub use campaign::{
    run_campaign, run_campaign_observed, CampaignConfig, CellReport, OracleFailure, SoakReport,
};
pub use diff::{DiffOutcome, Regression, DEFAULT_BAND};

/// Errors surfaced by campaigns, baselines, and the sentinel.
#[derive(Debug)]
#[non_exhaustive]
pub enum SoakError {
    /// Instance generation failed (testkit generator layer).
    Testkit(anonet_testkit::TestkitError),
    /// A graph construction failed.
    Graph(anonet_graph::GraphError),
    /// A pipeline or derandomizer run failed outside the batch driver.
    Core(anonet_core::CoreError),
    /// The persistent cache's disk tier failed.
    Store(anonet_store::StoreError),
    /// A batch job inside a cell failed or panicked; `replay` re-runs the
    /// cell's first case.
    Cell {
        /// The cell's coordinate id.
        cell: String,
        /// `tc1:…` replay string of the cell's first case.
        replay: String,
        /// What went wrong.
        detail: String,
    },
    /// A baseline file could not be read or did not match the schema.
    Baseline {
        /// The file that failed.
        path: PathBuf,
        /// Why it failed.
        detail: String,
    },
    /// Reading or writing a report file failed.
    Io {
        /// What was being accessed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for SoakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakError::Testkit(e) => write!(f, "testkit error: {e}"),
            SoakError::Graph(e) => write!(f, "graph error: {e}"),
            SoakError::Core(e) => write!(f, "core error: {e}"),
            SoakError::Store(e) => write!(f, "store error: {e}"),
            SoakError::Cell { cell, replay, detail } => {
                write!(f, "cell {cell} failed: {detail} (replay with {replay})")
            }
            SoakError::Baseline { path, detail } => {
                write!(f, "baseline {}: {detail}", path.display())
            }
            SoakError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for SoakError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoakError::Testkit(e) => Some(e),
            SoakError::Graph(e) => Some(e),
            SoakError::Core(e) => Some(e),
            SoakError::Store(e) => Some(e),
            SoakError::Io { source, .. } => Some(source),
            SoakError::Cell { .. } | SoakError::Baseline { .. } => None,
        }
    }
}

impl From<anonet_testkit::TestkitError> for SoakError {
    fn from(e: anonet_testkit::TestkitError) -> Self {
        SoakError::Testkit(e)
    }
}

impl From<anonet_graph::GraphError> for SoakError {
    fn from(e: anonet_graph::GraphError) -> Self {
        SoakError::Graph(e)
    }
}

impl From<anonet_core::CoreError> for SoakError {
    fn from(e: anonet_core::CoreError) -> Self {
        SoakError::Core(e)
    }
}

impl From<anonet_store::StoreError> for SoakError {
    fn from(e: anonet_store::StoreError) -> Self {
        SoakError::Store(e)
    }
}

/// Convenient alias for results with [`SoakError`].
pub type Result<T> = std::result::Result<T, SoakError>;
