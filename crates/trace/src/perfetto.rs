//! Chrome/Perfetto `trace_event` export.
//!
//! Produces the JSON object format both `chrome://tracing` and
//! `ui.perfetto.dev` load: one `"ph":"X"` *complete* event per span
//! (`ts`/`dur` in microseconds, the recorder's thread ordinal as `tid`),
//! and one `"ph":"C"` *counter* event per counter bump carrying the
//! cumulative value, so counters render as stepped tracks. Span ids,
//! parent links, paths, and attributes ride along in `args` — the
//! viewer shows them in the selection panel.
//!
//! In-flight spans (crash dumps) are exported as `"X"` events stretched
//! to the dump horizon with `"in_flight": true` in `args`, which keeps
//! the export loadable (Perfetto dislikes unmatched `"B"` events).

use std::collections::BTreeMap;

use anonet_obs::Json;

use crate::model::Trace;

/// Renders `trace` as a `trace_event` JSON object.
pub fn export(trace: &Trace) -> Json {
    let horizon = trace.end_us();
    let mut events: Vec<Json> = Vec::with_capacity(trace.spans.len() + trace.counters.len());

    for span in &trace.spans {
        let mut args = vec![
            ("id".to_string(), Json::from(span.id)),
            ("parent".to_string(), span.parent.map(Json::from).unwrap_or(Json::Null)),
            ("path".to_string(), Json::str(span.path.as_str())),
        ];
        if span.in_flight {
            args.push(("in_flight".to_string(), Json::from(true)));
        }
        for (key, value) in &span.attrs {
            args.push((key.clone(), value.clone()));
        }
        let dur = if span.in_flight { horizon.saturating_sub(span.start_us) } else { span.wall_us };
        events.push(Json::obj([
            ("name", Json::str(span.name.as_str())),
            ("cat", Json::str("span")),
            ("ph", Json::str("X")),
            ("ts", Json::from(span.start_us)),
            ("dur", Json::from(dur)),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(span.tid)),
            ("args", Json::Obj(args)),
        ]));
    }

    let mut running: BTreeMap<&str, u64> = BTreeMap::new();
    for c in &trace.counters {
        let total = running.entry(c.name.as_str()).or_insert(0);
        *total += c.delta;
        events.push(Json::obj([
            ("name", Json::str(c.name.as_str())),
            ("cat", Json::str("counter")),
            ("ph", Json::str("C")),
            ("ts", Json::from(c.us)),
            ("pid", Json::from(1u64)),
            ("args", Json::obj([("value", Json::from(*total))])),
        ]));
    }

    Json::obj([("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::str("ms"))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_obs::{JsonlRecorder, Recorder, Span};

    #[test]
    fn export_is_valid_trace_event_json() {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let outer = Span::new(&rec, "batch_run");
            let job = Span::child_of(&rec, "job", outer.context());
            job.attr("queue_wait_us", 3u64);
            rec.counter("batch.jobs", 2);
        }
        let trace = Trace::parse(&buf.contents()).unwrap();
        let text = export(&trace).pretty();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().items().unwrap();
        assert_eq!(events.len(), 3); // two spans + one counter
        let spans: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(spans.len(), 2);
        for span in &spans {
            assert!(span.get("ts").is_some() && span.get("dur").is_some());
            assert_eq!(span.get("pid").and_then(Json::as_f64), Some(1.0));
            assert!(span.get("tid").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let job = spans.iter().find(|s| s.get("name").and_then(Json::as_str) == Some("job"));
        let args = job.unwrap().get("args").unwrap();
        assert_eq!(args.get("queue_wait_us").and_then(Json::as_f64), Some(3.0));
        assert_eq!(args.get("path").and_then(Json::as_str), Some("batch_run/job"));
        let counter =
            events.iter().find(|e| e.get("ph").and_then(Json::as_str) == Some("C")).unwrap();
        assert_eq!(counter.get("args").unwrap().get("value").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn in_flight_spans_stretch_to_the_horizon() {
        let rec = anonet_obs::FlightRecorder::with_capacity(16);
        let open = Span::new(&rec, "pipeline");
        rec.counter("tick", 1);
        let text = rec.dump_lines().join("\n");
        drop(open);
        let trace = Trace::parse(&text).unwrap();
        let exported = export(&trace);
        let events = exported.get("traceEvents").unwrap().items().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("pipeline"))
            .unwrap();
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("args").unwrap().get("in_flight").and_then(Json::as_bool), Some(true));
    }
}
