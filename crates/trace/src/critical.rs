//! Critical-path extraction.
//!
//! The **critical path** of a trace is the heaviest root-to-leaf chain
//! by wall time: start at the root span with the largest wall, and at
//! every level descend into the child with the largest wall (ties break
//! to the smaller span id, so reports are deterministic). Each step
//! reports its wall, its **self** time (wall minus children, clamped),
//! and — separately — its scheduler **queue wait**: the `queue_wait_us`
//! attribute the batch layer attaches to `job` spans. Queue wait is time
//! the work item existed but no worker had claimed it; attributing it
//! apart from compute is what distinguishes "the pool is too small"
//! from "the job is slow".
//!
//! The report also carries the trace's hygiene numbers — root count,
//! orphan count, in-flight count — which is what the toolchain's
//! acceptance test gates on (a complete campaign trace has exactly one
//! root and zero orphans).

use anonet_obs::Json;

use crate::model::{SpanRec, Trace};

/// One step along the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalStep {
    /// Span id.
    pub id: u64,
    /// Leaf name.
    pub name: String,
    /// Full causal path.
    pub path: String,
    /// Wall microseconds.
    pub wall_us: u64,
    /// Wall minus children (clamped at zero).
    pub self_us: u64,
    /// The `queue_wait_us` attribute, zero when absent.
    pub queue_wait_us: u64,
    /// Recording thread ordinal.
    pub tid: u64,
}

/// The critical path plus trace hygiene accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalReport {
    /// Spans in the trace.
    pub spans: usize,
    /// Root spans (`parent: null`).
    pub roots: usize,
    /// Spans whose parent is missing from the trace.
    pub orphans: usize,
    /// Spans still open at the end of the trace (crash dumps).
    pub in_flight: usize,
    /// Root-to-leaf steps, heaviest chain first element = root.
    pub chain: Vec<CriticalStep>,
    /// The chain's total wall (= the root step's wall).
    pub chain_wall_us: u64,
    /// Total queue wait attributed along the chain.
    pub chain_queue_wait_us: u64,
}

fn queue_wait(span: &SpanRec) -> u64 {
    span.attr("queue_wait_us").and_then(Json::as_f64).map(|x| x as u64).unwrap_or(0)
}

/// Extracts the critical path of `trace`.
pub fn critical_path(trace: &Trace) -> CriticalReport {
    let children = trace.children();
    let child_wall = |id: u64| -> u64 {
        children.get(&id).map(|ix| ix.iter().map(|&i| trace.spans[i].wall_us).sum()).unwrap_or(0)
    };
    let step = |span: &SpanRec| CriticalStep {
        id: span.id,
        name: span.name.clone(),
        path: span.path.clone(),
        wall_us: span.wall_us,
        self_us: span.wall_us.saturating_sub(child_wall(span.id)),
        queue_wait_us: queue_wait(span),
        tid: span.tid,
    };

    let mut report = CriticalReport {
        spans: trace.spans.len(),
        roots: trace.roots().len(),
        orphans: trace.orphans().len(),
        in_flight: trace.spans.iter().filter(|s| s.in_flight).count(),
        ..CriticalReport::default()
    };

    // Heaviest root (ties to smaller id, deterministically).
    let Some(root) =
        trace.roots().into_iter().max_by(|a, b| a.wall_us.cmp(&b.wall_us).then(b.id.cmp(&a.id)))
    else {
        return report;
    };
    report.chain_wall_us = root.wall_us;

    let mut cursor = root;
    loop {
        report.chain_queue_wait_us += queue_wait(cursor);
        report.chain.push(step(cursor));
        let Some(next) = children
            .get(&cursor.id)
            .into_iter()
            .flatten()
            .map(|&i| &trace.spans[i])
            .max_by(|a, b| a.wall_us.cmp(&b.wall_us).then(b.id.cmp(&a.id)))
        else {
            break;
        };
        cursor = next;
    }
    report
}

/// Renders the report as a plain-text table.
pub fn render(report: &CriticalReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "spans {}  roots {}  orphans {}  in-flight {}\n",
        report.spans, report.roots, report.orphans, report.in_flight
    ));
    out.push_str(&format!(
        "critical path: {} us wall, {} us queued\n",
        report.chain_wall_us, report.chain_queue_wait_us
    ));
    for (depth, s) in report.chain.iter().enumerate() {
        out.push_str(&format!(
            "{:indent$}{}  wall {} us  self {} us  queued {} us  (tid {})\n",
            "",
            s.name,
            s.wall_us,
            s.self_us,
            s.queue_wait_us,
            s.tid,
            indent = depth * 2
        ));
    }
    out
}

/// The report as [`Json`], for machine consumption (the E20 gate reads
/// `orphans` and `roots` from this).
pub fn to_json(report: &CriticalReport) -> Json {
    Json::obj([
        ("spans", Json::from(report.spans)),
        ("roots", Json::from(report.roots)),
        ("orphans", Json::from(report.orphans)),
        ("in_flight", Json::from(report.in_flight)),
        ("chain_wall_us", Json::from(report.chain_wall_us)),
        ("chain_queue_wait_us", Json::from(report.chain_queue_wait_us)),
        (
            "chain",
            Json::Arr(
                report
                    .chain
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("name", Json::str(s.name.as_str())),
                            ("path", Json::str(s.path.as_str())),
                            ("wall_us", Json::from(s.wall_us)),
                            ("self_us", Json::from(s.self_us)),
                            ("queue_wait_us", Json::from(s.queue_wait_us)),
                            ("tid", Json::from(s.tid)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_obs::{JsonlRecorder, Span};

    #[test]
    fn follows_the_heaviest_chain_and_attributes_queue_wait() {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let run = Span::new(&rec, "batch_run");
            {
                let fast = Span::child_of(&rec, "job", run.context());
                fast.attr("queue_wait_us", 1u64);
            }
            {
                let slow = Span::child_of(&rec, "job", run.context());
                slow.attr("queue_wait_us", 7u64);
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
        }
        let trace = Trace::parse(&buf.contents()).unwrap();
        let report = critical_path(&trace);
        assert_eq!(report.roots, 1);
        assert_eq!(report.orphans, 0);
        assert_eq!(report.chain.len(), 2);
        assert_eq!(report.chain[0].name, "batch_run");
        assert_eq!(report.chain[1].name, "job");
        assert!(report.chain[1].wall_us >= 3000, "the slow job wins the chain");
        assert_eq!(report.chain_queue_wait_us, 7, "the slow job's wait, not the fast one's");
        assert_eq!(report.chain_wall_us, report.chain[0].wall_us);
        assert!(report.chain[0].self_us <= report.chain[0].wall_us);
        let rendered = render(&report);
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("batch_run"));
        let json = to_json(&report);
        let reparsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(reparsed.get("orphans").and_then(Json::as_f64), Some(0.0));
        assert_eq!(reparsed.get("chain").unwrap().items().unwrap().len(), 2);
    }

    #[test]
    fn empty_trace_yields_an_empty_report() {
        let report = critical_path(&Trace::default());
        assert_eq!(report.chain.len(), 0);
        assert_eq!(report.chain_wall_us, 0);
        assert_eq!(render(&report).lines().count(), 2);
    }
}
