//! Parsing JSONL traces back into a causal span model.
//!
//! Accepts both trace dialects the obs layer emits:
//!
//! * **Live traces** ([`JsonlRecorder`](anonet_obs::JsonlRecorder)):
//!   close-only `"ev":"span"` lines carrying `id`, `parent`, `name`, the
//!   `/`-joined `path`, `wall_us`, and `tid`; the span's start is
//!   reconstructed as `us - wall_us`.
//! * **Crash dumps** ([`FlightRecorder`](anonet_obs::FlightRecorder)):
//!   additionally `"ev":"span_open"` lines (no `path` field — paths are
//!   reconstructed from the parent chain) and a trailing `"ev":"flight"`
//!   summary. An open with no matching close becomes an *in-flight* span
//!   ending at the dump's horizon.
//!
//! `"ev":"attr"` lines attach to spans by id; `"ev":"counter"` and
//! `"ev":"hist"` lines are kept as ordered event streams. Ring-buffer
//! dumps routinely contain attrs whose span was already overwritten —
//! those are counted, not errors.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;

use anonet_obs::Json;

use crate::{Result, TraceError};

/// One span reconstructed from a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    /// Stable process-wide span id.
    pub id: u64,
    /// Parent span id, `None` for a root.
    pub parent: Option<u64>,
    /// Leaf name (e.g. `"job"`).
    pub name: String,
    /// `/`-joined causal path (e.g. `"soak_campaign/soak_cell/batch_run/job"`).
    pub path: String,
    /// Start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// End (close time, or the dump horizon for in-flight spans).
    pub end_us: u64,
    /// Wall time; zero for in-flight spans.
    pub wall_us: u64,
    /// Ordinal of the thread that recorded the span.
    pub tid: u64,
    /// Attributes attached via `Span::attr`, in arrival order.
    pub attrs: Vec<(String, Json)>,
    /// `true` when the span was still open when the trace ended (crash
    /// dumps only — live traces never emit opens).
    pub in_flight: bool,
}

impl SpanRec {
    /// The attribute value for `key`, if attached.
    pub fn attr(&self, key: &str) -> Option<&Json> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// One `"ev":"counter"` line.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterEvent {
    /// Microseconds since epoch.
    pub us: u64,
    /// Counter name.
    pub name: String,
    /// The bump.
    pub delta: u64,
}

/// One `"ev":"hist"` line.
#[derive(Clone, Debug, PartialEq)]
pub struct HistEvent {
    /// Microseconds since epoch.
    pub us: u64,
    /// Histogram name.
    pub name: String,
    /// The sample.
    pub value: u64,
}

/// The trailing `"ev":"flight"` summary of a ring dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightSummary {
    /// Events retained in the ring.
    pub captured: u64,
    /// Events discarded by the never-block rule.
    pub dropped: u64,
    /// Ring capacity.
    pub capacity: u64,
}

/// A whole parsed trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Spans, in the order their defining line appeared (closes first,
    /// then any in-flight opens).
    pub spans: Vec<SpanRec>,
    /// Counter bumps, in arrival order.
    pub counters: Vec<CounterEvent>,
    /// Histogram samples, in arrival order.
    pub hists: Vec<HistEvent>,
    /// Ring summary, present only for flight dumps.
    pub flight: Option<FlightSummary>,
    /// Attr lines whose span never appeared (ring overwrote it).
    pub detached_attrs: usize,
}

fn field_u64(obj: &Json, key: &str, line: usize) -> Result<u64> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|x| x as u64)
        .ok_or_else(|| TraceError::Parse { line, detail: format!("missing numeric field `{key}`") })
}

fn field_str(obj: &Json, key: &str, line: usize) -> Result<String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| TraceError::Parse { line, detail: format!("missing string field `{key}`") })
}

/// `parent` is `null` for roots; absent counts as null for leniency.
fn field_parent(obj: &Json) -> Option<u64> {
    obj.get("parent").and_then(Json::as_f64).map(|x| x as u64)
}

/// A `span_open` waiting for its close.
struct OpenSpan {
    parent: Option<u64>,
    name: String,
    us: u64,
    tid: u64,
    order: usize,
}

impl Trace {
    /// Parses a trace from JSONL text (empty lines are skipped).
    ///
    /// # Errors
    ///
    /// The first malformed line, with its line number.
    pub fn parse(text: &str) -> Result<Trace> {
        let mut trace = Trace::default();
        let mut open: HashMap<u64, OpenSpan> = HashMap::new();
        let mut attrs: HashMap<u64, Vec<(String, Json)>> = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let obj = Json::parse(raw).map_err(|detail| TraceError::Parse { line, detail })?;
            let ev = field_str(&obj, "ev", line)?;
            match ev.as_str() {
                "span" => {
                    let id = field_u64(&obj, "id", line)?;
                    let name = field_str(&obj, "name", line)?;
                    let wall_us = field_u64(&obj, "wall_us", line)?;
                    let us = field_u64(&obj, "us", line)?;
                    // Crash dumps omit `path`; it is reconstructed below.
                    let path = field_str(&obj, "path", line).unwrap_or_default();
                    let tid = field_u64(&obj, "tid", line)?;
                    open.remove(&id);
                    trace.spans.push(SpanRec {
                        id,
                        parent: field_parent(&obj),
                        name,
                        path,
                        start_us: us.saturating_sub(wall_us),
                        end_us: us,
                        wall_us,
                        tid,
                        attrs: Vec::new(),
                        in_flight: false,
                    });
                }
                "span_open" => {
                    let id = field_u64(&obj, "id", line)?;
                    open.insert(
                        id,
                        OpenSpan {
                            parent: field_parent(&obj),
                            name: field_str(&obj, "name", line)?,
                            us: field_u64(&obj, "us", line)?,
                            tid: field_u64(&obj, "tid", line)?,
                            order: idx,
                        },
                    );
                }
                "attr" => {
                    let id = field_u64(&obj, "id", line)?;
                    let key = field_str(&obj, "key", line)?;
                    let value = obj.get("value").cloned().unwrap_or(Json::Null);
                    attrs.entry(id).or_default().push((key, value));
                }
                "counter" => trace.counters.push(CounterEvent {
                    us: field_u64(&obj, "us", line)?,
                    name: field_str(&obj, "name", line)?,
                    delta: field_u64(&obj, "delta", line)?,
                }),
                "hist" => trace.hists.push(HistEvent {
                    us: field_u64(&obj, "us", line)?,
                    name: field_str(&obj, "name", line)?,
                    value: field_u64(&obj, "value", line)?,
                }),
                "flight" => {
                    trace.flight = Some(FlightSummary {
                        captured: field_u64(&obj, "captured", line)?,
                        dropped: field_u64(&obj, "dropped", line)?,
                        capacity: field_u64(&obj, "capacity", line)?,
                    });
                }
                other => {
                    return Err(TraceError::Parse {
                        line,
                        detail: format!("unknown event kind `{other}`"),
                    });
                }
            }
        }

        // Opens with no close: the span was in flight when the trace
        // ended. It gets the dump horizon as its end and zero wall.
        let horizon = trace
            .spans
            .iter()
            .map(|s| s.end_us)
            .chain(trace.counters.iter().map(|c| c.us))
            .chain(trace.hists.iter().map(|h| h.us))
            .chain(open.values().map(|o| o.us))
            .max()
            .unwrap_or(0);
        let mut in_flight: Vec<(usize, SpanRec)> = open
            .into_iter()
            .map(|(id, o)| {
                (
                    o.order,
                    SpanRec {
                        id,
                        parent: o.parent,
                        name: o.name,
                        path: String::new(),
                        start_us: o.us,
                        end_us: horizon,
                        wall_us: 0,
                        tid: o.tid,
                        attrs: Vec::new(),
                        in_flight: true,
                    },
                )
            })
            .collect();
        in_flight.sort_by_key(|(order, _)| *order);
        trace.spans.extend(in_flight.into_iter().map(|(_, s)| s));

        // Attach attrs; anything left names an overwritten span.
        for span in &mut trace.spans {
            if let Some(list) = attrs.remove(&span.id) {
                span.attrs = list;
            }
        }
        trace.detached_attrs = attrs.values().map(Vec::len).sum();

        trace.reconstruct_paths();
        Ok(trace)
    }

    /// Reads and parses a trace file.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed lines.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Trace> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
            context: format!("reading trace {}", path.display()),
            source: e,
        })?;
        Trace::parse(&text)
    }

    /// Fills empty `path` fields by walking parent links (crash dumps
    /// omit paths). An unknown parent degrades to a root path, mirroring
    /// the memory backend.
    fn reconstruct_paths(&mut self) {
        let by_id: HashMap<u64, (Option<u64>, String)> =
            self.spans.iter().map(|s| (s.id, (s.parent, s.name.clone()))).collect();
        for span in &mut self.spans {
            if !span.path.is_empty() {
                continue;
            }
            let mut segments = vec![span.name.clone()];
            let mut cursor = span.parent;
            // The depth guard makes a (corrupt) parent cycle terminate.
            let mut depth = 0;
            while let Some(pid) = cursor {
                let Some((grand, name)) = by_id.get(&pid) else { break };
                segments.push(name.clone());
                cursor = *grand;
                depth += 1;
                if depth > by_id.len() {
                    break;
                }
            }
            segments.reverse();
            span.path = segments.join("/");
        }
    }

    /// Root spans: explicit `parent: null`.
    pub fn roots(&self) -> Vec<&SpanRec> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Orphan spans: a parent id that is nowhere in the trace. Zero in a
    /// complete live trace; common in ring dumps (the parent's events
    /// were overwritten).
    pub fn orphans(&self) -> Vec<&SpanRec> {
        let ids: HashMap<u64, ()> = self.spans.iter().map(|s| (s.id, ())).collect();
        self.spans.iter().filter(|s| s.parent.is_some_and(|p| !ids.contains_key(&p))).collect()
    }

    /// Children indexes into [`Trace::spans`], keyed by parent id.
    pub fn children(&self) -> HashMap<u64, Vec<usize>> {
        let mut map: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            if let Some(p) = span.parent {
                map.entry(p).or_default().push(i);
            }
        }
        map
    }

    /// The latest timestamp in the trace.
    pub fn end_us(&self) -> u64 {
        self.spans.iter().map(|s| s.end_us).max().unwrap_or(0)
    }

    /// Counter totals by name.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for c in &self.counters {
            *totals.entry(c.name.clone()).or_insert(0) += c.delta;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_obs::{JsonlRecorder, Recorder, Span};

    fn live_trace() -> Trace {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let campaign = Span::new(&rec, "soak_campaign");
            {
                let cell = Span::child_of(&rec, "soak_cell", campaign.context());
                cell.attr("replay", "tc1:demo");
                let _job = Span::new(&rec, "job");
            }
            rec.counter("soak.cells", 1);
            rec.histogram("batch.queue_wait_us", 42);
        }
        Trace::parse(&buf.contents()).unwrap()
    }

    #[test]
    fn parses_live_traces_with_ids_paths_and_attrs() {
        let trace = live_trace();
        assert_eq!(trace.spans.len(), 3);
        let paths: Vec<&str> = trace.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            ["soak_campaign/soak_cell/job", "soak_campaign/soak_cell", "soak_campaign"]
        );
        let cell = trace.spans.iter().find(|s| s.name == "soak_cell").unwrap();
        assert_eq!(cell.attr("replay").and_then(Json::as_str), Some("tc1:demo"));
        assert_eq!(trace.roots().len(), 1);
        assert!(trace.orphans().is_empty());
        assert_eq!(trace.counter_totals()["soak.cells"], 1);
        assert_eq!(trace.hists.len(), 1);
        assert_eq!(trace.detached_attrs, 0);
        for span in &trace.spans {
            assert!(!span.in_flight);
            assert_eq!(span.start_us + span.wall_us, span.end_us);
        }
    }

    #[test]
    fn parses_flight_dumps_reconstructing_paths_and_in_flight_spans() {
        let rec = anonet_obs::FlightRecorder::with_capacity(64);
        let outer = Span::new(&rec, "pipeline");
        {
            let _done = Span::child_of(&rec, "coloring", outer.context());
        }
        let text = rec.dump_lines().join("\n");
        drop(outer);
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.flight.unwrap().capacity, 64);
        let pipeline = trace.spans.iter().find(|s| s.name == "pipeline").unwrap();
        assert!(pipeline.in_flight, "unclosed spans survive in the dump");
        assert_eq!(pipeline.path, "pipeline");
        let coloring = trace.spans.iter().find(|s| s.name == "coloring").unwrap();
        assert!(!coloring.in_flight);
        assert_eq!(coloring.path, "pipeline/coloring", "path rebuilt from the parent chain");
        assert_eq!(coloring.parent, Some(pipeline.id));
    }

    #[test]
    fn orphans_and_detached_attrs_are_counted_not_fatal() {
        let text = concat!(
            "{\"us\": 5, \"ev\": \"span\", \"id\": 9, \"parent\": 7, \"name\": \"leaf\", ",
            "\"path\": \"leaf\", \"wall_us\": 5, \"tid\": 1}\n",
            "{\"us\": 6, \"ev\": \"attr\", \"id\": 1234, \"key\": \"gone\", \"value\": 1}\n",
        );
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.orphans().len(), 1);
        assert_eq!(trace.detached_attrs, 1);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = Trace::parse("{\"ev\": \"span\"}").unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
        let err = Trace::parse("{\"us\": 1, \"ev\": \"warp\"}").unwrap_err();
        assert!(err.to_string().contains("warp"));
        assert!(Trace::parse("not json").is_err());
    }
}
