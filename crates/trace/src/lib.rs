//! # anonet-trace
//!
//! The trace analysis toolchain: everything downstream of a JSONL trace
//! emitted by `anonet-obs` — the streaming
//! [`JsonlRecorder`](anonet_obs::JsonlRecorder) of a live run or the
//! crash dump of a [`FlightRecorder`](anonet_obs::FlightRecorder) ring.
//!
//! The [`model`] module parses either format back into a causal
//! [`Trace`]: spans with their stable ids, explicit parent links,
//! `/`-joined paths (reconstructed from the parent chain when a crash
//! dump omits them), reconstructed start times (`us - wall_us`; close
//! lines carry end times), attached attributes, and the counter and
//! histogram event streams. On top of the model sit four analyses:
//!
//! * [`perfetto`] — Chrome/Perfetto `trace_event` JSON export (`"X"`
//!   complete events per span, `"C"` counter tracks), loadable in
//!   `ui.perfetto.dev` or `chrome://tracing`;
//! * [`flame`] — folded-stack output (`a;b;c self_us`) for any
//!   flamegraph renderer, self time = wall minus children;
//! * [`critical`] — the heaviest root-to-leaf chain by wall time, with
//!   scheduler queue wait (the `queue_wait_us` span attribute)
//!   attributed separately from compute, plus root/orphan accounting;
//! * [`diff`] — per-path span aggregates of two traces side by side,
//!   for spotting where a run's time moved.
//!
//! The `anonet-trace` binary exposes all four:
//!
//! ```text
//! anonet-trace perfetto TRACE [--out PATH]
//! anonet-trace flame    TRACE [--out PATH]
//! anonet-trace critical TRACE [--out PATH] [--json]
//! anonet-trace diff     TRACE BASELINE [--out PATH] [--json]
//! ```
//!
//! Everything round-trips through the workspace's one shared
//! [`Json`](anonet_obs::Json) serializer/parser — no external
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod critical;
pub mod diff;
pub mod flame;
pub mod model;
pub mod perfetto;

pub use critical::{critical_path, CriticalReport, CriticalStep};
pub use diff::{diff_traces, DiffRow};
pub use model::{CounterEvent, FlightSummary, HistEvent, SpanRec, Trace};

/// Errors surfaced by trace parsing and the CLI.
#[derive(Debug)]
pub enum TraceError {
    /// A trace line failed to parse or lacked a required field.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// Reading or writing a file failed.
    Io {
        /// What was being accessed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, detail } => write!(f, "trace line {line}: {detail}"),
            TraceError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::Parse { .. } => None,
        }
    }
}

/// Convenient alias for results with [`TraceError`].
pub type Result<T> = std::result::Result<T, TraceError>;
