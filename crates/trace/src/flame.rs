//! Folded-stack flamegraph output.
//!
//! The classic `flamegraph.pl` / `inferno` input format: one line per
//! distinct stack, `frame;frame;frame value`, where the value is the
//! stack's **self time** in microseconds — wall time minus the wall time
//! of its children, clamped at zero (children recorded on other threads
//! can overlap their parent, so the subtraction can go negative; clamping
//! keeps the graph truthful about where time was *not* further
//! attributed). Span paths are already `/`-joined causal chains, so the
//! fold is a separator swap plus aggregation.
//!
//! In-flight spans (crash dumps) carry no wall time and are skipped.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::model::Trace;

/// Aggregated folded stacks, sorted by stack string (deterministic).
pub fn folded_stacks(trace: &Trace) -> Vec<(String, u64)> {
    // Children wall totals by parent id, for self-time subtraction.
    let mut child_wall: HashMap<u64, u64> = HashMap::new();
    for span in &trace.spans {
        if let Some(p) = span.parent {
            *child_wall.entry(p).or_insert(0) += span.wall_us;
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in &trace.spans {
        if span.in_flight {
            continue;
        }
        let self_us = span.wall_us.saturating_sub(child_wall.get(&span.id).copied().unwrap_or(0));
        *stacks.entry(span.path.replace('/', ";")).or_insert(0) += self_us;
    }
    stacks.into_iter().collect()
}

/// Renders folded stacks as `flamegraph.pl` input text.
pub fn render(stacks: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, value) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_obs::{JsonlRecorder, Span};

    #[test]
    fn folds_paths_and_subtracts_children() {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let outer = Span::new(&rec, "astar");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _g = Span::child_of(&rec, "update_graph", outer.context());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let trace = Trace::parse(&buf.contents()).unwrap();
        let stacks = folded_stacks(&trace);
        let as_map: std::collections::HashMap<&str, u64> =
            stacks.iter().map(|(s, v)| (s.as_str(), *v)).collect();
        let child = as_map["astar;update_graph"];
        let parent_self = as_map["astar"];
        let parent_wall = trace.spans.iter().find(|s| s.name == "astar").unwrap().wall_us;
        assert!(child >= 1000, "child ran for at least its sleep");
        assert_eq!(parent_self, parent_wall - child, "self = wall - children");
        let text = render(&stacks);
        assert!(text.lines().any(|l| l.starts_with("astar;update_graph ")));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn repeated_stacks_aggregate() {
        let (rec, buf) = JsonlRecorder::buffered();
        for _ in 0..3 {
            let _leaf = Span::new(&rec, "tick");
        }
        let trace = Trace::parse(&buf.contents()).unwrap();
        let stacks = folded_stacks(&trace);
        assert_eq!(stacks.len(), 1, "three closes of one path fold to one line");
    }
}
