//! Cross-run trace diffing.
//!
//! Aggregates both traces per causal path — span count and total wall —
//! and lines the aggregates up over the union of paths, so a run can be
//! compared against a saved baseline: which phase got slower, which
//! spans appeared or vanished, how the job count shifted. The ratio
//! column is `total_us / base_total_us` (infinite when the path is new,
//! zero when it vanished), which makes regressions greppable.
//!
//! In-flight spans carry no wall time and are excluded — a crash dump
//! diffed against a healthy baseline should show where time *stopped*
//! accruing, not fabricate durations.

use std::collections::BTreeMap;

use anonet_obs::Json;

use crate::model::Trace;

/// One path's aggregates in the current trace vs the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// The `/`-joined causal path.
    pub path: String,
    /// Span count in the current trace.
    pub count: u64,
    /// Total wall in the current trace, microseconds.
    pub total_us: u64,
    /// Span count in the baseline.
    pub base_count: u64,
    /// Total wall in the baseline, microseconds.
    pub base_total_us: u64,
}

impl DiffRow {
    /// `total_us / base_total_us`; infinite for new paths, zero for
    /// vanished ones, 1.0 when both sides are empty.
    pub fn ratio(&self) -> f64 {
        match (self.total_us, self.base_total_us) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (t, b) => t as f64 / b as f64,
        }
    }
}

fn aggregate(trace: &Trace) -> BTreeMap<String, (u64, u64)> {
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for span in trace.spans.iter().filter(|s| !s.in_flight) {
        let entry = agg.entry(span.path.clone()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += span.wall_us;
    }
    agg
}

/// Diffs `trace` against `baseline`, one row per path in either trace,
/// sorted by path (deterministic).
pub fn diff_traces(trace: &Trace, baseline: &Trace) -> Vec<DiffRow> {
    let cur = aggregate(trace);
    let base = aggregate(baseline);
    let mut paths: Vec<&String> = cur.keys().chain(base.keys()).collect();
    paths.sort();
    paths.dedup();
    paths
        .into_iter()
        .map(|path| {
            let (count, total_us) = cur.get(path).copied().unwrap_or((0, 0));
            let (base_count, base_total_us) = base.get(path).copied().unwrap_or((0, 0));
            DiffRow { path: path.clone(), count, total_us, base_count, base_total_us }
        })
        .collect()
}

/// Renders diff rows as a plain-text table, worst ratio first.
pub fn render(rows: &[DiffRow]) -> String {
    let mut sorted: Vec<&DiffRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()).then(a.path.cmp(&b.path)));
    let mut out = String::from("ratio     current(us x count)  baseline(us x count)  path\n");
    for row in sorted {
        let ratio = if row.ratio().is_infinite() {
            "     new".to_string()
        } else {
            format!("{:8.2}", row.ratio())
        };
        out.push_str(&format!(
            "{}  {:>12} x{:<5}  {:>13} x{:<5}  {}\n",
            ratio, row.total_us, row.count, row.base_total_us, row.base_count, row.path
        ));
    }
    out
}

/// The rows as [`Json`] (an array, in path order).
pub fn to_json(rows: &[DiffRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| {
                Json::obj([
                    ("path", Json::str(row.path.as_str())),
                    ("count", Json::from(row.count)),
                    ("total_us", Json::from(row.total_us)),
                    ("base_count", Json::from(row.base_count)),
                    ("base_total_us", Json::from(row.base_total_us)),
                    (
                        "ratio",
                        if row.ratio().is_finite() { Json::from(row.ratio()) } else { Json::Null },
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_obs::{JsonlRecorder, Span};

    fn trace_with(jobs: usize, sleep_ms: u64) -> Trace {
        let (rec, buf) = JsonlRecorder::buffered();
        {
            let run = Span::new(&rec, "batch_run");
            for _ in 0..jobs {
                let _job = Span::child_of(&rec, "job", run.context());
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
            }
        }
        Trace::parse(&buf.contents()).unwrap()
    }

    #[test]
    fn unions_paths_and_computes_ratios() {
        let current = trace_with(4, 2);
        let baseline = trace_with(2, 1);
        let rows = diff_traces(&current, &baseline);
        assert_eq!(rows.len(), 2);
        let job = rows.iter().find(|r| r.path == "batch_run/job").unwrap();
        assert_eq!((job.count, job.base_count), (4, 2));
        assert!(job.ratio() > 1.0, "4x2ms vs 2x1ms must regress");
        let text = render(&rows);
        assert!(text.lines().count() == 3 && text.contains("batch_run/job"));
        let json = to_json(&rows);
        let reparsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(reparsed.items().unwrap().len(), 2);
    }

    #[test]
    fn new_and_vanished_paths_are_kept() {
        let current = trace_with(1, 0);
        let baseline = {
            let (rec, buf) = JsonlRecorder::buffered();
            {
                let _old = Span::new(&rec, "legacy_phase");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Trace::parse(&buf.contents()).unwrap()
        };
        let rows = diff_traces(&current, &baseline);
        let legacy = rows.iter().find(|r| r.path == "legacy_phase").unwrap();
        assert_eq!(legacy.count, 0);
        assert_eq!(legacy.ratio(), 0.0, "vanished path ratio is zero");
        let fresh = rows.iter().find(|r| r.path == "batch_run").unwrap();
        assert_eq!(fresh.base_count, 0);
        assert!(fresh.ratio().is_infinite() || fresh.total_us == 0);
    }
}
