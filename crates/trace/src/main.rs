//! `anonet-trace` — analyze JSONL traces from `anonet-obs`.
//!
//! ```text
//! anonet-trace perfetto TRACE [--out PATH]
//! anonet-trace flame    TRACE [--out PATH]
//! anonet-trace critical TRACE [--out PATH] [--json]
//! anonet-trace diff     TRACE BASELINE [--out PATH] [--json]
//! ```
//!
//! `perfetto` always emits JSON (load it in `ui.perfetto.dev`), `flame`
//! always emits folded-stack text; `critical` and `diff` render text by
//! default and JSON with `--json`. Output goes to stdout unless `--out`
//! is given. Exit 2 is an operational error (bad flags, unreadable or
//! malformed trace).

use std::path::PathBuf;
use std::process::ExitCode;

use anonet_trace::{critical, diff, flame, model::Trace, perfetto, TraceError};

fn usage() -> String {
    "usage: anonet-trace perfetto TRACE [--out PATH]\n       \
     anonet-trace flame    TRACE [--out PATH]\n       \
     anonet-trace critical TRACE [--out PATH] [--json]\n       \
     anonet-trace diff     TRACE BASELINE [--out PATH] [--json]"
        .to_string()
}

struct Options {
    inputs: Vec<PathBuf>,
    out: Option<PathBuf>,
    json: bool,
}

fn parse(args: &mut std::env::Args) -> Result<Options, String> {
    let mut opts = Options { inputs: Vec::new(), out: None, json: false };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let value = args.next().ok_or("--out needs a value")?;
                opts.out = Some(PathBuf::from(value));
            }
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => opts.inputs.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

fn emit(opts: &Options, text: &str) -> Result<(), TraceError> {
    match &opts.out {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(|e| TraceError::Io {
                    context: format!("creating {}", parent.display()),
                    source: e,
                })?;
            }
            std::fs::write(path, text).map_err(|e| TraceError::Io {
                context: format!("writing {}", path.display()),
                source: e,
            })?;
            eprintln!("written to {}", path.display());
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run(command: &str, opts: &Options) -> Result<(), String> {
    let want = if command == "diff" { 2 } else { 1 };
    if opts.inputs.len() != want {
        return Err(format!("`{command}` takes {want} trace path(s)\n{}", usage()));
    }
    let trace = Trace::from_file(&opts.inputs[0]).map_err(|e| e.to_string())?;
    let text = match command {
        "perfetto" => {
            let mut text = perfetto::export(&trace).pretty();
            text.push('\n');
            text
        }
        "flame" => flame::render(&flame::folded_stacks(&trace)),
        "critical" => {
            let report = critical::critical_path(&trace);
            if opts.json {
                let mut text = critical::to_json(&report).pretty();
                text.push('\n');
                text
            } else {
                critical::render(&report)
            }
        }
        "diff" => {
            let baseline = Trace::from_file(&opts.inputs[1]).map_err(|e| e.to_string())?;
            let rows = diff::diff_traces(&trace, &baseline);
            if opts.json {
                let mut text = diff::to_json(&rows).pretty();
                text.push('\n');
                text
            } else {
                diff::render(&rows)
            }
        }
        other => return Err(format!("unknown command `{other}`\n{}", usage())),
    };
    emit(opts, &text).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let Some(command) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let opts = match parse(&mut args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&command, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
