//! Distributed verifiers — the decision-algorithm half of genuine
//! solvability (paper, Section 1.1, *Genuine Solvability*).
//!
//! GRAN membership requires not only a solver for `Π` but also an
//! anonymous algorithm for the decision problem `Δ_Π`. For the labeling
//! problems in this crate, instance membership is trivial (every connected
//! graph is an instance), and the interesting decisions are about
//! *candidate outputs*: these verifiers check a proposed solution
//! distributively — every node inspects its neighborhood and outputs
//! [`DecisionOutput::Yes`]/[`DecisionOutput::No`] such that a global "all
//! Yes" certifies validity.
//!
//! All verifiers are deterministic and port-oblivious.

use anonet_graph::Label;
use anonet_runtime::{Actions, DecisionOutput, ObliviousAlgorithm};

/// Distributed MIS verifier: input is `(in_mis,)` per node; round 1
/// exchanges membership; a node says **No** iff it is in the set next to
/// another member (independence) or outside the set with no member
/// neighbor (maximality).
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
/// use anonet_runtime::{run, DecisionOutput, ExecConfig, Oblivious, ZeroSource};
/// use anonet_algorithms::verify::MisVerifier;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::cycle(4)?.with_labels(vec![true, false, true, false])?;
/// let exec = run(&Oblivious(MisVerifier), &net, &mut ZeroSource, &ExecConfig::default())?;
/// assert!(exec.outputs_unwrapped().iter().all(|o| *o == DecisionOutput::Yes));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct MisVerifier;

impl ObliviousAlgorithm for MisVerifier {
    type Input = bool;
    type Message = bool;
    type Output = DecisionOutput;
    type State = bool;

    fn init(&self, input: &bool, _degree: usize) -> bool {
        *input
    }

    fn broadcast(&self, state: &bool) -> Option<bool> {
        Some(*state)
    }

    fn step(
        &self,
        state: bool,
        _round: usize,
        received: &[bool],
        _bit: bool,
        actions: &mut Actions<DecisionOutput>,
    ) -> bool {
        let member_neighbor = received.iter().any(|&m| m);
        let ok = if state {
            !member_neighbor // independence
        } else {
            member_neighbor // maximality (isolated nodes must be members)
        };
        actions.output(if ok { DecisionOutput::Yes } else { DecisionOutput::No });
        actions.halt();
        state
    }
}

/// Distributed proper-coloring (1-hop) verifier: a node says **No** iff a
/// neighbor shares its color. One round, deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColoringVerifier<C> {
    _marker: std::marker::PhantomData<fn() -> C>,
}

impl<C> ColoringVerifier<C> {
    /// Creates the verifier.
    pub fn new() -> Self {
        ColoringVerifier { _marker: std::marker::PhantomData }
    }
}

impl<C: Label> ObliviousAlgorithm for ColoringVerifier<C> {
    type Input = C;
    type Message = C;
    type Output = DecisionOutput;
    type State = C;

    fn init(&self, input: &C, _degree: usize) -> C {
        input.clone()
    }

    fn broadcast(&self, state: &C) -> Option<C> {
        Some(state.clone())
    }

    fn step(
        &self,
        state: C,
        _round: usize,
        received: &[C],
        _bit: bool,
        actions: &mut Actions<DecisionOutput>,
    ) -> C {
        let clash = received.contains(&state);
        actions.output(if clash { DecisionOutput::No } else { DecisionOutput::Yes });
        actions.halt();
        state
    }
}

/// State of [`TwoHopColoringVerifier`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TwoHopVerifierState<C> {
    color: C,
    /// Sorted colors of the direct neighborhood (relayed in round 2).
    table: Vec<C>,
    verdict: Option<DecisionOutput>,
}

/// Distributed 2-hop coloring verifier. Two rounds:
///
/// 1. exchange colors — a direct clash is a **No**;
/// 2. exchange neighborhood tables — a node says **No** if its own color
///    appears **at least twice** in some neighbor's table (it accounts for
///    exactly one entry itself: the multiplicity argument of the paper's
///    "no port numbers needed" remark).
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoHopColoringVerifier<C> {
    _marker: std::marker::PhantomData<fn() -> C>,
}

impl<C> TwoHopColoringVerifier<C> {
    /// Creates the verifier.
    pub fn new() -> Self {
        TwoHopColoringVerifier { _marker: std::marker::PhantomData }
    }
}

/// Messages of [`TwoHopColoringVerifier`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum TwoHopVerifierMessage<C> {
    /// Round 1: my color.
    Color(C),
    /// Round 2: my neighborhood's colors (sorted).
    Table(Vec<C>),
}

impl<C: Label> ObliviousAlgorithm for TwoHopColoringVerifier<C> {
    type Input = C;
    type Message = TwoHopVerifierMessage<C>;
    type Output = DecisionOutput;
    type State = TwoHopVerifierState<C>;

    fn init(&self, input: &C, _degree: usize) -> Self::State {
        TwoHopVerifierState { color: input.clone(), table: Vec::new(), verdict: None }
    }

    fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
        if state.table.is_empty() && state.verdict.is_none() {
            Some(TwoHopVerifierMessage::Color(state.color.clone()))
        } else {
            Some(TwoHopVerifierMessage::Table(state.table.clone()))
        }
    }

    fn step(
        &self,
        mut state: Self::State,
        round: usize,
        received: &[Self::Message],
        _bit: bool,
        actions: &mut Actions<DecisionOutput>,
    ) -> Self::State {
        match round {
            1 => {
                let mut clash = false;
                let mut table = Vec::with_capacity(received.len());
                for m in received {
                    if let TwoHopVerifierMessage::Color(c) = m {
                        clash |= *c == state.color;
                        table.push(c.clone());
                    }
                }
                table.sort();
                state.table = table;
                if clash {
                    state.verdict = Some(DecisionOutput::No);
                }
            }
            2 => {
                let mut clash = state.verdict == Some(DecisionOutput::No);
                for m in received {
                    if let TwoHopVerifierMessage::Table(t) = m {
                        let occurrences = t.iter().filter(|c| **c == state.color).count();
                        clash |= occurrences >= 2;
                    }
                }
                let verdict = if clash { DecisionOutput::No } else { DecisionOutput::Yes };
                actions.output(verdict);
                actions.halt();
                state.verdict = Some(verdict);
            }
            _ => unreachable!("verifier halts in round 2"),
        }
        state
    }
}

/// Aggregates distributed verdicts: valid iff **all** nodes said Yes.
pub fn accepted(outputs: &[DecisionOutput]) -> bool {
    outputs.iter().all(|o| *o == DecisionOutput::Yes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{coloring, generators, Graph, LabeledGraph};
    use anonet_runtime::{run, ExecConfig, Oblivious, RngSource, ZeroSource};

    fn verdicts_mis(g: &Graph, membership: Vec<bool>) -> bool {
        let net = g.with_labels(membership).unwrap();
        let exec =
            run(&Oblivious(MisVerifier), &net, &mut ZeroSource, &ExecConfig::default()).unwrap();
        accepted(&exec.outputs_unwrapped())
    }

    #[test]
    fn mis_verifier_accepts_valid_sets() {
        let g = generators::cycle(6).unwrap();
        assert!(verdicts_mis(&g, vec![true, false, true, false, true, false]));
        assert!(verdicts_mis(&g, vec![true, false, false, true, false, false]));
    }

    #[test]
    fn mis_verifier_rejects_dependence_and_nonmaximality() {
        let g = generators::cycle(6).unwrap();
        // Adjacent members.
        assert!(!verdicts_mis(&g, vec![true, true, false, false, true, false]));
        // Uncovered node (1 and its neighbors all out... node 3 far from any member).
        assert!(!verdicts_mis(&g, vec![true, false, false, false, false, false]));
        // Empty set on a non-empty graph.
        assert!(!verdicts_mis(&g, vec![false; 6]));
    }

    #[test]
    fn coloring_verifier_matches_centralized_check() {
        let g = generators::petersen();
        let good = coloring::greedy_k_hop_coloring(&g, 1);
        let exec = run(
            &Oblivious(ColoringVerifier::<u32>::new()),
            &good,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(accepted(&exec.outputs_unwrapped()));

        let bad = g.with_uniform_label(1u32);
        let exec = run(
            &Oblivious(ColoringVerifier::<u32>::new()),
            &bad,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(!accepted(&exec.outputs_unwrapped()));
    }

    fn two_hop_accepts(net: &LabeledGraph<u32>) -> bool {
        let exec = run(
            &Oblivious(TwoHopColoringVerifier::<u32>::new()),
            net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        accepted(&exec.outputs_unwrapped())
    }

    #[test]
    fn two_hop_verifier_agrees_with_centralized_check_on_many_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let mut graphs = vec![
            generators::cycle(6).unwrap(),
            generators::path(7).unwrap(),
            generators::petersen(),
            generators::grid(3, 3, false).unwrap(),
        ];
        for _ in 0..3 {
            graphs.push(generators::gnp_connected(10, 0.3, &mut rng).unwrap());
        }
        for g in graphs {
            // A valid 2-hop coloring must be accepted.
            let good = coloring::greedy_two_hop_coloring(&g);
            assert!(two_hop_accepts(&good), "rejected a valid coloring on {g}");
            // Copying one node's color onto a random distance-2 node must
            // be rejected.
            let pairs = anonet_graph::distance::pairs_within(&g, 2);
            let (u, v) = pairs[0];
            let bad = good.with_label_at(v, *good.label(u));
            assert!(!two_hop_accepts(&bad), "accepted an invalid coloring on {g}");
        }
    }

    #[test]
    fn two_hop_verifier_accepts_las_vegas_outputs() {
        let g = generators::grid(3, 4, false).unwrap();
        let net = g.with_uniform_label(());
        let exec = run(
            &Oblivious(crate::two_hop_coloring::TwoHopColoring::new()),
            &net,
            &mut RngSource::seeded(8),
            &ExecConfig::default(),
        )
        .unwrap();
        let colored = g.with_labels(exec.outputs_unwrapped()).unwrap();
        let exec = run(
            &Oblivious(TwoHopColoringVerifier::<anonet_graph::BitString>::new()),
            &colored,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(accepted(&exec.outputs_unwrapped()));
    }
}
