//! Las-Vegas anonymous maximal independent set (paper, Section 1:
//! "the extensively studied MIS problem is solvable in an anonymous
//! network only if random bits are available").
//!
//! # Protocol
//!
//! The classic coin-tossing MIS, phrased for one random bit per round.
//! Iterations of three rounds:
//!
//! 1. **Toss** — every active node draws a bit and broadcasts it;
//! 2. **Join** — a node that drew 1 while all its active neighbors drew 0
//!    joins the MIS and announces it;
//! 3. **Retire** — active neighbors of joiners leave the contest and
//!    announce that, letting everyone track who is still active.
//!
//! Every iteration, an active component has positive probability of
//! producing a joiner (e.g. exactly one node tossing 1), so the algorithm
//! terminates with probability 1; the output is always independent and
//! maximal by construction (Las-Vegas).

use anonet_runtime::{Actions, ObliviousAlgorithm};

/// Where a node stands in the contest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MisStatus {
    /// Still competing.
    Active,
    /// Entered the MIS.
    Joined,
    /// Has a neighbor in the MIS.
    Retired,
}

/// Messages exchanged: the phase tag keeps lockstep explicit.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MisMessage {
    /// Phase 1: my coin for this iteration (only active nodes toss).
    Toss(bool),
    /// Phase 2: whether I joined this iteration.
    Join(bool),
    /// Phase 3: my status after retirement propagation.
    Status(MisStatus),
}

/// Local state of [`RandomizedMis`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MisState {
    status: MisStatus,
    /// My coin this iteration (while active).
    coin: bool,
    /// Number of neighbors known to be still active.
    active_neighbors: usize,
    /// Pending message for the next compose.
    outgoing: MisMessage,
    /// Whether every neighbor has settled (for halting).
    neighbors_settled: bool,
}

impl MisState {
    /// Current status.
    pub fn status(&self) -> MisStatus {
        self.status
    }
}

/// The Las-Vegas anonymous MIS algorithm.
///
/// * **Input**: ignored (`()`).
/// * **Output**: `true` iff the node is in the MIS; the output set is
///   always independent and maximal.
///
/// # Example
///
/// ```
/// use anonet_graph::generators;
/// use anonet_runtime::{run, ExecConfig, Oblivious, RngSource};
/// use anonet_algorithms::{mis::RandomizedMis, problems::MisProblem};
/// use anonet_runtime::Problem;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::cycle(8)?.with_uniform_label(());
/// let exec = run(&Oblivious(RandomizedMis::new()), &net,
///                &mut RngSource::seeded(3), &ExecConfig::default())?;
/// assert!(MisProblem.is_valid_output(&net, &exec.outputs_unwrapped()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomizedMis;

impl RandomizedMis {
    /// Creates the algorithm.
    pub fn new() -> Self {
        RandomizedMis
    }
}

impl ObliviousAlgorithm for RandomizedMis {
    type Input = ();
    type Message = MisMessage;
    type Output = bool;
    type State = MisState;

    fn init(&self, _input: &(), degree: usize) -> MisState {
        MisState {
            status: MisStatus::Active,
            coin: false,
            active_neighbors: degree,
            outgoing: MisMessage::Toss(false), // overwritten before use
            neighbors_settled: false,
        }
    }

    fn broadcast(&self, state: &MisState) -> Option<MisMessage> {
        Some(state.outgoing.clone())
    }

    fn step(
        &self,
        mut state: MisState,
        round: usize,
        received: &[MisMessage],
        bit: bool,
        actions: &mut Actions<bool>,
    ) -> MisState {
        // Rounds are 1-indexed; round 1 is a warm-up in which the
        // placeholder Toss(false) messages circulate and every node draws
        // its first real coin for the iteration starting at round 2.
        match round % 3 {
            1 => {
                // Prepare phase 1 of the next iteration: toss.
                if state.status == MisStatus::Active {
                    state.coin = bit;
                    state.outgoing = MisMessage::Toss(state.coin);
                } else {
                    state.outgoing = MisMessage::Status(state.status);
                }
            }
            2 => {
                // Received the tosses; decide joining.
                if state.status == MisStatus::Active {
                    let someone_active_tossed_one =
                        received.iter().any(|m| matches!(m, MisMessage::Toss(true)));
                    if state.coin && !someone_active_tossed_one {
                        state.status = MisStatus::Joined;
                        actions.output(true);
                    }
                }
                state.outgoing = MisMessage::Join(state.status == MisStatus::Joined);
            }
            0 => {
                // Received the join announcements; retire.
                if state.status == MisStatus::Active
                    && received.iter().any(|m| matches!(m, MisMessage::Join(true)))
                {
                    state.status = MisStatus::Retired;
                    actions.output(false);
                }
                state.outgoing = MisMessage::Status(state.status);
            }
            _ => unreachable!("round % 3 is exhaustive"),
        }

        // Settlement tracking: in the status phase everyone reports; halt
        // once this node and all neighbors are settled.
        if round % 3 == 1 && round > 1 {
            // The messages received this round are Status reports.
            state.neighbors_settled = received
                .iter()
                .all(|m| matches!(m, MisMessage::Status(MisStatus::Joined | MisStatus::Retired)));
            if state.status != MisStatus::Active && state.neighbors_settled {
                actions.halt();
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::MisProblem;
    use anonet_graph::{generators, Graph};
    use anonet_runtime::{run, ExecConfig, Oblivious, Problem, RngSource, Status};

    fn solve(g: &Graph, seed: u64) -> Vec<bool> {
        let net = g.with_uniform_label(());
        let exec = run(
            &Oblivious(RandomizedMis::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(exec.status(), Status::Completed);
        assert!(exec.is_successful());
        exec.outputs_unwrapped()
    }

    fn assert_valid_mis(g: &Graph, output: &[bool]) {
        let net = g.with_uniform_label(());
        assert!(MisProblem.is_valid_output(&net, output), "invalid MIS on {g}: {output:?}");
    }

    #[test]
    fn solves_cycles() {
        for n in [3usize, 4, 7, 12] {
            let g = generators::cycle(n).unwrap();
            for seed in 0..5 {
                assert_valid_mis(&g, &solve(&g, seed));
            }
        }
    }

    #[test]
    fn solves_varied_families() {
        let graphs = vec![
            generators::path(10).unwrap(),
            generators::complete(5).unwrap(),
            generators::star(9).unwrap(),
            generators::petersen(),
            generators::grid(4, 4, false).unwrap(),
        ];
        for g in graphs {
            for seed in 0..3 {
                assert_valid_mis(&g, &solve(&g, seed));
            }
        }
    }

    #[test]
    fn complete_graph_mis_is_single_node() {
        let g = generators::complete(6).unwrap();
        let out = solve(&g, 4);
        assert_eq!(out.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn single_node_joins() {
        let g = Graph::builder(1).build().unwrap();
        assert_eq!(solve(&g, 0), vec![true]);
    }

    #[test]
    fn reproducible_per_seed() {
        let g = generators::petersen();
        assert_eq!(solve(&g, 42), solve(&g, 42));
    }
}
