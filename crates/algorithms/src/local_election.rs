//! k-local election (paper, Section 1.3, citing Métivier–Saheb–Zemmari):
//! electing *local* leaders that are unique only up to distance `k`.
//!
//! Given a 2-hop coloring, the nodes whose color is minimal within their
//! `k`-ball form a clean local-leader set for `k ≤ 2`:
//!
//! * **k-independence** — two leaders are more than `k` hops apart:
//!   if `d(u, v) ≤ k ≤ 2`, each lies in the other's ball, so mutual
//!   minimality forces `c(u) = c(v)`, impossible within 2 hops of each
//!   other under a 2-hop coloring;
//! * **non-emptiness** — the globally minimal color is always a leader.
//!
//! For `k > 2` the same construction breaks down for exactly the reason
//! the paper's Section 1.2 highlights: colors may repeat at distance
//! `> 2`, and in fact *no* anonymous algorithm can elect `k`-local
//! leaders in general (experiment E12's lifting certificate). This module
//! is therefore restricted to `k ∈ {1, 2}` — the frontier the paper draws.
//!
//! The protocol floods the color *set* of the `k`-ball for `k` rounds
//! (sets suffice for minima, sidestepping the self-exclusion issue of
//! multiset gathering) and outputs `true` iff the node's own color is the
//! strict minimum.

use std::collections::BTreeSet;
use std::marker::PhantomData;

use anonet_graph::{distance, Label, LabeledGraph, NodeId};
use anonet_runtime::{Actions, ObliviousAlgorithm, Problem};

/// Local state of [`KLocalElection`]: the colors seen within the rounds
/// elapsed so far.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KLocalState<C: Ord> {
    own: C,
    seen: BTreeSet<C>,
}

/// The k-local election algorithm (`k ∈ {1, 2}`) on properly 2-hop
/// colored inputs. Deterministic; `k + 1` rounds.
///
/// * **Input**: the node's color under a 2-hop coloring.
/// * **Output**: `true` iff the node's color is minimal in its `k`-ball.
#[derive(Clone, Copy, Debug)]
pub struct KLocalElection<C> {
    k: usize,
    _marker: PhantomData<fn() -> C>,
}

impl<C> KLocalElection<C> {
    /// Creates the algorithm for radius `k`.
    ///
    /// # Panics
    ///
    /// Panics for `k = 0` or `k > 2` — the construction is only sound up
    /// to the 2-hop coloring's reach (see the module docs).
    pub fn new(k: usize) -> Self {
        assert!((1..=2).contains(&k), "k-local election requires k in {{1, 2}}, got {k}");
        KLocalElection { k, _marker: PhantomData }
    }

    /// The radius.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl<C: Label> ObliviousAlgorithm for KLocalElection<C> {
    type Input = C;
    type Message = BTreeSet<C>;
    type Output = bool;
    type State = KLocalState<C>;

    fn init(&self, input: &C, _degree: usize) -> Self::State {
        KLocalState { own: input.clone(), seen: BTreeSet::from([input.clone()]) }
    }

    fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
        Some(state.seen.clone())
    }

    fn step(
        &self,
        mut state: Self::State,
        round: usize,
        received: &[Self::Message],
        _bit: bool,
        actions: &mut Actions<bool>,
    ) -> Self::State {
        // After round r, `seen` = colors within r hops.
        if round <= self.k {
            for set in received {
                state.seen.extend(set.iter().cloned());
            }
        }
        if round == self.k {
            let min = state.seen.iter().next().expect("own color is present");
            actions.output(*min == state.own);
            actions.halt();
        }
        state
    }
}

/// The k-local minima problem specification: outputs must mark exactly
/// the nodes whose input color is minimal within their `k`-ball. Valid
/// instances are 2-hop colored graphs.
#[derive(Clone, Copy, Debug)]
pub struct KLocalMinimaProblem {
    /// The ball radius.
    pub k: usize,
}

impl KLocalMinimaProblem {
    fn expected<C: Label>(&self, instance: &LabeledGraph<C>) -> Vec<bool> {
        instance
            .graph()
            .nodes()
            .map(|v| {
                distance::ball(instance.graph(), v, self.k)
                    .into_iter()
                    .all(|u| instance.label(v) <= instance.label(u))
            })
            .collect()
    }
}

impl Problem for KLocalMinimaProblem {
    type Input = u32;
    type Output = bool;

    fn is_instance(&self, instance: &LabeledGraph<u32>) -> bool {
        anonet_graph::coloring::is_two_hop_coloring(instance)
    }

    fn is_valid_output(&self, instance: &LabeledGraph<u32>, output: &[bool]) -> bool {
        output == self.expected(instance)
    }
}

/// Centralized reference: the expected k-ball minima of a colored graph.
pub fn k_ball_minima<C: Label>(instance: &LabeledGraph<C>, k: usize) -> Vec<NodeId> {
    instance
        .graph()
        .nodes()
        .filter(|&v| {
            distance::ball(instance.graph(), v, k)
                .into_iter()
                .all(|u| instance.label(v) <= instance.label(u))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{coloring, generators, Graph};
    use anonet_runtime::{run, ExecConfig, Oblivious, ZeroSource};

    fn solve(net: &LabeledGraph<u32>, k: usize) -> Vec<bool> {
        let exec = run(
            &Oblivious(KLocalElection::<u32>::new(k)),
            net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(exec.is_successful());
        assert_eq!(exec.rounds(), k);
        exec.outputs_unwrapped()
    }

    fn check(g: &Graph, k: usize) {
        let net = coloring::greedy_two_hop_coloring(g);
        let output = solve(&net, k);
        let problem = KLocalMinimaProblem { k };
        assert!(problem.is_instance(&net));
        assert!(problem.is_valid_output(&net, &output), "wrong minima on {g} at k={k}");
        // k-independence and non-emptiness.
        let leaders = k_ball_minima(&net, k);
        assert!(!leaders.is_empty());
        for &u in &leaders {
            for &v in &leaders {
                if u != v {
                    let d = anonet_graph::distance::distance(g, u, v).unwrap();
                    assert!(d > k, "leaders {u}, {v} at distance {d} <= {k}");
                }
            }
        }
    }

    #[test]
    fn elects_on_standard_families() {
        for g in [
            generators::cycle(9).unwrap(),
            generators::path(8).unwrap(),
            generators::petersen(),
            generators::grid(3, 4, false).unwrap(),
            generators::hypercube(3).unwrap(),
        ] {
            check(&g, 1);
            check(&g, 2);
        }
    }

    #[test]
    fn globally_minimal_color_always_leads() {
        let g = generators::cycle(7).unwrap();
        let net = coloring::greedy_two_hop_coloring(&g);
        let min_node = g.nodes().min_by_key(|&v| net.label(v)).unwrap();
        for k in 1..=2 {
            assert!(solve(&net, k)[min_node.index()]);
        }
    }

    #[test]
    #[should_panic(expected = "k in {1, 2}")]
    fn k_three_is_rejected() {
        let _ = KLocalElection::<u32>::new(3);
    }

    #[test]
    fn invalid_colorings_are_not_instances() {
        let g = generators::cycle(4).unwrap().with_labels(vec![1u32, 2, 1, 2]).unwrap();
        assert!(!KLocalMinimaProblem { k: 2 }.is_instance(&g));
    }
}
