//! Las-Vegas anonymous greedy graph coloring (1-hop), a second classic
//! GRAN member (paper, Section 1.3, citing [33]).
//!
//! # Protocol
//!
//! Iterations of `B + 1` rounds (`B = 16`): every active node spends `B`
//! rounds collecting one random bit per round (the paper's normalization)
//! into a candidate color `value mod (deg + 1)`, broadcasts the proposal,
//! and commits iff the proposal differs from every decided neighbor color
//! and every active neighbor's simultaneous proposal. Decided nodes keep
//! announcing their color; each node caches the decided colors it has
//! seen. Every iteration commits with positive probability (there is
//! always a free color in `0..=deg` by pigeonhole), so the algorithm is
//! Las-Vegas; committed colors are proper by construction.
//!
//! The output satisfies the *greedy bound* `o(v) ≤ deg(v)` — at most
//! `Δ + 1` colors overall.

use std::collections::BTreeSet;

use anonet_runtime::{Actions, ObliviousAlgorithm};

/// Bits per candidate draw; supports degrees below `2^16 - 1`.
const BITS: usize = 16;

/// Messages exchanged by [`RandomizedColoring`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ColoringMessage {
    /// Still undecided (keeps neighbors from halting).
    Active,
    /// Proposal for this iteration's commit round.
    Propose(u32),
    /// Final color announcement.
    Decided(u32),
}

/// Local state of [`RandomizedColoring`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColoringState {
    degree: usize,
    color: Option<u32>,
    /// Bits collected toward the current candidate.
    buffer: u32,
    bits_collected: usize,
    /// This iteration's proposal (valid in the commit round).
    proposal: u32,
    /// Decided neighbor colors seen so far.
    taken: BTreeSet<u32>,
    /// Message to send next round.
    outgoing: ColoringMessage,
}

impl ColoringState {
    /// The committed color, if any.
    pub fn color(&self) -> Option<u32> {
        self.color
    }
}

/// The Las-Vegas anonymous greedy coloring algorithm.
///
/// * **Input**: ignored (`()`).
/// * **Output**: a `u32` color with `o(v) ≤ deg(v)` such that adjacent
///   nodes receive different colors.
///
/// # Panics
///
/// Node degrees must be below `2^16 - 1`; larger graphs exceed the
/// candidate space of the fixed 16-bit draw (an implementation limit far
/// beyond simulator scale).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomizedColoring;

impl RandomizedColoring {
    /// Creates the algorithm.
    pub fn new() -> Self {
        RandomizedColoring
    }
}

impl ObliviousAlgorithm for RandomizedColoring {
    type Input = ();
    type Message = ColoringMessage;
    type Output = u32;
    type State = ColoringState;

    fn init(&self, _input: &(), degree: usize) -> ColoringState {
        assert!(degree < (1 << BITS) - 1, "degree {degree} exceeds the {BITS}-bit candidate space");
        ColoringState {
            degree,
            color: None,
            buffer: 0,
            bits_collected: 0,
            proposal: 0,
            taken: BTreeSet::new(),
            outgoing: ColoringMessage::Active,
        }
    }

    fn broadcast(&self, state: &ColoringState) -> Option<ColoringMessage> {
        Some(state.outgoing.clone())
    }

    fn step(
        &self,
        mut state: ColoringState,
        round: usize,
        received: &[ColoringMessage],
        bit: bool,
        actions: &mut Actions<u32>,
    ) -> ColoringState {
        // Cache decided neighbor colors whenever we see them.
        for m in received {
            if let ColoringMessage::Decided(c) = m {
                state.taken.insert(*c);
            }
        }

        let phase = round % (BITS + 1); // 1..=BITS collect, 0 commit

        if state.color.is_none() {
            if phase == 0 {
                // Commit round: `received` holds neighbors' proposals.
                let conflicting = received
                    .iter()
                    .any(|m| matches!(m, ColoringMessage::Propose(p) if *p == state.proposal))
                    || state.taken.contains(&state.proposal);
                if !conflicting {
                    state.color = Some(state.proposal);
                    actions.output(state.proposal);
                }
                state.outgoing = match state.color {
                    Some(c) => ColoringMessage::Decided(c),
                    None => ColoringMessage::Active,
                };
                state.buffer = 0;
                state.bits_collected = 0;
            } else {
                // Collect a bit toward the candidate.
                state.buffer = (state.buffer << 1) | u32::from(bit);
                state.bits_collected += 1;
                if state.bits_collected == BITS {
                    state.proposal = state.buffer % (state.degree as u32 + 1);
                    state.outgoing = ColoringMessage::Propose(state.proposal);
                } else {
                    state.outgoing = ColoringMessage::Active;
                }
            }
        } else if let Some(c) = state.color {
            state.outgoing = ColoringMessage::Decided(c);
        }

        // Halting: decided, and every message this round came from a
        // decided node (silent ports belong to already-halted, hence
        // decided, neighbors). Checked outside commit rounds so proposals
        // don't mask decidedness.
        if phase != 0 && state.color.is_some() {
            let all_decided = received.iter().all(|m| matches!(m, ColoringMessage::Decided(_)));
            if all_decided {
                actions.halt();
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::GreedyColoringProblem;
    use anonet_graph::{generators, Graph};
    use anonet_runtime::{run, ExecConfig, Oblivious, Problem, RngSource, Status};

    fn solve(g: &Graph, seed: u64) -> Vec<u32> {
        let net = g.with_uniform_label(());
        let exec = run(
            &Oblivious(RandomizedColoring::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(exec.status(), Status::Completed, "did not complete on {g}");
        assert!(exec.is_successful());
        exec.outputs_unwrapped()
    }

    fn assert_valid(g: &Graph, colors: &[u32]) {
        let net = g.with_uniform_label(());
        assert!(
            GreedyColoringProblem.is_valid_output(&net, colors),
            "invalid coloring on {g}: {colors:?}"
        );
    }

    #[test]
    fn colors_cycles_and_paths() {
        for g in [generators::cycle(7).unwrap(), generators::path(9).unwrap()] {
            for seed in 0..4 {
                assert_valid(&g, &solve(&g, seed));
            }
        }
    }

    #[test]
    fn colors_dense_graphs() {
        for g in [generators::complete(5).unwrap(), generators::petersen()] {
            for seed in 0..3 {
                let colors = solve(&g, seed);
                assert_valid(&g, &colors);
            }
        }
    }

    #[test]
    fn respects_greedy_bound() {
        let g = generators::star(10).unwrap();
        let colors = solve(&g, 2);
        assert_valid(&g, &colors);
        // Leaves have degree 1: colors in {0, 1}.
        for &leaf_color in &colors[1..10] {
            assert!(leaf_color <= 1);
        }
    }

    #[test]
    fn single_node_gets_color_zero() {
        let g = Graph::builder(1).build().unwrap();
        assert_eq!(solve(&g, 0), vec![0]);
    }

    #[test]
    fn reproducible_per_seed() {
        let g = generators::grid(3, 3, false).unwrap();
        assert_eq!(solve(&g, 5), solve(&g, 5));
    }
}
