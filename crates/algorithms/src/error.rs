//! Error type for the algorithm library.

use std::error::Error;
use std::fmt;

/// Errors produced by the algorithm library's simulator-side helpers.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum AlgorithmError {
    /// Leader election was attempted on a non-prime labeled graph: two
    /// nodes share the same depth-∞ view, so no anonymous algorithm can
    /// separate them (the paper's Section 1.3 discussion).
    NotPrime {
        /// Two nodes with identical views.
        duplicate_views: (usize, usize),
    },
    /// An input labeling that was required to be a (k-hop) coloring is not.
    NotAColoring {
        /// The required coloring radius.
        hops: usize,
    },
    /// The underlying views machinery failed.
    Views(anonet_views::ViewError),
    /// The underlying runtime failed.
    Runtime(anonet_runtime::RuntimeError),
}

impl fmt::Display for AlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmError::NotPrime { duplicate_views: (u, v) } => {
                write!(
                    f,
                    "graph is not prime: nodes {u} and {v} have identical views, so leader election is impossible"
                )
            }
            AlgorithmError::NotAColoring { hops } => {
                write!(f, "input labeling is not a {hops}-hop coloring")
            }
            AlgorithmError::Views(e) => write!(f, "views error: {e}"),
            AlgorithmError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for AlgorithmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AlgorithmError::Views(e) => Some(e),
            AlgorithmError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anonet_views::ViewError> for AlgorithmError {
    fn from(e: anonet_views::ViewError) -> Self {
        AlgorithmError::Views(e)
    }
}

impl From<anonet_runtime::RuntimeError> for AlgorithmError {
    fn from(e: anonet_runtime::RuntimeError) -> Self {
        AlgorithmError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AlgorithmError::NotPrime { duplicate_views: (0, 3) };
        assert!(e.to_string().contains('0') && e.to_string().contains('3'));
        assert!(AlgorithmError::NotAColoring { hops: 2 }.to_string().contains("2-hop"));
    }
}
