//! # anonet-algorithms
//!
//! Anonymous distributed algorithms for the `anonet` workspace:
//!
//! * **Las-Vegas randomized algorithms** — witnesses that their problems
//!   lie in GRAN (paper, Section 1.1):
//!   [`TwoHopColoring`](two_hop_coloring::TwoHopColoring) (the generic
//!   preprocessing stage of Theorem 1),
//!   [`RandomizedMis`](mis::RandomizedMis), and
//!   [`RandomizedColoring`](coloring::RandomizedColoring);
//! * **deterministic counterparts** that consume a coloring —
//!   [`DeterministicMis`](det_mis::DeterministicMis) and
//!   [`DeterministicColoring`](det_coloring::DeterministicColoring) —
//!   illustrating the paper's thesis that a 2-hop coloring is all the
//!   symmetry breaking randomness ever buys;
//! * **leader election** ([`leader`]) via canonical views, with the prime /
//!   non-prime dichotomy that explains why leader election is *not* in
//!   GRAN;
//! * **distributed verifiers** ([`verify`]) — the decision-problem side of
//!   genuine solvability;
//! * **problem specifications** ([`problems`]) implementing
//!   [`Problem`](anonet_runtime::Problem) for each of the above.
//!
//! All randomized and deterministic solvers are *port-oblivious*
//! ([`ObliviousAlgorithm`](anonet_runtime::ObliviousAlgorithm)), the class
//! the derandomization machinery of `anonet-core` accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod det_coloring;
pub mod det_mis;
pub mod det_two_hop_reduction;
pub mod emulation;
mod error;
pub mod leader;
pub mod local_election;
pub mod matching;
pub mod mis;
pub mod monte_carlo;
pub mod problems;
pub mod two_hop_coloring;
pub mod verify;

pub use error::AlgorithmError;

/// Convenient alias for results with [`AlgorithmError`].
pub type Result<T> = std::result::Result<T, AlgorithmError>;
