//! Deterministic anonymous greedy coloring **given a proper coloring** —
//! color reduction: turns an arbitrary (possibly huge-palette) coloring,
//! such as the bitstring output of the randomized 2-hop coloring stage,
//! into a small-palette `o(v) ≤ deg(v)` coloring, deterministically.
//!
//! The input colors totally order each neighborhood (adjacent nodes have
//! distinct colors), inducing a local DAG: point each edge toward the
//! larger color. A node commits once all its in-neighbors (smaller-colored
//! neighbors) have committed, picking the smallest value not used by
//! committed neighbors. Chain length is bounded by the number of distinct
//! input colors, so the algorithm terminates deterministically.

use std::collections::BTreeSet;
use std::marker::PhantomData;

use anonet_graph::Label;
use anonet_runtime::{Actions, ObliviousAlgorithm};

/// Messages of [`DeterministicColoring`]: the sender's input color plus
/// its committed output color, if any.
pub type DetColoringMessage<C> = (C, Option<u32>);

/// Local state of [`DeterministicColoring`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DetColoringState<C> {
    input_color: C,
    output: Option<u32>,
    /// Output colors committed by neighbors, as last seen.
    neighbor_outputs: BTreeSet<u32>,
}

/// Deterministic anonymous color reduction.
///
/// * **Input**: the node's color under a proper 1-hop coloring (e.g. a
///   2-hop coloring computed by the randomized stage).
/// * **Output**: a `u32` color with `o(v) ≤ deg(v)`, adjacent nodes
///   distinct.
///
/// Deterministic: ignores its random bits.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeterministicColoring<C> {
    _marker: PhantomData<fn() -> C>,
}

impl<C> DeterministicColoring<C> {
    /// Creates the algorithm.
    pub fn new() -> Self {
        DeterministicColoring { _marker: PhantomData }
    }
}

impl<C: Label> ObliviousAlgorithm for DeterministicColoring<C> {
    type Input = C;
    type Message = DetColoringMessage<C>;
    type Output = u32;
    type State = DetColoringState<C>;

    fn init(&self, input: &C, _degree: usize) -> DetColoringState<C> {
        DetColoringState {
            input_color: input.clone(),
            output: None,
            neighbor_outputs: BTreeSet::new(),
        }
    }

    fn broadcast(&self, state: &DetColoringState<C>) -> Option<DetColoringMessage<C>> {
        Some((state.input_color.clone(), state.output))
    }

    fn step(
        &self,
        mut state: DetColoringState<C>,
        _round: usize,
        received: &[DetColoringMessage<C>],
        _bit: bool,
        actions: &mut Actions<u32>,
    ) -> DetColoringState<C> {
        for (_, out) in received {
            if let Some(c) = out {
                state.neighbor_outputs.insert(*c);
            }
        }

        if state.output.is_none() {
            let blocked = received.iter().any(|(c, out)| out.is_none() && *c < state.input_color);
            if !blocked {
                let color = (0u32..)
                    .find(|c| !state.neighbor_outputs.contains(c))
                    .expect("colors are unbounded");
                state.output = Some(color);
                actions.output(color);
            }
        }

        // Halt once this node and every (still audible) neighbor committed.
        if state.output.is_some() && received.iter().all(|(_, out)| out.is_some()) {
            actions.halt();
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::GreedyColoringProblem;
    use anonet_graph::{coloring, generators, BitString, Graph, LabeledGraph};
    use anonet_runtime::{run, ExecConfig, Oblivious, Problem, Status, ZeroSource};

    fn solve(net: &LabeledGraph<u32>) -> Vec<u32> {
        let exec = run(
            &Oblivious(DeterministicColoring::<u32>::new()),
            net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(exec.status(), Status::Completed);
        exec.outputs_unwrapped()
    }

    fn assert_valid(g: &Graph, colors: &[u32]) {
        let net = g.with_uniform_label(());
        assert!(
            GreedyColoringProblem.is_valid_output(&net, colors),
            "invalid reduced coloring: {colors:?}"
        );
    }

    #[test]
    fn reduces_wide_palettes() {
        let graphs = vec![
            generators::cycle(9).unwrap(),
            generators::path(8).unwrap(),
            generators::petersen(),
            generators::grid(3, 4, false).unwrap(),
        ];
        for g in graphs {
            // Wide input palette: distinct labels 100, 200, ...
            let wide: Vec<u32> = (0..g.node_count() as u32).map(|i| 100 * (i + 1)).collect();
            let net = g.with_labels(wide).unwrap();
            let reduced = solve(&net);
            assert_valid(&g, &reduced);
            // Palette is now at most Δ + 1.
            let max = *reduced.iter().max().unwrap();
            assert!(max as usize <= g.max_degree());
        }
    }

    #[test]
    fn works_from_greedy_two_hop_coloring() {
        let g = generators::grid(4, 4, false).unwrap();
        let colored = coloring::greedy_two_hop_coloring(&g);
        let reduced = solve(&colored);
        assert_valid(&g, &reduced);
    }

    #[test]
    fn is_deterministic() {
        let g = generators::petersen();
        let net = g.with_labels((0..10u32).collect()).unwrap();
        assert_eq!(solve(&net), solve(&net));
    }

    #[test]
    fn chain_commits_in_order() {
        // Path colored 0 < 1 < 2 < 3: strictly increasing chain, the worst
        // case for sequential commitment.
        let g = generators::path(4).unwrap();
        let net = g.with_labels(vec![0u32, 1, 2, 3]).unwrap();
        let out = solve(&net);
        assert_valid(&g, &out);
        assert_eq!(out, vec![0, 1, 0, 1]);
    }

    #[test]
    fn works_with_bitstring_inputs() {
        let g = generators::cycle(5).unwrap();
        let labels: Vec<BitString> = (0..5).map(|i| BitString::from_value(i as u64, 3)).collect();
        let net = g.with_labels(labels).unwrap();
        let exec = run(
            &Oblivious(DeterministicColoring::<BitString>::new()),
            &net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(exec.is_successful());
        assert_valid(&g, &exec.outputs_unwrapped());
    }
}
