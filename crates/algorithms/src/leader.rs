//! Leader election and the prime / non-prime dichotomy.
//!
//! Leader election is the canonical problem **outside** GRAN: Angluin's
//! lifting argument (paper, Sections 1 and 1.3) shows no Las-Vegas
//! anonymous algorithm can elect a leader on all graphs, because on a
//! non-trivial product two nodes of the same fiber behave identically in
//! some execution. With a 2-hop coloring the situation splits cleanly:
//!
//! * if the colored graph is **prime** (all views distinct, Lemma 4),
//!   every node can deterministically identify itself within the common
//!   canonical view order — the unique minimum becomes the leader;
//! * if it is **not prime**, two nodes share all views and *no* anonymous
//!   algorithm, randomized or not, can separate them — ever. Leader
//!   election on that instance is impossible, and this module returns the
//!   duplicate-view witness instead of an answer.
//!
//! [`elect_leader`] is the simulator-side ("white-box") formulation: it
//! computes, for each node, a value that is a function of that node's view
//! only — exactly what the paper's machinery guarantees a deterministic
//! anonymous algorithm can compute (Theorem 1 makes the message-level
//! realization explicit; `anonet-core` implements it). The companion
//! experiment E11 exercises the dichotomy.

use anonet_graph::{Label, LabeledGraph, NodeId};
use anonet_views::{canonical_order, quotient, ViewMode};

use crate::error::AlgorithmError;
use crate::Result;

/// The outcome of leader election on a labeled graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaderOutcome {
    /// The elected leader.
    pub leader: NodeId,
    /// Per-node outputs (`true` iff leader) — what each node would emit.
    pub outputs: Vec<bool>,
}

/// Elects a leader on a prime labeled graph: the minimum of the canonical
/// view order. Every node can compute "am I the minimum view?" from its
/// own view alone, so this is anonymous-computable.
///
/// # Errors
///
/// [`AlgorithmError::NotPrime`] with a duplicate-view witness when two
/// nodes share a view (election impossible on this instance), or a views
/// error if the graph's quotient is degenerate.
pub fn elect_leader<L: Label>(g: &LabeledGraph<L>) -> Result<LeaderOutcome> {
    match canonical_order(g, ViewMode::Portless) {
        Ok(order) => {
            let leader = order[0];
            let mut outputs = vec![false; g.node_count()];
            // anonet-lint: allow(anonymity, reason = "global-observer convenience API; the node-local algorithm is the oblivious simulation above")
            outputs[leader.index()] = true;
            Ok(LeaderOutcome { leader, outputs })
        }
        Err(anonet_views::ViewError::NotDiscrete { .. }) => {
            let witness = duplicate_views(g)?;
            Err(AlgorithmError::NotPrime { duplicate_views: witness })
        }
        Err(e) => Err(e.into()),
    }
}

/// Finds two distinct nodes with identical depth-∞ views, certifying that
/// leader election (and ID assignment) is impossible on this instance.
///
/// # Errors
///
/// Returns [`AlgorithmError::NotPrime`]'s *absence*: if the graph is
/// actually prime this returns a views error... it does not; it returns
/// `Ok` only when a duplicate exists, and an internal invariant violation
/// otherwise — callers reach this only after observing non-discreteness.
fn duplicate_views<L: Label>(g: &LabeledGraph<L>) -> Result<(usize, usize)> {
    let r = anonet_views::BoundedRefinement::compute(g, ViewMode::Portless);
    let classes = r.classes();
    for u in 0..classes.len() {
        for v in (u + 1)..classes.len() {
            if classes[u] == classes[v] {
                return Ok((u, v));
            }
        }
    }
    unreachable!("caller observed a non-discrete refinement");
}

/// `true` iff leader election is solvable on this labeled instance, i.e.
/// the graph is prime. (On 2-hop colored instances this is decidable by a
/// deterministic anonymous algorithm; on arbitrary instances it is the
/// GRAN-excluded case.)
pub fn leader_election_solvable<L: Label>(g: &LabeledGraph<L>) -> bool {
    quotient(g, ViewMode::Portless).map(|q| q.is_trivial()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::generators;

    #[test]
    fn elects_on_prime_graphs() {
        // All-distinct colors ⇒ prime.
        let g = generators::cycle(5).unwrap().with_labels((0..5u32).collect()).unwrap();
        let outcome = elect_leader(&g).unwrap();
        assert_eq!(outcome.outputs.iter().filter(|&&b| b).count(), 1);
        assert!(outcome.outputs[outcome.leader.index()]);
        assert!(leader_election_solvable(&g));
    }

    #[test]
    fn leader_is_presentation_invariant() {
        // Rotating the presentation must elect the "same" node (same label,
        // since labels here are unique).
        let a = generators::cycle(4).unwrap().with_labels(vec![10u32, 20, 30, 40]).unwrap();
        let b = generators::cycle(4).unwrap().with_labels(vec![30u32, 40, 10, 20]).unwrap();
        let la = *a.label(elect_leader(&a).unwrap().leader);
        let lb = *b.label(elect_leader(&b).unwrap().leader);
        assert_eq!(la, lb);
    }

    #[test]
    fn fails_with_witness_on_products() {
        // Colored C6 = product of C3: fibers share views.
        let g = generators::cycle(6).unwrap().with_labels(vec![1u32, 2, 3, 1, 2, 3]).unwrap();
        let err = elect_leader(&g).unwrap_err();
        let AlgorithmError::NotPrime { duplicate_views: (u, v) } = err else {
            panic!("expected NotPrime, got {err:?}");
        };
        // The witness pair really does share a color (views agree ⇒ labels agree).
        assert_eq!(g.label(NodeId::new(u)), g.label(NodeId::new(v)));
        assert!(!leader_election_solvable(&g));
    }

    #[test]
    fn uniform_graphs_are_hopeless() {
        let g = generators::cycle(4).unwrap().with_uniform_label(0u8);
        assert!(!leader_election_solvable(&g));
    }

    #[test]
    fn prime_but_colorful_graphs_work_even_with_repeated_labels() {
        // P5 colored 1,2,3,1,2 is prime (ends break symmetry) though
        // colors repeat.
        let g = generators::path(5).unwrap().with_labels(vec![1u32, 2, 3, 1, 2]).unwrap();
        let outcome = elect_leader(&g).unwrap();
        assert_eq!(outcome.outputs.iter().filter(|&&b| b).count(), 1);
    }
}
