//! Port emulation via colors — the paper's Section 1.3 remark, executable:
//! *"by including the sender's color in every message missing port
//! numbers can be emulated."*
//!
//! [`VirtualPorts`] runs an arbitrary **port-sensitive**
//! [`Algorithm`] on top of the port-oblivious transport, provided the
//! input carries a 2-hop coloring:
//!
//! * round 1 exchanges colors; each node sorts its neighbors' colors
//!   (distinct, by the coloring) and uses the ranks as *virtual ports*;
//! * every subsequent round broadcasts one packet containing the sender's
//!   color and a list of `(recipient color, payload)` entries — the
//!   2-hop property guarantees that within any neighborhood, recipient
//!   colors identify recipients uniquely;
//! * receivers map the sender's color back to a virtual port and feed the
//!   wrapped algorithm a perfectly ordinary port-indexed inbox.
//!
//! The emulation is exact: the wrapped algorithm behaves as if it ran
//! directly on the graph whose port numbering sorts each adjacency list
//! by neighbor color (one round later). This is why restricting the
//! derandomization machinery to port-oblivious algorithms loses no
//! power on 2-hop colored instances.

use anonet_graph::Label;
use anonet_runtime::{Actions, Algorithm, Inbox, ObliviousAlgorithm};

/// A packet of the emulated transport.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum VpMessage<C, M> {
    /// Round 1: the sender's color.
    Hello(C),
    /// Later rounds: the sender's color plus directed payloads.
    Data {
        /// The sender's color (determines the receiver's virtual port).
        sender: C,
        /// `(recipient color, payload)` entries, one per virtual port the
        /// inner algorithm sent on.
        directed: Vec<(C, M)>,
    },
}

/// Local state of [`VirtualPorts`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VpState<C, S> {
    color: C,
    /// Neighbor colors sorted ascending — index = virtual port.
    neighbor_colors: Option<Vec<C>>,
    inner: S,
}

impl<C, S> VpState<C, S> {
    /// The wrapped algorithm's current state.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

/// Runs a port-sensitive algorithm over color-emulated ports (requires a
/// 2-hop colored input; behaviour is unspecified otherwise).
///
/// * **Input**: `(inner input, color)`.
/// * **Output**: the inner algorithm's output, one emulated round per
///   real round after the color exchange.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualPorts<A, C> {
    inner: A,
    _marker: std::marker::PhantomData<fn() -> C>,
}

impl<A, C> VirtualPorts<A, C> {
    /// Wraps a port-sensitive algorithm.
    pub fn new(inner: A) -> Self {
        VirtualPorts { inner, _marker: std::marker::PhantomData }
    }
}

impl<A, C> ObliviousAlgorithm for VirtualPorts<A, C>
where
    A: Algorithm<Input = ()>,
    C: Label,
    A::Message: Ord,
{
    type Input = ((), C);
    type Message = VpMessage<C, A::Message>;
    type Output = A::Output;
    type State = VpState<C, A::State>;

    fn init(&self, input: &Self::Input, degree: usize) -> Self::State {
        VpState {
            color: input.1.clone(),
            neighbor_colors: None,
            inner: self.inner.init(&(), degree),
        }
    }

    fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
        match &state.neighbor_colors {
            None => Some(VpMessage::Hello(state.color.clone())),
            Some(colors) => {
                let directed: Vec<(C, A::Message)> = colors
                    .iter()
                    .enumerate()
                    .filter_map(|(p, c)| {
                        self.inner
                            .compose(&state.inner, anonet_graph::Port::new(p))
                            .map(|m| (c.clone(), m))
                    })
                    .collect();
                Some(VpMessage::Data { sender: state.color.clone(), directed })
            }
        }
    }

    fn step(
        &self,
        mut state: Self::State,
        round: usize,
        received: &[Self::Message],
        bit: bool,
        actions: &mut Actions<Self::Output>,
    ) -> Self::State {
        match &state.neighbor_colors {
            None => {
                let mut colors: Vec<C> = received
                    .iter()
                    .filter_map(|m| match m {
                        VpMessage::Hello(c) => Some(c.clone()),
                        VpMessage::Data { .. } => None,
                    })
                    .collect();
                colors.sort();
                state.neighbor_colors = Some(colors);
            }
            Some(colors) => {
                let mut slots: Vec<Option<A::Message>> = vec![None; colors.len()];
                for m in received {
                    if let VpMessage::Data { sender, directed } = m {
                        if let Ok(port) = colors.binary_search(sender) {
                            for (addr, payload) in directed {
                                if *addr == state.color {
                                    slots[port] = Some(payload.clone());
                                }
                            }
                        }
                    }
                }
                let inbox = Inbox::from_slots(slots);
                // The inner algorithm runs one round behind the transport.
                state.inner = self.inner.step(state.inner, round - 1, &inbox, bit, actions);
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{coloring, generators, Graph, NodeId, Port};
    use anonet_runtime::{run, ExecConfig, Oblivious, ZeroSource};

    /// A deliberately port-sensitive probe: in round 1 every node sends
    /// its port index on each port; it outputs the sorted list of
    /// (own port, received value) pairs — a full fingerprint of the local
    /// port structure.
    #[derive(Clone, Copy, Debug)]
    struct PortProbe;

    impl Algorithm for PortProbe {
        type Input = ();
        type Message = u32;
        type Output = Vec<(u32, u32)>;
        type State = ();

        fn init(&self, _input: &(), _degree: usize) {}
        fn compose(&self, _state: &(), port: Port) -> Option<u32> {
            Some(port.index() as u32)
        }
        fn step(
            &self,
            _state: (),
            _round: usize,
            inbox: &Inbox<u32>,
            _bit: bool,
            actions: &mut Actions<Vec<(u32, u32)>>,
        ) {
            let mut pairs: Vec<(u32, u32)> =
                inbox.iter().map(|(p, m)| (p.index() as u32, *m)).collect();
            pairs.sort();
            actions.output(pairs);
            actions.halt();
        }
    }

    /// The graph whose port numbering sorts each adjacency list by
    /// neighbor color — the reference the emulation must reproduce.
    fn color_sorted_ports(g: &Graph, colors: &[u32]) -> Graph {
        let adj: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|v| {
                let mut nbrs: Vec<NodeId> = g.neighbors(v).to_vec();
                nbrs.sort_by_key(|u| colors[u.index()]);
                nbrs
            })
            .collect();
        Graph::from_adjacency(adj).expect("same topology, new ports")
    }

    #[test]
    fn emulated_ports_match_color_sorted_real_ports() {
        for g in [
            generators::cycle(7).unwrap(),
            generators::petersen(),
            generators::grid(3, 3, false).unwrap(),
        ] {
            let colored = coloring::greedy_two_hop_coloring(&g);
            let colors = colored.labels().to_vec();

            // Reference: PortProbe directly on the color-sorted graph.
            let reference_net = color_sorted_ports(&g, &colors).with_uniform_label(());
            let reference =
                run(&PortProbe, &reference_net, &mut ZeroSource, &ExecConfig::default()).unwrap();

            // Emulated: VirtualPorts over the oblivious transport.
            let net = g.with_labels(colors.iter().map(|&c| ((), c)).collect::<Vec<_>>()).unwrap();
            let emulated = run(
                &Oblivious(VirtualPorts::<_, u32>::new(PortProbe)),
                &net,
                &mut ZeroSource,
                &ExecConfig::default(),
            )
            .unwrap();

            assert_eq!(emulated.outputs(), reference.outputs(), "mismatch on {g}");
            // One extra round for the color exchange.
            assert_eq!(emulated.rounds(), reference.rounds() + 1);
        }
    }

    /// Multi-round port sensitivity: forward the port-0 message along for
    /// three rounds, then output it.
    #[derive(Clone, Copy, Debug)]
    struct Chain;

    impl Algorithm for Chain {
        type Input = ();
        type Message = u32;
        type Output = u32;
        type State = u32;

        fn init(&self, _input: &(), _degree: usize) -> u32 {
            1
        }
        fn compose(&self, state: &u32, port: Port) -> Option<u32> {
            (port.index() == 0).then_some(*state)
        }
        fn step(
            &self,
            state: u32,
            round: usize,
            inbox: &Inbox<u32>,
            _bit: bool,
            actions: &mut Actions<u32>,
        ) -> u32 {
            let carried = inbox.get(Port::new(0)).copied().unwrap_or(state) * 3 + 1;
            if round == 3 {
                actions.output(carried);
                actions.halt();
            }
            carried
        }
    }

    #[test]
    fn multi_round_emulation_is_exact() {
        let g = generators::cycle(6).unwrap();
        let colored = coloring::greedy_two_hop_coloring(&g);
        let colors = colored.labels().to_vec();

        let reference_net = color_sorted_ports(&g, &colors).with_uniform_label(());
        let reference =
            run(&Chain, &reference_net, &mut ZeroSource, &ExecConfig::default()).unwrap();

        let net = g.with_labels(colors.iter().map(|&c| ((), c)).collect::<Vec<_>>()).unwrap();
        let emulated = run(
            &Oblivious(VirtualPorts::<_, u32>::new(Chain)),
            &net,
            &mut ZeroSource,
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(emulated.outputs(), reference.outputs());
    }
}
