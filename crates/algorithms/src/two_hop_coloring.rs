//! The Las-Vegas anonymous 2-hop coloring algorithm — the generic
//! randomized preprocessing stage of the paper's Theorem 1.
//!
//! # Protocol
//!
//! Every undecided node grows a random bitstring *color*, one bit per
//! round. Each round every node broadcasts `(color, decided,
//! last-seen neighbor table)`, so a node sees its neighbors' states
//! fresh and its 2-hop neighbors' states two rounds stale. A node
//! **decides** (freezes and outputs its color) as soon as no *clash*
//! remains possible, where for a node with current color `a`:
//!
//! * an undecided peer with (possibly stale) color `b` clashes iff `b` is
//!   a prefix of `a` — undecided colors only grow, and once two colors
//!   differ at a position they differ forever;
//! * a decided peer with final color `b` clashes iff `a` is a prefix of
//!   `b` — the node's own future colors extend `a` and could hit `b`.
//!
//! Distance-2 peers are seen through neighbor tables without identities —
//! anonymous nodes cannot tell *which* table entry is themselves. The
//! algorithm uses the paper's Section 1.3 observation that port numbers
//! (and identities) are unnecessary: a node always occupies **exactly
//! one** entry of each neighbor's table, and it knows precisely what that
//! entry says (its own state two rounds ago). A clashing table entry is
//! therefore *really someone else* unless it equals the node's own stale
//! state with multiplicity one.
//!
//! Termination is Las-Vegas: any persisting clash requires fresh random
//! bits to keep coinciding, which happens with probability zero in the
//! limit. The output is **always** a valid 2-hop coloring (the decision
//! rule is sound, not probabilistic).

use anonet_graph::BitString;
use anonet_runtime::{Actions, ObliviousAlgorithm};

/// A peer's state as carried in messages: `(color, decided)`.
type PeerState = (BitString, bool);

/// The Las-Vegas anonymous 2-hop coloring algorithm.
///
/// * **Input**: anything (ignored); the problem is solvable on every
///   connected graph, which is what makes it the universal preprocessing
///   stage.
/// * **Output**: a [`BitString`] color such that the output labeling is a
///   2-hop coloring of the network.
///
/// # Example
///
/// ```
/// use anonet_graph::{coloring, generators, BitString, LabeledGraph};
/// use anonet_runtime::{run, ExecConfig, Oblivious, RngSource};
/// use anonet_algorithms::two_hop_coloring::TwoHopColoring;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::petersen().with_uniform_label(());
/// let exec = run(
///     &Oblivious(TwoHopColoring::new()),
///     &net,
///     &mut RngSource::seeded(7),
///     &ExecConfig::default(),
/// )?;
/// assert!(exec.is_successful());
/// let colored: LabeledGraph<BitString> =
///     net.graph().with_labels(exec.outputs_unwrapped())?;
/// assert!(coloring::is_two_hop_coloring(&colored));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoHopColoring;

impl TwoHopColoring {
    /// Creates the algorithm.
    pub fn new() -> Self {
        TwoHopColoring
    }
}

/// Local state of [`TwoHopColoring`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TwoHopState {
    /// Current color (frozen once decided).
    color: BitString,
    /// Whether the color is final.
    decided: bool,
    /// The node's own broadcast state from two rounds ago — what its entry
    /// in a neighbor's current table says.
    stale_self: PeerState,
    /// The node's own broadcast state from one round ago (becomes
    /// `stale_self` next round).
    prev_self: PeerState,
    /// Neighbor states received last round (to be relayed this round).
    table: Vec<PeerState>,
}

impl TwoHopState {
    /// The current color (final iff [`TwoHopState::is_decided`]).
    pub fn color(&self) -> &BitString {
        &self.color
    }

    /// Whether the node has decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }
}

/// Message: own `(color, decided)` plus the relayed table of last-seen
/// neighbor states (the 2-hop information channel).
type Message = (PeerState, Vec<PeerState>);

/// Does a peer in state `peer` clash with an undecided node whose current
/// color is `a`? See the module docs for the case analysis.
fn clashes(a: &BitString, peer: &PeerState) -> bool {
    let (b, decided) = peer;
    if *decided {
        a.is_prefix_of(b)
    } else {
        b.is_prefix_of(a)
    }
}

impl ObliviousAlgorithm for TwoHopColoring {
    type Input = ();
    type Message = Message;
    type Output = BitString;
    type State = TwoHopState;

    fn init(&self, _input: &(), _degree: usize) -> TwoHopState {
        let empty: PeerState = (BitString::new(), false);
        TwoHopState {
            color: BitString::new(),
            decided: false,
            stale_self: empty.clone(),
            prev_self: empty,
            table: Vec::new(),
        }
    }

    fn broadcast(&self, state: &TwoHopState) -> Option<Message> {
        Some(((state.color.clone(), state.decided), state.table.clone()))
    }

    fn step(
        &self,
        mut state: TwoHopState,
        _round: usize,
        received: &[Message],
        bit: bool,
        actions: &mut Actions<BitString>,
    ) -> TwoHopState {
        // What this node just broadcast becomes "one round ago"; what was
        // one round ago becomes "two rounds ago" (= its entry in the
        // tables arriving next round... i.e. the tables arriving NOW were
        // composed from states two rounds ago, which is the *current*
        // `stale_self` after this shift).
        let broadcast_now: PeerState = (state.color.clone(), state.decided);
        state.stale_self = std::mem::replace(&mut state.prev_self, broadcast_now);

        if !state.decided {
            let mut clash = false;
            // Direct neighbors: fresh states.
            for (peer, _table) in received {
                if clashes(&state.color, peer) {
                    clash = true;
                    break;
                }
            }
            // Distance-2 peers: table entries, with self-exclusion by
            // multiplicity counting. In each table this node occupies
            // exactly one entry, equal to `stale_self`.
            if !clash {
                'outer: for (_, table) in received {
                    if table.is_empty() {
                        // Tables are still warming up: no 2-hop info yet
                        // means this node cannot certify safety. (Only
                        // happens in round 1, when colors are all ε and a
                        // direct clash fires anyway; kept for robustness.)
                        clash = true;
                        break;
                    }
                    let mut self_budget = 1usize; // skip own entry once
                    for entry in table {
                        if *entry == state.stale_self && self_budget > 0 {
                            self_budget -= 1;
                            continue;
                        }
                        if clashes(&state.color, entry) {
                            clash = true;
                            break 'outer;
                        }
                    }
                }
            }
            if clash {
                state.color.push(bit);
            } else {
                state.decided = true;
                actions.output(state.color.clone());
            }
        }

        // Refresh the relay table with this round's fresh neighbor states.
        state.table = received.iter().map(|(peer, _)| peer.clone()).collect();
        state.table.sort();

        // Halting: decided, and every still-active neighbor reports a
        // fully decided 1-hop and 2-hop picture. Silent (halted) neighbors
        // only halt after observing the same, so they are decided too.
        if state.decided {
            let all_done = received
                .iter()
                .all(|(peer, table)| peer.1 && !table.is_empty() && table.iter().all(|(_, d)| *d));
            if all_done {
                actions.halt();
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::coloring::is_two_hop_coloring;
    use anonet_graph::{generators, Graph, LabeledGraph};
    use anonet_runtime::{run, ExecConfig, Execution, Oblivious, RngSource, Status};

    fn color_graph(g: &Graph, seed: u64) -> Execution<Oblivious<TwoHopColoring>> {
        let net = g.with_uniform_label(());
        run(
            &Oblivious(TwoHopColoring::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )
        .expect("execution must not error")
    }

    fn assert_valid_two_hop(g: &Graph, exec: &Execution<Oblivious<TwoHopColoring>>) {
        assert_eq!(exec.status(), Status::Completed);
        assert!(exec.is_successful());
        let colored: LabeledGraph<BitString> = g.with_labels(exec.outputs_unwrapped()).unwrap();
        assert!(is_two_hop_coloring(&colored), "invalid 2-hop coloring on {g}");
    }

    #[test]
    fn colors_cycles() {
        for n in [3usize, 4, 5, 6, 10, 17] {
            let g = generators::cycle(n).unwrap();
            for seed in 0..5 {
                assert_valid_two_hop(&g, &color_graph(&g, seed));
            }
        }
    }

    #[test]
    fn colors_varied_families() {
        let graphs = vec![
            generators::path(9).unwrap(),
            generators::complete(6).unwrap(),
            generators::star(8).unwrap(),
            generators::petersen(),
            generators::hypercube(3).unwrap(),
            generators::grid(3, 4, false).unwrap(),
        ];
        for g in graphs {
            for seed in 0..3 {
                assert_valid_two_hop(&g, &color_graph(&g, seed));
            }
        }
    }

    #[test]
    fn single_node_decides_immediately() {
        let g = Graph::builder(1).build().unwrap();
        let exec = color_graph(&g, 1);
        assert!(exec.is_successful());
        // With no neighbors there are no clashes: the empty color suffices
        // and the node halts in round 1.
        assert_eq!(exec.rounds(), 1);
    }

    #[test]
    fn is_reproducible_per_seed() {
        let g = generators::petersen();
        let a = color_graph(&g, 99);
        let b = color_graph(&g, 99);
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.rounds(), b.rounds());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let g = generators::petersen();
        let a = color_graph(&g, 1);
        let b = color_graph(&g, 2);
        assert_ne!(a.outputs(), b.outputs());
    }

    #[test]
    fn rounds_stay_reasonable() {
        // Colors need ~log(local competition) bits; wildly long runs would
        // indicate a liveness bug.
        let g = generators::grid(5, 5, false).unwrap();
        let exec = color_graph(&g, 3);
        assert!(exec.rounds() < 200, "took {} rounds", exec.rounds());
    }

    #[test]
    fn works_on_random_trees_and_gnp() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..3 {
            let t = generators::random_tree(20, &mut rng).unwrap();
            assert_valid_two_hop(&t, &color_graph(&t, 11));
            let g = generators::gnp_connected(15, 0.2, &mut rng).unwrap();
            assert_valid_two_hop(&g, &color_graph(&g, 12));
        }
    }
}
