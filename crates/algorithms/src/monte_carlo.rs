//! Monte-Carlo leader election — the contrast class the paper draws
//! (Section 1.3, citing Itai–Rodeh and Métivier–Robson–Zemmari [36]):
//! leader election is **not** Las-Vegas solvable in anonymous networks
//! (no algorithm may ever err, and products force errors), but it *is*
//! solvable by a Monte-Carlo algorithm that fails with small probability.
//!
//! # Protocol
//!
//! Each node draws `id_bits` random bits as a tentative identifier, then
//! floods the maximum identifier for `bound` rounds (`bound ≥ diameter`
//! suffices; an upper bound on `n` does). A node outputs "leader" iff its
//! own identifier equals the flooded maximum. The election fails iff the
//! maximum is drawn by more than one node — probability at most
//! `n² / 2^{id_bits+1}` by a union bound — which no node can detect:
//! exactly the Monte-Carlo/Las-Vegas gap, and the reason this algorithm
//! does not contradict the paper (GRAN requires probability-1 validity).

use anonet_graph::BitString;
use anonet_runtime::{Actions, ObliviousAlgorithm};

/// Local state of [`MonteCarloLeader`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct McLeaderState {
    id: BitString,
    max_seen: BitString,
    bits_drawn: usize,
}

/// The Monte-Carlo leader election algorithm.
///
/// * **Input**: the round bound (prior knowledge: any value ≥ the
///   diameter, e.g. an upper bound on `n`).
/// * **Output**: `true` iff this node believes it is the leader. With
///   probability ≥ `1 - n²/2^{id_bits+1}` exactly one node outputs `true`.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloLeader {
    id_bits: usize,
}

impl MonteCarloLeader {
    /// Creates the algorithm drawing `id_bits`-bit identifiers.
    ///
    /// # Panics
    ///
    /// Panics for `id_bits = 0`.
    pub fn new(id_bits: usize) -> Self {
        assert!(id_bits > 0, "identifiers need at least one bit");
        MonteCarloLeader { id_bits }
    }
}

impl ObliviousAlgorithm for MonteCarloLeader {
    type Input = usize; // the round bound
    type Message = BitString;
    type Output = bool;
    type State = (McLeaderState, usize);

    fn init(&self, input: &usize, _degree: usize) -> Self::State {
        (McLeaderState { id: BitString::new(), max_seen: BitString::new(), bits_drawn: 0 }, *input)
    }

    fn broadcast(&self, state: &Self::State) -> Option<BitString> {
        (state.0.bits_drawn >= self.id_bits).then(|| state.0.max_seen.clone())
    }

    fn step(
        &self,
        mut state: Self::State,
        round: usize,
        received: &[BitString],
        bit: bool,
        actions: &mut Actions<bool>,
    ) -> Self::State {
        let (st, bound) = &mut state;
        if st.bits_drawn < self.id_bits {
            // Identifier-drawing phase: one bit per round (the paper's
            // normalization of randomness).
            st.id.push(bit);
            st.bits_drawn += 1;
            if st.bits_drawn == self.id_bits {
                st.max_seen = st.id.clone();
            }
        } else {
            // Flooding phase.
            for m in received {
                if m.as_slice() > st.max_seen.as_slice() {
                    st.max_seen = m.clone();
                }
            }
            if round >= self.id_bits + *bound {
                actions.output(st.max_seen == st.id);
                actions.halt();
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{generators, Graph};
    use anonet_runtime::{run, ExecConfig, Oblivious, RngSource};

    fn elect(g: &Graph, id_bits: usize, seed: u64) -> Vec<bool> {
        let bound = g.node_count();
        let net = g.with_uniform_label(bound);
        let exec = run(
            &Oblivious(MonteCarloLeader::new(id_bits)),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )
        .unwrap();
        assert!(exec.is_successful());
        exec.outputs_unwrapped()
    }

    #[test]
    fn wide_ids_elect_exactly_one_leader() {
        // 48-bit ids on ≤ 16 nodes: collision probability ~ 2^-40.
        for g in [
            generators::cycle(8).unwrap(),
            generators::petersen(),
            generators::grid(4, 4, true).unwrap(),
        ] {
            for seed in 0..10 {
                let leaders = elect(&g, 48, seed).iter().filter(|&&b| b).count();
                assert_eq!(leaders, 1, "seed {seed} on {g}");
            }
        }
    }

    #[test]
    fn narrow_ids_eventually_fail() {
        // 2-bit ids on a 10-node graph: collisions of the maximum are
        // frequent — this *is* the Monte-Carlo failure mode, and exactly
        // what a Las-Vegas algorithm is never allowed to do.
        let g = generators::petersen();
        let mut saw_failure = false;
        let mut saw_success = false;
        for seed in 0..40 {
            let leaders = elect(&g, 2, seed).iter().filter(|&&b| b).count();
            assert!(leaders >= 1, "the maximum always exists");
            if leaders > 1 {
                saw_failure = true;
            } else {
                saw_success = true;
            }
        }
        assert!(saw_failure, "2-bit ids should collide somewhere in 40 seeds");
        assert!(saw_success, "2-bit ids should also sometimes succeed");
    }

    #[test]
    fn single_node_is_its_own_leader() {
        let g = Graph::builder(1).build().unwrap();
        assert_eq!(elect(&g, 8, 0), vec![true]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::cycle(6).unwrap();
        assert_eq!(elect(&g, 16, 7), elect(&g, 16, 7));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_ids_rejected() {
        let _ = MonteCarloLeader::new(0);
    }
}
