//! Las-Vegas anonymous maximal matching on 2-hop colored instances — a
//! fourth GRAN member, chosen because its outputs are *relational*
//! (who is matched with whom) and still derandomize cleanly: a matching
//! of the quotient lifts edge-by-edge along fibers (each node has exactly
//! one neighbor in any adjacent fiber, by the local isomorphism).
//!
//! # Protocol
//!
//! Nodes address each other by color (the paper's Section 1.3 remark —
//! colors replace ports). Iterations of three rounds, for active nodes:
//!
//! 1. **Propose** — draw a bit; on 1, propose to the active neighbor with
//!    the smallest color;
//! 2. **Accept** — a node that drew 0 accepts the smallest-colored
//!    proposer and announces the match (a proposer never accepts, which
//!    keeps the matching symmetric);
//! 3. **Settle** — matched nodes retire; everyone re-announces status.
//!
//! Two adjacent active nodes match with probability ≥ 1/4 per iteration,
//! so the algorithm terminates with probability 1; the output is always a
//! maximal matching.
//!
//! * **Input**: the node's color under a 2-hop coloring.
//! * **Output**: `Some(partner color)` or `None` (unmatched, with no
//!   unmatched neighbor).

use std::marker::PhantomData;

use anonet_graph::{Label, LabeledGraph};
use anonet_runtime::{Actions, ObliviousAlgorithm, Problem};

/// Messages of [`RandomizedMatching`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MatchingMessage<C> {
    /// Phase 1: `(my color, am I still active, my proposal target)`.
    Propose(C, bool, Option<C>),
    /// Phase 2: `(my color, the proposer I accept)`.
    Accept(C, Option<C>),
    /// Phase 3: `(my color, am I still active)`.
    Status(C, bool),
}

/// Contest state of one node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MatchingState<C> {
    color: C,
    /// `None` while undecided; `Some(None)` = definitively unmatched;
    /// `Some(Some(c))` = matched with the neighbor colored `c`.
    outcome: Option<Option<C>>,
    /// My proposal target this iteration (while active).
    proposal: Option<C>,
    /// Did I propose this iteration? (Proposers never accept.)
    proposing: bool,
    outgoing: MatchingMessage<C>,
}

/// The Las-Vegas anonymous maximal matching algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomizedMatching<C> {
    _marker: PhantomData<fn() -> C>,
}

impl<C> RandomizedMatching<C> {
    /// Creates the algorithm.
    pub fn new() -> Self {
        RandomizedMatching { _marker: PhantomData }
    }
}

impl<C: Label> ObliviousAlgorithm for RandomizedMatching<C> {
    type Input = C;
    type Message = MatchingMessage<C>;
    type Output = Option<C>;
    type State = MatchingState<C>;

    fn init(&self, input: &C, degree: usize) -> Self::State {
        let mut state = MatchingState {
            color: input.clone(),
            outcome: None,
            proposal: None,
            proposing: false,
            outgoing: MatchingMessage::Status(input.clone(), true),
        };
        if degree == 0 {
            // Isolated node: unmatched, trivially maximal.
            state.outcome = Some(None);
        }
        state
    }

    fn broadcast(&self, state: &Self::State) -> Option<Self::Message> {
        Some(state.outgoing.clone())
    }

    fn step(
        &self,
        mut state: Self::State,
        round: usize,
        received: &[Self::Message],
        bit: bool,
        actions: &mut Actions<Option<C>>,
    ) -> Self::State {
        let active = state.outcome.is_none();
        match round % 3 {
            // Received statuses; draw the coin and maybe propose.
            1 => {
                if active {
                    let target = received
                        .iter()
                        .filter_map(|m| match m {
                            MatchingMessage::Status(c, true) => Some(c.clone()),
                            _ => None,
                        })
                        .min();
                    state.proposing = bit && target.is_some();
                    state.proposal = if state.proposing { target } else { None };
                } else {
                    state.proposing = false;
                    state.proposal = None;
                }
                state.outgoing =
                    MatchingMessage::Propose(state.color.clone(), active, state.proposal.clone());
            }
            // Received proposals; non-proposers accept the best one.
            2 => {
                let mut accepted = None;
                if active && !state.proposing {
                    accepted = received
                        .iter()
                        .filter_map(|m| match m {
                            MatchingMessage::Propose(c, true, Some(target))
                                if *target == state.color =>
                            {
                                Some(c.clone())
                            }
                            _ => None,
                        })
                        .min();
                    if let Some(partner) = &accepted {
                        state.outcome = Some(Some(partner.clone()));
                        actions.output(Some(partner.clone()));
                    }
                }
                state.outgoing = MatchingMessage::Accept(state.color.clone(), accepted);
            }
            // Received acceptances; proposers learn their fate.
            0 => {
                if active && state.proposing {
                    let matched = received.iter().any(|m| {
                        matches!(m, MatchingMessage::Accept(_, Some(acc)) if *acc == state.color)
                    });
                    if matched {
                        let partner = state.proposal.clone().expect("proposers have targets");
                        state.outcome = Some(Some(partner.clone()));
                        actions.output(Some(partner));
                    }
                }
                // A node whose neighbors are all decided can settle as
                // unmatched in the next status phase; defer to phase 1 via
                // the status exchange below.
                state.outgoing =
                    MatchingMessage::Status(state.color.clone(), state.outcome.is_none());
            }
            _ => unreachable!("round % 3 is exhaustive"),
        }

        // Settlement: on status phases (the messages received at phase 1
        // of the *next* iteration), an active node with no active
        // neighbors becomes definitively unmatched; decided nodes with
        // all-decided neighborhoods halt.
        if round % 3 == 1 && round > 1 {
            let any_active_neighbor =
                received.iter().any(|m| matches!(m, MatchingMessage::Status(_, true)));
            if state.outcome.is_none() && !any_active_neighbor {
                state.outcome = Some(None);
                actions.output(None);
                // Correct the outgoing message: we are no longer active.
                state.outgoing = MatchingMessage::Propose(state.color.clone(), false, None);
            }
            if state.outcome.is_some() && !any_active_neighbor {
                actions.halt();
            }
        }
        if round == 1 && state.outcome == Some(None) {
            // Isolated node: output immediately and halt.
            actions.output(None);
            actions.halt();
        }
        state
    }
}

/// The maximal matching problem on 2-hop colored instances: outputs name
/// partner *colors*; valid iff the induced edge set is a matching (mutual,
/// adjacent) and maximal (no edge between two unmatched nodes).
#[derive(Clone, Copy, Debug, Default)]
pub struct MatchingProblem;

impl Problem for MatchingProblem {
    type Input = u32;
    type Output = Option<u32>;

    fn is_instance(&self, instance: &LabeledGraph<u32>) -> bool {
        anonet_graph::coloring::is_two_hop_coloring(instance)
    }

    fn is_valid_output(&self, instance: &LabeledGraph<u32>, output: &[Option<u32>]) -> bool {
        let g = instance.graph();
        if output.len() != g.node_count() {
            return false;
        }
        for v in g.nodes() {
            // anonet-lint: allow(anonymity, reason = "is_valid_output is a global-observer verifier, not node-local algorithm code")
            match &output[v.index()] {
                Some(partner_color) => {
                    // The partner must be an actual neighbor, matched back.
                    let Some(&u) =
                        g.neighbors(v).iter().find(|&&u| instance.label(u) == partner_color)
                    else {
                        return false;
                    };
                    // anonet-lint: allow(anonymity, reason = "is_valid_output is a global-observer verifier, not node-local algorithm code")
                    if output[u.index()] != Some(*instance.label(v)) {
                        return false;
                    }
                }
                None => {
                    // Maximality: no unmatched neighbor.
                    // anonet-lint: allow(anonymity, reason = "is_valid_output is a global-observer verifier, not node-local algorithm code")
                    if g.neighbors(v).iter().any(|&u| output[u.index()].is_none()) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_graph::{coloring, generators, Graph};
    use anonet_runtime::{run, ExecConfig, Oblivious, RngSource, Status};

    fn solve(g: &Graph, seed: u64) -> Vec<Option<u32>> {
        let net = coloring::greedy_two_hop_coloring(g);
        let exec = run(
            &Oblivious(RandomizedMatching::<u32>::new()),
            &net,
            &mut RngSource::seeded(seed),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(exec.status(), Status::Completed, "did not complete on {g}");
        assert!(exec.is_successful());
        let out = exec.outputs_unwrapped();
        assert!(MatchingProblem.is_valid_output(&net, &out), "invalid matching on {g}: {out:?}");
        out
    }

    #[test]
    fn matches_on_standard_families() {
        for g in [
            generators::cycle(8).unwrap(),
            generators::path(7).unwrap(),
            generators::petersen(),
            generators::grid(3, 4, false).unwrap(),
            generators::star(6).unwrap(),
            generators::complete(5).unwrap(),
        ] {
            for seed in 0..4 {
                solve(&g, seed);
            }
        }
    }

    #[test]
    fn p2_always_matches_its_only_edge() {
        let g = generators::path(2).unwrap();
        for seed in 0..5 {
            let out = solve(&g, seed);
            assert!(out[0].is_some() && out[1].is_some());
        }
    }

    #[test]
    fn single_node_is_unmatched() {
        let g = Graph::builder(1).build().unwrap();
        assert_eq!(solve(&g, 0), vec![None]);
    }

    #[test]
    fn star_matches_exactly_one_leaf() {
        let g = generators::star(6).unwrap();
        let out = solve(&g, 3);
        assert!(out[0].is_some());
        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 2);
    }

    #[test]
    fn reproducible_per_seed() {
        let g = generators::grid(3, 3, false).unwrap();
        assert_eq!(solve(&g, 11), solve(&g, 11));
    }

    #[test]
    fn problem_rejects_asymmetric_outputs() {
        let g = generators::path(3).unwrap();
        let net = g.with_labels(vec![10u32, 20, 30]).unwrap();
        // 0 claims 20, but 1 claims 30: asymmetric.
        assert!(!MatchingProblem.is_valid_output(&net, &[Some(20), Some(30), Some(20)]));
        // Valid: 0–1 matched, 2 unmatched but its neighbor is matched.
        assert!(MatchingProblem.is_valid_output(&net, &[Some(20), Some(10), None]));
        // Invalid: 1 and 2 both unmatched though adjacent.
        assert!(!MatchingProblem.is_valid_output(&net, &[None, None, None]));
    }
}
